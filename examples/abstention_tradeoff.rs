//! The abstention trade-off: sweep the conformal error level α and
//! watch exact-match, true-abstention and false-abstention rates move —
//! the operating-curve view behind the paper's Table 5 / Figure 6.
//!
//! ```text
//! cargo run --release --example abstention_tradeoff
//! ```

use rts::benchgen::BenchmarkProfile;
use rts::core::abstention::{run_rts_linking, MitigationPolicy, RtsConfig};
use rts::core::bpp::{Mbpp, MbppConfig};
use rts::core::branching::BranchDataset;
use rts::core::metrics::{abstention_metrics, AbstentionOutcome};
use rts::simlm::{LinkTarget, SchemaLinker};

fn main() {
    let bench = BenchmarkProfile::bird_like().scaled(0.05).generate(2025);
    let linker = SchemaLinker::new("bird", 9);
    let ds = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 300);
    let mbpp = Mbpp::train(&ds, &MbppConfig::default());

    println!(
        "{:>6}  {:>7}  {:>7}  {:>7}  {:>10}",
        "alpha", "EM%", "TAR%", "FAR%", "abstained"
    );
    for alpha in [0.02, 0.05, 0.10, 0.15, 0.20] {
        let m = mbpp.with_alpha(alpha);
        let outcomes: Vec<AbstentionOutcome> = bench
            .split
            .dev
            .iter()
            .map(|inst| {
                let meta = bench.meta(&inst.db_name).expect("meta");
                let o = run_rts_linking(
                    &linker,
                    &m,
                    inst,
                    meta,
                    LinkTarget::Tables,
                    &MitigationPolicy::AbstainOnly,
                    &RtsConfig::default(),
                );
                AbstentionOutcome {
                    abstained: o.abstained,
                    correct: o.correct,
                    would_be_correct: o.would_be_correct,
                }
            })
            .collect();
        let met = abstention_metrics(&outcomes);
        println!(
            "{alpha:>6.2}  {:>7.2}  {:>7.2}  {:>7.2}  {:>6}/{}",
            met.exact_match * 100.0,
            met.tar * 100.0,
            met.far * 100.0,
            met.n_abstained,
            met.n
        );
    }
    println!("\nSmaller α ⇒ wider prediction sets ⇒ more abstentions: TAR (good catches)");
    println!("and FAR (unnecessary hand-offs) rise together while EM on answered");
    println!("instances climbs — the reliability/coverage dial RTS exposes.");
}

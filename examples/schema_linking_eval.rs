//! Side-by-side schema-linking evaluation on BIRD-like vs Spider-like
//! workloads: the Table 2 view, plus per-difficulty breakdown showing
//! *why* BIRD is harder (ambiguity + dirty metadata).
//!
//! ```text
//! cargo run --release --example schema_linking_eval
//! ```

use rts::benchgen::{BenchmarkProfile, Difficulty};
use rts::core::metrics::linking_metrics;
use rts::simlm::{GenMode, LinkTarget, SchemaLinker, Vocab};

fn main() {
    for profile in [
        BenchmarkProfile::bird_like(),
        BenchmarkProfile::spider_like(),
    ] {
        let name = profile.name.clone();
        let bench = profile.scaled(0.05).generate(77);
        let linker = SchemaLinker::new(&name, 5);
        println!("== {name} ({} dev instances)", bench.split.dev.len());

        for (target, label) in [
            (LinkTarget::Tables, "tables"),
            (LinkTarget::Columns, "columns"),
        ] {
            let mut golds = Vec::new();
            let mut preds = Vec::new();
            for inst in &bench.split.dev {
                let mut vocab = Vocab::new();
                let trace = linker.generate(inst, &mut vocab, target, GenMode::Free);
                let mut gold = SchemaLinker::gold_elements(inst, target);
                gold.sort();
                golds.push(gold);
                preds.push(trace.predicted_set());
            }
            let m = linking_metrics(&golds, &preds);
            println!(
                "  {label:<8} EM {:>5.1}%  precision {:>5.1}%  recall {:>5.1}%",
                m.exact_match * 100.0,
                m.precision * 100.0,
                m.recall * 100.0
            );
        }

        // Difficulty breakdown (table linking).
        for difficulty in Difficulty::ALL {
            let subset: Vec<_> = bench
                .split
                .dev
                .iter()
                .filter(|i| i.difficulty == difficulty)
                .collect();
            if subset.is_empty() {
                continue;
            }
            let mut correct = 0usize;
            let mut risky = 0usize;
            for inst in &subset {
                let mut vocab = Vocab::new();
                let t = linker.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
                correct += (t.predicted_set() == inst.gold_tables) as usize;
                risky += inst.risk_count().min(1);
            }
            println!(
                "  {:<12} n={:<4} table EM {:>5.1}%  ambiguous/underspecified {:>4.1}%",
                difficulty.label(),
                subset.len(),
                correct as f64 / subset.len() as f64 * 100.0,
                risky as f64 / subset.len() as f64 * 100.0,
            );
        }
        println!();
    }
}

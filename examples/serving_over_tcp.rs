//! Serving over TCP: the `serving_quickstart` workload with a real
//! socket in the middle — an `rts-served` wire server in one thread,
//! an `rts-client` in another, and the same `Engine` trait on both
//! sides.
//!
//! ```text
//! cargo run --release --example serving_over_tcp
//! ```
//!
//! What changes versus `serving_quickstart`: the client holds a
//! [`rts::client::RtsClient`] instead of the engine itself, the
//! handshake checks a corpus fingerprint so both processes provably
//! mean the same instances by their ids, and a dropped connection
//! parks the session server-side — reconnecting resumes it by session
//! id with the unanswered feedback query re-delivered verbatim. What
//! does *not* change: the answers. The wire moves outcomes; it never
//! edits them.

use rts::benchgen::BenchmarkProfile;
use rts::client::RtsClient;
use rts::core::abstention::{MitigationPolicy, RtsConfig};
use rts::core::bpp::{Mbpp, MbppConfig};
use rts::core::branching::BranchDataset;
use rts::core::human::{Expertise, HumanOracle};
use rts::core::session::resolve_flag;
use rts::serve::{ClientEvent, Engine, ServeConfig, ServeEngine};
use rts::served::Server;
use rts::simlm::{LinkTarget, SchemaLinker};
use std::net::TcpListener;
use std::sync::Arc;

fn main() {
    // 1. The same tiny BIRD-shaped workload and artefacts as
    //    `serving_quickstart`.
    let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(42);
    let linker = SchemaLinker::new("bird", 7);
    let ds_t = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 150);
    let ds_c = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Columns, 150);
    let mbpp_t = Mbpp::train(&ds_t, &MbppConfig::default());
    let mbpp_c = Mbpp::train(&ds_c, &MbppConfig::default());

    // 2. The engine goes behind a wire server instead of into the
    //    client's hands. The fingerprint is the corpus contract: a
    //    client built from a different seed or scale is refused at
    //    the handshake, not served wrong answers.
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 4,
        rts: RtsConfig::default(),
        ..ServeConfig::default()
    };
    let engine = Arc::new(ServeEngine::new(
        &linker,
        &mbpp_t,
        &mbpp_c,
        &bench.metas,
        config,
    ));
    let fingerprint = rts::serve::wire::corpus_fingerprint("bird", 0.02, 42, linker.corpus());
    let server = Server::new(
        Arc::clone(&engine),
        fingerprint.clone(),
        bench.split.dev.iter().cloned(),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("loopback addr").to_string();

    let mut threads = Vec::new();
    for _ in 0..engine.config().workers {
        let engine = Arc::clone(&engine);
        threads.push(std::thread::spawn(move || engine.worker_loop()));
    }
    {
        let server = server.clone();
        threads.push(std::thread::spawn(move || {
            server.serve(listener).expect("serve drains cleanly");
        }));
    }
    println!("rts-served listening on {addr} (fingerprint {fingerprint})");

    // 3. The client dials in, proves it means the same corpus, and
    //    from here on is just another `Engine` — the closed loop below
    //    is byte-for-byte the one `serving_quickstart` runs in-process.
    let client = RtsClient::connect(&addr, Some(&fingerprint)).expect("handshake");
    println!(
        "connected as session {}",
        client.session_id().expect("session granted")
    );

    let oracle = HumanOracle::new(Expertise::Expert, 1);
    let policy = MitigationPolicy::Human(&oracle);
    let instances: Vec<&rts::benchgen::Instance> = bench.split.dev.iter().take(12).collect();

    let mut suspensions = 0usize;
    let mut dropped_once = false;
    for inst in &instances {
        let ticket = client.submit(0, inst).expect("queue has room");
        loop {
            match client.wait_event(ticket) {
                ClientEvent::NeedsFeedback { target, query } => {
                    suspensions += 1;
                    if !dropped_once {
                        // 4. The wire's party trick: kill the TCP
                        //    connection mid-feedback. The server parks
                        //    the session; the next wait redials with
                        //    `resume` and the very same query comes
                        //    back under the same ticket.
                        dropped_once = true;
                        println!(
                            "ticket {ticket}: suspended on a {target:?} flag — \
                             dropping the connection mid-feedback"
                        );
                        client.drop_connection();
                        continue;
                    }
                    let resolution = resolve_flag(&policy, inst, &query);
                    // The wire re-delivers at least once around a
                    // reconnect, so an already-answered flag can
                    // resurface; its verdict reads `Stale`/`Retired`
                    // and is safely ignored — the loop just polls on.
                    let _ = client.resolve(ticket, &query, resolution);
                }
                ClientEvent::Done(done) => {
                    if done.n_feedback > 0 {
                        println!(
                            "ticket {ticket}: done — tables {:?} / columns {:?} \
                             after {} feedback round(s)",
                            done.outcome.tables.predicted,
                            done.outcome.columns.predicted,
                            done.n_feedback,
                        );
                    }
                    break;
                }
                ClientEvent::Retired => {
                    unreachable!("ticket {ticket} retired while its client still waits")
                }
            }
        }
    }

    // 5. Stats round-trip over the wire; then a graceful drain: the
    //    server stops accepting, finishes what it has, and its serve
    //    loop returns.
    let stats = client.stats();
    println!(
        "served {} requests ({suspensions} suspensions, 1 reconnect); \
         latency p50/p95: {:.2}/{:.2} ms, cache hit rate {:.0}%",
        instances.len(),
        stats.latency.p50_ms,
        stats.latency.p95_ms,
        stats.cache.hit_rate() * 100.0,
    );
    assert_eq!(stats.completed, instances.len() as u64);

    client.shutdown();
    client.bye();
    for t in threads {
        t.join().expect("server thread panicked");
    }
    println!("server drained; bye");
}

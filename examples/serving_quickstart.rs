//! Serving quickstart: the online engine end to end on a tiny
//! benchmark — submit, suspend on feedback, resolve, complete.
//!
//! ```text
//! cargo run --release --example serving_quickstart
//! ```
//!
//! Where `quickstart` drives one blocking linking call, this example
//! shows the production shape: an `rts-serve` engine with a worker
//! pool, a client submitting joint-linking requests, sessions parking
//! on each mBPP flag (`NeedsFeedback`) until the client answers, and
//! the serving stats (latency percentiles, context-cache hit rate,
//! parked-session memory) at drain.

use rts::benchgen::BenchmarkProfile;
use rts::core::abstention::{MitigationPolicy, RtsConfig};
use rts::core::bpp::{Mbpp, MbppConfig};
use rts::core::branching::BranchDataset;
use rts::core::human::{Expertise, HumanOracle};
use rts::core::session::resolve_flag;
use rts::serve::{ClientEvent, ServeConfig, ServeEngine};
use rts::simlm::{LinkTarget, SchemaLinker};

fn main() {
    // 1. A BIRD-shaped workload and the trained artefacts (both link
    //    targets — the engine chains tables → columns per request).
    let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(42);
    let linker = SchemaLinker::new("bird", 7);
    let ds_t = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 150);
    let ds_c = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Columns, 150);
    let mbpp_t = Mbpp::train(&ds_t, &MbppConfig::default());
    let mbpp_c = Mbpp::train(&ds_c, &MbppConfig::default());

    // 2. The serving engine: 2 workers, bounded admission, a
    //    per-tenant quota, lazy per-database context cache. No
    //    contexts exist yet — each tenant pays its own cold start on
    //    first request.
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 4,
        // Fairness: no tenant may hold more than 4 requests in flight;
        // beyond that *it* gets QuotaExceeded while others keep going.
        quota: rts::serve::TenantQuota {
            max_in_flight: 4,
            max_parked: 0,
        },
        rts: RtsConfig::default(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(&linker, &mbpp_t, &mbpp_c, &bench.metas, config);

    // 3. A (simulated) expert answers whatever the sessions ask.
    let oracle = HumanOracle::new(Expertise::Expert, 1);
    let policy = MitigationPolicy::Human(&oracle);

    let instances: Vec<&rts::benchgen::Instance> = bench.split.dev.iter().take(12).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..engine.config().workers {
            s.spawn(|_| engine.worker_loop());
        }

        // 4. The client loop: submit → wait → (resolve feedback)* → done.
        //    A parked request holds no worker — the pool keeps serving
        //    other tickets while this one waits for its human.
        let mut suspensions = 0usize;
        for inst in &instances {
            // Every submission is tagged with its tenant (tenant 0
            // here — a real front-end maps API keys to TenantIds).
            let ticket = engine.submit(0, inst).expect("queue has room");
            loop {
                match engine.wait_event(ticket) {
                    ClientEvent::NeedsFeedback { target, query } => {
                        if suspensions == 0 {
                            println!(
                                "ticket {ticket}: suspended on a {target:?} flag \
                                 (round {}, implicated {:?})",
                                query.round, query.implicated
                            );
                        }
                        suspensions += 1;
                        let resolution = resolve_flag(&policy, inst, &query);
                        if suspensions == 1 {
                            println!("ticket {ticket}: resolving with {resolution:?}");
                        }
                        engine
                            .resolve(ticket, &query, resolution)
                            .expect("no timeouts or faults configured");
                    }
                    ClientEvent::Done(done) => {
                        if suspensions > 0 && done.n_feedback > 0 {
                            println!(
                                "ticket {ticket}: done — tables {:?} / columns {:?} \
                                 after {} feedback round(s), {:.2} ms\n",
                                done.outcome.tables.predicted,
                                done.outcome.columns.predicted,
                                done.n_feedback,
                                done.latency.as_secs_f64() * 1e3,
                            );
                        }
                        break;
                    }
                    ClientEvent::Retired => {
                        unreachable!("ticket {ticket} retired while its client still waits")
                    }
                }
            }
        }
        engine.shutdown();
        println!(
            "served {} requests, {suspensions} suspensions total",
            instances.len()
        );
    })
    .expect("serving scope panicked");

    // 5. The engine's accounting — what BENCH_rts.json's `serving`
    //    section records at benchmark scale.
    let stats = engine.stats();
    println!(
        "latency p50/p95/p99: {:.2}/{:.2}/{:.2} ms, cache hit rate {:.0}%, \
         peak parked {} sessions ({} B)",
        stats.latency.p50_ms,
        stats.latency.p95_ms,
        stats.latency.p99_ms,
        stats.cache.hit_rate() * 100.0,
        stats.parked_sessions_peak,
        stats.parked_bytes_peak,
    );
    assert_eq!(stats.completed, instances.len() as u64);
}

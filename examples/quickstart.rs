//! Quickstart: the whole RTS loop on one instance, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small BIRD-like benchmark, "fine-tunes" the schema linker,
//! trains the branching point predictor, then walks one dev question
//! through monitored generation with human-in-the-loop mitigation and
//! executes the downstream SQL.

use rts::benchgen::BenchmarkProfile;
use rts::core::abstention::{run_rts_linking, MitigationPolicy, RtsConfig};
use rts::core::bpp::{Mbpp, MbppConfig};
use rts::core::branching::BranchDataset;
use rts::core::human::{Expertise, HumanOracle};
use rts::core::sqlgen::{ProvidedSchema, SqlGenModel};
use rts::simlm::{GenMode, LinkTarget, SchemaLinker, Vocab};

fn main() {
    // 1. A BIRD-shaped workload (2% scale keeps this snappy).
    let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(42);
    println!(
        "benchmark: {} databases, {} train / {} dev instances",
        bench.databases.len(),
        bench.split.train.len(),
        bench.split.dev.len()
    );

    // 2. The transparent-box schema linker (simulated fine-tune).
    let linker = SchemaLinker::new("bird", 7);

    // 3. D_branch from teacher-forced traces → the multi-layer BPP.
    let ds = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 150);
    println!(
        "D_branch: {} tokens, {:.1}% branching points",
        ds.n_tokens(),
        ds.positive_rate() * 100.0
    );
    let mbpp = Mbpp::train(&ds, &MbppConfig::default());
    println!(
        "mBPP: selected layers by AUC, mean AUC {:.3}",
        mbpp.mean_selected_auc()
    );

    // 4. Pick a dev instance the unmonitored model would get wrong.
    let inst = bench
        .split
        .dev
        .iter()
        .find(|inst| {
            let mut vocab = Vocab::new();
            let t = linker.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            t.predicted_set() != inst.gold_tables
        })
        .unwrap_or(&bench.split.dev[0]);
    println!("\nquestion: {}", inst.question);
    println!("gold tables: {:?}", inst.gold_tables);

    // 5. Monitored generation with a human in the loop.
    let oracle = HumanOracle::new(Expertise::Expert, 1);
    let meta = bench.meta(&inst.db_name).expect("db meta");
    let outcome = run_rts_linking(
        &linker,
        &mbpp,
        inst,
        meta,
        LinkTarget::Tables,
        &MitigationPolicy::Human(&oracle),
        &RtsConfig::default(),
    );
    println!(
        "RTS linking: predicted {:?} (correct: {}, human consultations: {})",
        outcome.predicted, outcome.correct, outcome.n_interventions
    );

    // 6. Downstream SQL with the linked schema, executed for real.
    let generator = SqlGenModel::deepseek_7b("bird", 3);
    let schema = ProvidedSchema::golden(inst);
    let stmt = generator.generate(inst, &schema, meta);
    let db = bench.database(&inst.db_name).expect("database");
    let result = rts::nanosql::exec::execute(db, &stmt).expect("generated SQL executes");
    println!("\npredicted SQL: {stmt}");
    println!("rows returned: {}", result.n_rows());
    let gold = rts::nanosql::exec::execute(db, &inst.gold_sql).expect("gold SQL executes");
    println!(
        "execution accuracy: {}",
        rts::nanosql::result::results_match(&gold, &result)
    );
}

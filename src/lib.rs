//! # rts — Reliable Text-to-SQL with Adaptive Abstention
//!
//! Facade crate re-exporting the full RTS workspace. See README.md.

pub use benchgen;
pub use conformal;
pub use nanosql;
pub use rts_client as client;
pub use rts_core as core;
pub use rts_serve as serve;
pub use rts_served as served;
pub use simlm;
pub use tinynn;

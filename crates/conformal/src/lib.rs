//! # conformal — distribution-free prediction sets
//!
//! A from-scratch implementation of the conformal-prediction machinery the
//! RTS paper builds its Branching Point Predictor on (§3.2):
//!
//! * **Split (inductive) conformal prediction** ([`split`]): given a
//!   held-out calibration set of nonconformity scores, build prediction
//!   sets `C(x)` with the finite-sample marginal guarantee
//!   `P(y* ∈ C(x)) ≥ 1 − α` (Vovk et al. 2005; Papadopoulos et al. 2002).
//! * **Non-exchangeable conformal prediction** ([`nonx`]): the
//!   KNN-weighted variant of Barber et al. (2023) used by the paper when
//!   calibration and test distributions may drift — weights
//!   `w_k = exp(−‖h − h_k‖² / τ)` localise the calibration quantile.
//! * **Set merging** ([`merge`]): aggregating per-layer prediction sets
//!   via the θ-majority vote of Theorem 1 (coverage ≥ 1 − α/(1−θ), size
//!   bound of Theorem 2) and the random-permutation merge of Algorithm 1 /
//!   Theorem 3 (coverage ≥ 1 − 2α with sets never larger than the
//!   majority vote at θ = ½), after Gasparin & Ramdas (2024).
//!
//! Label spaces are small (`≤ 64` labels, the RTS case is binary), so
//! prediction sets are a single-word bitmask ([`set::LabelSet`]).
//!
//! ```
//! use conformal::split::SplitConformal;
//!
//! // A perfectly informative binary classifier on the calibration set:
//! // scores are 1 − p(true class), here all tiny. (With n calibration
//! // points the threshold is the ⌈(n+1)(1−α)⌉-th smallest score, so n
//! // must satisfy (n+1)(1−α) ≤ n for a finite threshold.)
//! let scores: Vec<f64> = (0..20).map(|i| 0.01 + 0.001 * i as f64).collect();
//! let cp = SplitConformal::from_scores(scores, 0.1);
//! // At test time a confident p(y=1) = 0.99 yields the singleton {1}.
//! let set = cp.predict_binary(0.99);
//! assert!(set.contains(1) && !set.contains(0));
//! ```

pub mod merge;
pub mod nonx;
pub mod set;
pub mod split;

pub use merge::{majority_vote, random_permutation_merge};
pub use nonx::NonExchangeableConformal;
pub use set::LabelSet;
pub use split::SplitConformal;

//! Non-exchangeable conformal prediction (Barber et al., 2023), in the
//! KNN-weighted form the RTS paper describes in §3.2.2.
//!
//! The calibration set is stored as pairs `(h_i, σ_i)` of feature vectors
//! and nonconformity scores. For a test point `h*` we find its `K`
//! nearest calibration neighbours, weight them by
//! `w_k = exp(−‖h* − h_k‖²₂ / τ)`, normalise
//! `ŵ_i = w_i / (1 + Σ_k w_k)`, and use the *weighted* quantile
//!
//! ```text
//! ε̂ = inf { ε : Σ_i ŵ_i · 1{σ_i < ε} ≥ 1 − α }
//! ```
//!
//! Because the normaliser includes the `+1` term (mass reserved for the
//! test point, exactly as in Barber et al.), the total weight is < 1; if
//! it cannot reach `1 − α` the threshold is `+∞` and the prediction set
//! is the full label set — validity is preserved by vacuity. The coverage
//! bound in the non-exchangeable case carries an additional drift term
//! (Σ ŵ_i · d_TV(P_i, P_test)); with localised weights this term is small
//! whenever similar calibration points are plentiful.

use crate::set::LabelSet;

/// KNN-weighted non-exchangeable conformal predictor.
#[derive(Debug, Clone)]
pub struct NonExchangeableConformal {
    points: Vec<Vec<f32>>,
    scores: Vec<f64>,
    k: usize,
    tau: f64,
    alpha: f64,
}

impl NonExchangeableConformal {
    /// Store the transformed calibration set `D' = {(h_i, σ_i)}`.
    ///
    /// * `k` — number of neighbours consulted per test point,
    /// * `tau` — kernel bandwidth (larger ⇒ flatter weights ⇒ behaviour
    ///   approaches unweighted split conformal on the K neighbours).
    pub fn new(points: Vec<Vec<f32>>, scores: Vec<f64>, k: usize, tau: f64, alpha: f64) -> Self {
        assert_eq!(points.len(), scores.len(), "points/scores length mismatch");
        assert!(!points.is_empty(), "empty calibration set");
        assert!(k > 0, "k must be positive");
        assert!(tau > 0.0, "tau must be positive");
        assert!((0.0..1.0).contains(&alpha), "alpha must be in (0,1)");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "ragged calibration points"
        );
        let k = k.min(points.len());
        Self {
            points,
            scores,
            k,
            tau,
            alpha,
        }
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    pub fn n_calibration(&self) -> usize {
        self.points.len()
    }

    /// The locally weighted threshold ε̂ for a test feature vector.
    pub fn threshold_for(&self, h: &[f32]) -> f64 {
        assert_eq!(h.len(), self.points[0].len(), "dimension mismatch");
        // Brute-force KNN: calibration sets here are ≤ a few thousand
        // points and queried once per generated token, so O(n·d) scan +
        // partial select is faster than building an index.
        let mut dist_idx: Vec<(f64, usize)> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d2: f64 = p
                    .iter()
                    .zip(h.iter())
                    .map(|(&a, &b)| {
                        let d = (a - b) as f64;
                        d * d
                    })
                    .sum();
                (d2, i)
            })
            .collect();
        let k = self.k.min(dist_idx.len());
        dist_idx.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbours = &dist_idx[..k];

        // Kernel weights, normalised with the +1 reserved-mass term.
        let weights: Vec<f64> = neighbours
            .iter()
            .map(|(d2, _)| (-d2 / self.tau).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let norm = 1.0 + total;

        // Weighted quantile over (σ, ŵ) sorted by score.
        let mut pairs: Vec<(f64, f64)> = neighbours
            .iter()
            .zip(weights.iter())
            .map(|(&(_, i), &w)| (self.scores[i], w / norm))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let target = 1.0 - self.alpha;
        let mut cum = 0.0;
        for &(score, w) in &pairs {
            cum += w;
            if cum >= target {
                return score;
            }
        }
        f64::INFINITY
    }

    /// Prediction set for a test point with per-label probabilities.
    pub fn predict(&self, h: &[f32], probs: &[f64]) -> LabelSet {
        let eps = self.threshold_for(h);
        let cut = 1.0 - eps;
        let mut set = LabelSet::EMPTY;
        for (label, &p) in probs.iter().enumerate() {
            if p >= cut {
                set.insert(label);
            }
        }
        set
    }

    /// Binary shortcut.
    pub fn predict_binary(&self, h: &[f32], p1: f64) -> LabelSet {
        self.predict(h, &[1.0 - p1, p1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::rng::SplitMix64;

    /// Two clusters: cluster A has tiny scores (classifier reliable
    /// there), cluster B has large scores. The local threshold must be
    /// small near A and large near B — the whole point of weighting.
    #[test]
    fn threshold_localises_to_neighbourhood() {
        let mut points = Vec::new();
        let mut scores = Vec::new();
        for i in 0..50 {
            points.push(vec![0.0 + (i as f32) * 1e-3, 0.0]);
            scores.push(0.02);
            points.push(vec![10.0 + (i as f32) * 1e-3, 10.0]);
            scores.push(0.8);
        }
        let cp = NonExchangeableConformal::new(points, scores, 20, 1.0, 0.1);
        let eps_a = cp.threshold_for(&[0.0, 0.0]);
        let eps_b = cp.threshold_for(&[10.0, 10.0]);
        assert!(eps_a < 0.1, "eps near reliable cluster: {eps_a}");
        assert!(eps_b > 0.5, "eps near unreliable cluster: {eps_b}");
    }

    #[test]
    fn far_test_point_gets_vacuous_set() {
        // All neighbours are very far → weights ≈ 0 → Σŵ < 1−α → ∞.
        let points = vec![vec![0.0_f32, 0.0]; 30];
        let scores = vec![0.05; 30];
        let cp = NonExchangeableConformal::new(points, scores, 10, 0.5, 0.1);
        let eps = cp.threshold_for(&[100.0, 100.0]);
        assert!(eps.is_infinite());
        assert_eq!(cp.predict_binary(&[100.0, 100.0], 0.99), LabelSet::BOTH);
    }

    #[test]
    fn reduces_to_quantile_with_flat_kernel() {
        // With τ → ∞ and all points equidistant, weights are uniform and
        // the threshold is the smallest score whose cumulative uniform
        // weight reaches (1−α)(n+1)/n — slightly above the plain quantile.
        let points: Vec<Vec<f32>> = (0..99).map(|_| vec![0.0, 0.0]).collect();
        let scores: Vec<f64> = (1..=99).map(|i| i as f64 / 100.0).collect();
        let cp = NonExchangeableConformal::new(points, scores, 99, 1e12, 0.1);
        let eps = cp.threshold_for(&[0.0, 0.0]);
        // target = 0.9, each ŵ = 1/100 → need 90 scores < ε → ε = 0.90.
        assert!((eps - 0.90).abs() < 1e-9, "eps {eps}");
    }

    #[test]
    fn empirical_coverage_on_exchangeable_data() {
        // When data actually are exchangeable the weighted method must
        // still cover (it is conservative vs. split conformal).
        let alpha = 0.1;
        let mut rng = SplitMix64::new(7);
        let mut covered = 0;
        let mut total = 0;
        for _ in 0..100 {
            let mut points = Vec::new();
            let mut scores = Vec::new();
            for _ in 0..150 {
                let x = rng.next_gaussian() as f32;
                let p1 = 1.0 / (1.0 + (-x as f64).exp());
                let y = rng.next_bool(p1);
                points.push(vec![x]);
                scores.push(1.0 - if y { p1 } else { 1.0 - p1 });
            }
            let cp = NonExchangeableConformal::new(points, scores, 50, 10.0, alpha);
            for _ in 0..10 {
                let x = rng.next_gaussian() as f32;
                let p1 = 1.0 / (1.0 + (-x as f64).exp());
                let y = rng.next_bool(p1) as usize;
                if cp.predict_binary(&[x], p1).contains(y) {
                    covered += 1;
                }
                total += 1;
            }
        }
        let cov = covered as f64 / total as f64;
        assert!(cov >= 1.0 - alpha - 0.03, "coverage {cov}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = NonExchangeableConformal::new(vec![vec![0.0]], vec![0.1, 0.2], 1, 1.0, 0.1);
    }
}

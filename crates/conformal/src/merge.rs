//! Merging prediction sets from several conformal predictors.
//!
//! The multi-layer BPP (§3.2.3 of the paper) runs one conformal predictor
//! per LLM hidden layer and must combine their prediction sets into a
//! single decision. Two merges are implemented:
//!
//! * [`majority_vote`] — the θ-fraction vote of **Theorem 1**:
//!   `C_θ = { c : (1/n) Σ_i 1{c ∈ C_i} > θ }`, with coverage
//!   `P(c* ∈ C_θ) ≥ 1 − α/(1−θ)` (Markov) and the size bound of
//!   **Theorem 2**: `|C_θ| ≤ (1/nθ) Σ_i |C_i|`.
//! * [`random_permutation_merge`] — **Algorithm 1** (after Gasparin &
//!   Ramdas 2024): visit the sets in a uniformly random order and keep
//!   only labels that hold a ≥ ½ majority in *every* prefix. **Theorem 3**
//!   (via the exchangeable Markov inequality): coverage ≥ 1 − 2α and
//!   `|C_π| ≤ |C_{θ=½}|` — same worst-case guarantee as the θ=½ vote but
//!   with never-larger (often smaller) sets.

use crate::set::LabelSet;
use tinynn::rng::SplitMix64;

/// θ-majority vote over prediction sets (Theorem 1).
///
/// A label enters the merged set iff it appears in *strictly more* than a
/// θ fraction of the inputs. `θ = 0.5` is the plain majority vote with
/// coverage ≥ 1 − 2α.
pub fn majority_vote(sets: &[LabelSet], theta: f64, n_labels: usize) -> LabelSet {
    assert!(!sets.is_empty(), "no sets to merge");
    assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
    let n = sets.len() as f64;
    let mut merged = LabelSet::EMPTY;
    for label in 0..n_labels {
        let count = sets.iter().filter(|s| s.contains(label)).count() as f64;
        if count / n > theta {
            merged.insert(label);
        }
    }
    merged
}

/// Prefix-majority vote with the `count ≥ i/2` (inclusive) rule used by
/// each step of Algorithm 1.
fn prefix_majority(counts: &[usize], i: usize, n_labels: usize) -> LabelSet {
    let mut set = LabelSet::EMPTY;
    for (label, &count) in counts.iter().enumerate().take(n_labels) {
        // count ≥ i/2 without floating point: 2·count ≥ i.
        if 2 * count >= i {
            set.insert(label);
        }
    }
    set
}

/// Algorithm 1: random-permutation merge.
///
/// Iterates the sets in a random order and intersects the running result
/// with the inclusive-majority set of every prefix. (The paper's
/// pseudo-code initialises `C_π ← ∅` before intersecting, which would
/// always produce ∅; the intent — and what Gasparin & Ramdas define — is
/// to intersect across prefixes, so we initialise with the full label
/// set; the first prefix then reduces it to `C_{π₁}`.)
///
/// Randomness comes from the supplied deterministic generator so the
/// merge is reproducible; Theorem 3's guarantee is marginal over this
/// permutation draw.
pub fn random_permutation_merge(
    sets: &[LabelSet],
    n_labels: usize,
    rng: &mut SplitMix64,
) -> LabelSet {
    assert!(!sets.is_empty(), "no sets to merge");
    let n = sets.len();
    // The mBPP calls this once per generated token with k ≤ 64 small
    // sets; stack buffers keep the monitoring hot loop allocation-free.
    // The shuffle consumes the same RNG draws either way, so results
    // are identical between the stack and heap paths.
    if n <= 64 && n_labels <= 64 {
        let mut order = [0usize; 64];
        for (i, slot) in order[..n].iter_mut().enumerate() {
            *slot = i;
        }
        let mut counts = [0usize; 64];
        tinynn::rng::shuffle(&mut order[..n], rng);
        merge_over_order(sets, &order[..n], &mut counts[..n_labels], n_labels)
    } else {
        let mut order: Vec<usize> = (0..n).collect();
        let mut counts = vec![0usize; n_labels];
        tinynn::rng::shuffle(&mut order, rng);
        merge_over_order(sets, &order, &mut counts, n_labels)
    }
}

/// Algorithm 1's prefix-intersection loop over an already-shuffled
/// visit order, with caller-provided (zeroed) count storage.
fn merge_over_order(
    sets: &[LabelSet],
    order: &[usize],
    counts: &mut [usize],
    n_labels: usize,
) -> LabelSet {
    let mut merged = LabelSet::full(n_labels);
    for (i, &idx) in order.iter().enumerate() {
        for label in sets[idx].iter() {
            if label < n_labels {
                counts[label] += 1;
            }
        }
        merged = merged.intersect(prefix_majority(counts, i + 1, n_labels));
        if merged.is_empty() {
            break; // intersection can only shrink; nothing left to do
        }
    }
    merged
}

/// Inclusive (≥ n/2) majority vote over all sets — the final prefix of
/// Algorithm 1, exposed for the size-bound comparison tests and the
/// ablation benches.
pub fn majority_vote_inclusive(sets: &[LabelSet], n_labels: usize) -> LabelSet {
    assert!(!sets.is_empty(), "no sets to merge");
    let mut counts = vec![0usize; n_labels];
    for s in sets {
        for label in s.iter() {
            if label < n_labels {
                counts[label] += 1;
            }
        }
    }
    prefix_majority(&counts, sets.len(), n_labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(labels: &[usize]) -> LabelSet {
        labels.iter().copied().collect()
    }

    #[test]
    fn majority_vote_basic() {
        let sets = [ls(&[1]), ls(&[1]), ls(&[0])];
        assert_eq!(majority_vote(&sets, 0.5, 2), ls(&[1]));
    }

    #[test]
    fn majority_vote_strictness() {
        // Label 0 in exactly half the sets: strict > θ=0.5 excludes it.
        let sets = [ls(&[0]), ls(&[0]), ls(&[1]), ls(&[1])];
        assert_eq!(majority_vote(&sets, 0.5, 2), LabelSet::EMPTY);
        // Inclusive vote keeps both.
        assert_eq!(majority_vote_inclusive(&sets, 2), LabelSet::BOTH);
    }

    #[test]
    fn theta_zero_is_union() {
        let sets = [ls(&[0]), ls(&[1])];
        assert_eq!(majority_vote(&sets, 0.0, 2), LabelSet::BOTH);
    }

    #[test]
    fn unanimous_sets_pass_any_theta() {
        let sets = [ls(&[1]); 7];
        for theta in [0.0, 0.25, 0.5, 0.9] {
            assert_eq!(majority_vote(&sets, theta, 2), ls(&[1]));
        }
    }

    /// Theorem 2: |C_θ| ≤ (1/(nθ)) Σ |C_i| for randomly generated sets.
    #[test]
    fn theorem2_size_bound() {
        let mut rng = SplitMix64::new(99);
        for trial in 0..200 {
            let n = 3 + (trial % 8);
            let n_labels = 6;
            let sets: Vec<LabelSet> = (0..n)
                .map(|_| {
                    (0..n_labels)
                        .filter(|_| rng.next_bool(0.4))
                        .collect::<LabelSet>()
                })
                .collect();
            for &theta in &[0.3, 0.5, 0.7] {
                let merged = majority_vote(&sets, theta, n_labels);
                let sum: usize = sets.iter().map(|s| s.len()).sum();
                let bound = sum as f64 / (n as f64 * theta);
                assert!(
                    merged.len() as f64 <= bound + 1e-9,
                    "trial {trial}: |C_θ|={} > bound {bound}",
                    merged.len()
                );
            }
        }
    }

    /// Theorem 3 (second part): |C_π| ≤ |C_{θ=½}| — the permutation merge
    /// never yields a larger set than the inclusive majority vote (its
    /// own final prefix), and for odd n also never larger than the strict
    /// vote of Theorem 1.
    #[test]
    fn theorem3_size_never_exceeds_majority() {
        let mut rng = SplitMix64::new(4242);
        for trial in 0..300 {
            let n = 3 + (trial % 9);
            let n_labels = 4;
            let sets: Vec<LabelSet> = (0..n)
                .map(|_| {
                    (0..n_labels)
                        .filter(|_| rng.next_bool(0.5))
                        .collect::<LabelSet>()
                })
                .collect();
            let merged = random_permutation_merge(&sets, n_labels, &mut rng);
            let inclusive = majority_vote_inclusive(&sets, n_labels);
            assert!(
                merged.is_subset_of(inclusive),
                "trial {trial}: C_π {merged} ⊄ C_inclusive {inclusive}"
            );
            if n % 2 == 1 {
                let strict = majority_vote(&sets, 0.5, n_labels);
                // For odd n the inclusive and strict votes coincide.
                assert_eq!(strict, inclusive, "odd-n vote mismatch");
            }
        }
    }

    /// Theorem 1 coverage: simulate predictors with per-set miss rate α
    /// and confirm the merged miss rate stays below α/(1−θ).
    #[test]
    fn theorem1_coverage_bound_empirically() {
        let alpha = 0.1;
        let theta = 0.5;
        let mut rng = SplitMix64::new(31337);
        let trials = 20_000;
        let mut misses = 0usize;
        for _ in 0..trials {
            // True label 1. Each of 5 predictors covers it w.p. 1−α and
            // adds the other label w.p. 0.3 (independent noise).
            let sets: Vec<LabelSet> = (0..5)
                .map(|_| {
                    let mut s = LabelSet::EMPTY;
                    if rng.next_bool(1.0 - alpha) {
                        s.insert(1);
                    }
                    if rng.next_bool(0.3) {
                        s.insert(0);
                    }
                    s
                })
                .collect();
            if !majority_vote(&sets, theta, 2).contains(1) {
                misses += 1;
            }
        }
        let miss_rate = misses as f64 / trials as f64;
        let bound = alpha / (1.0 - theta);
        assert!(miss_rate <= bound, "miss rate {miss_rate} > bound {bound}");
    }

    /// Theorem 3 coverage: the permutation merge misses the true label at
    /// most 2α of the time (marginally over the permutation draw).
    #[test]
    fn theorem3_coverage_bound_empirically() {
        let alpha = 0.1;
        let mut rng = SplitMix64::new(777);
        let trials = 20_000;
        let mut misses = 0usize;
        for _ in 0..trials {
            let sets: Vec<LabelSet> = (0..5)
                .map(|_| {
                    let mut s = LabelSet::EMPTY;
                    if rng.next_bool(1.0 - alpha) {
                        s.insert(1);
                    }
                    if rng.next_bool(0.3) {
                        s.insert(0);
                    }
                    s
                })
                .collect();
            if !random_permutation_merge(&sets, 2, &mut rng).contains(1) {
                misses += 1;
            }
        }
        let miss_rate = misses as f64 / trials as f64;
        assert!(miss_rate <= 2.0 * alpha, "miss rate {miss_rate} > 2α");
    }

    #[test]
    fn permutation_merge_is_deterministic_given_rng() {
        let sets = [ls(&[0, 1]), ls(&[1]), ls(&[1]), ls(&[0]), ls(&[0, 1])];
        let a = random_permutation_merge(&sets, 2, &mut SplitMix64::new(5));
        let b = random_permutation_merge(&sets, 2, &mut SplitMix64::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn single_set_passes_through() {
        let sets = [ls(&[1])];
        assert_eq!(
            random_permutation_merge(&sets, 2, &mut SplitMix64::new(1)),
            ls(&[1])
        );
        assert_eq!(majority_vote(&sets, 0.5, 2), ls(&[1]));
    }
}

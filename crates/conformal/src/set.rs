//! Prediction sets over small label spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A subset of labels `0..64` packed into one machine word.
///
/// The RTS label space is binary (`0` = not a branching point, `1` =
/// branching point), but the merge theorems are label-count agnostic, so
/// the bitmask keeps the library general without costing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LabelSet(u64);

impl LabelSet {
    /// The empty set.
    pub const EMPTY: LabelSet = LabelSet(0);

    /// Set containing a single label.
    #[inline]
    pub fn singleton(label: usize) -> Self {
        debug_assert!(label < 64);
        LabelSet(1 << label)
    }

    /// Set containing every label in `0..n`.
    #[inline]
    pub fn full(n: usize) -> Self {
        debug_assert!(n <= 64);
        if n == 64 {
            LabelSet(u64::MAX)
        } else {
            LabelSet((1u64 << n) - 1)
        }
    }

    /// Both binary labels — the "uninformative" set.
    pub const BOTH: LabelSet = LabelSet(0b11);

    #[inline]
    pub fn insert(&mut self, label: usize) {
        debug_assert!(label < 64);
        self.0 |= 1 << label;
    }

    #[inline]
    pub fn remove(&mut self, label: usize) {
        debug_assert!(label < 64);
        self.0 &= !(1 << label);
    }

    #[inline]
    pub fn contains(self, label: usize) -> bool {
        debug_assert!(label < 64);
        self.0 & (1 << label) != 0
    }

    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn union(self, other: LabelSet) -> LabelSet {
        LabelSet(self.0 | other.0)
    }

    #[inline]
    pub fn intersect(self, other: LabelSet) -> LabelSet {
        LabelSet(self.0 & other.0)
    }

    #[inline]
    pub fn is_subset_of(self, other: LabelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterate over member labels in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let label = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(label)
            }
        })
    }
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for l in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for LabelSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = LabelSet::EMPTY;
        for l in iter {
            s.insert(l);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = LabelSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(5);
        assert!(s.contains(0) && s.contains(5) && !s.contains(1));
        assert_eq!(s.len(), 2);
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a: LabelSet = [0usize, 1, 2].into_iter().collect();
        let b: LabelSet = [1usize, 3].into_iter().collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersect(b), LabelSet::singleton(1));
        assert!(LabelSet::singleton(1).is_subset_of(a));
        assert!(!b.is_subset_of(a));
    }

    #[test]
    fn full_and_both() {
        assert_eq!(LabelSet::full(2), LabelSet::BOTH);
        assert_eq!(LabelSet::full(64).len(), 64);
        assert_eq!(LabelSet::full(0), LabelSet::EMPTY);
    }

    #[test]
    fn iter_ascending() {
        let s: LabelSet = [7usize, 2, 40].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 7, 40]);
    }

    #[test]
    fn display() {
        let s: LabelSet = [0usize, 1].into_iter().collect();
        assert_eq!(s.to_string(), "{0,1}");
        assert_eq!(LabelSet::EMPTY.to_string(), "{}");
    }
}

//! Split (inductive) conformal prediction.
//!
//! Given a trained classifier and a held-out calibration set, the
//! nonconformity score of a calibration pair `(x_i, y_i)` is
//! `σ_i = 1 − p(y_i | x_i)` (the paper's choice, §3.2.2). The threshold
//!
//! ```text
//! ε = the ⌈(n+1)(1−α)⌉-th smallest calibration score   (n = |D_c|)
//! ```
//!
//! yields the prediction set `C(x) = { y : p(y|x) ≥ 1 − ε }`, which under
//! exchangeability satisfies `P(y* ∈ C(x)) ≥ 1 − α` *marginally* over the
//! draw of calibration data and test point.

use crate::set::LabelSet;
use serde::{Deserialize, Serialize};

/// A calibrated split-conformal predictor for classification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitConformal {
    threshold: f64,
    alpha: f64,
    n_calibration: usize,
}

impl SplitConformal {
    /// Calibrate from nonconformity scores `σ_i = 1 − p(y_i | x_i)`.
    ///
    /// If `⌈(n+1)(1−α)⌉ > n` (tiny calibration sets / tiny α) the
    /// threshold is `+∞` and every prediction set is the full label set —
    /// the vacuous-but-valid degenerate case.
    pub fn from_scores(mut scores: Vec<f64>, alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in (0,1)");
        assert!(!scores.is_empty(), "empty calibration set");
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "nonconformity scores must be finite"
        );
        let n = scores.len();
        let rank = ((n as f64 + 1.0) * (1.0 - alpha)).ceil() as usize;
        let threshold = if rank > n {
            f64::INFINITY
        } else {
            // rank is 1-based; select the (rank-1)-th order statistic.
            let (_, t, _) = scores.select_nth_unstable_by(rank - 1, f64::total_cmp);
            *t
        };
        Self {
            threshold,
            alpha,
            n_calibration: n,
        }
    }

    /// The calibrated quantile ε.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The nominal error level this predictor was calibrated at.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of calibration points used.
    pub fn n_calibration(&self) -> usize {
        self.n_calibration
    }

    /// Prediction set over an arbitrary label space given per-label
    /// probabilities: `C = { y : p(y|x) ≥ 1 − ε }`.
    pub fn predict(&self, probs: &[f64]) -> LabelSet {
        assert!(probs.len() <= 64, "label space too large for LabelSet");
        let cut = 1.0 - self.threshold;
        let mut set = LabelSet::EMPTY;
        for (label, &p) in probs.iter().enumerate() {
            if p >= cut {
                set.insert(label);
            }
        }
        set
    }

    /// Binary shortcut: `p1 = p(y=1 | x)`, `p0 = 1 − p1`.
    pub fn predict_binary(&self, p1: f64) -> LabelSet {
        self.predict(&[1.0 - p1, p1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::rng::SplitMix64;

    #[test]
    fn threshold_is_correct_order_statistic() {
        // n = 9, alpha = 0.1 → rank = ceil(10 * 0.9) = 9 → the maximum.
        let scores: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
        let cp = SplitConformal::from_scores(scores, 0.1);
        assert!((cp.threshold() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn tiny_calibration_gives_infinite_threshold() {
        // n = 3, alpha = 0.1 → rank = ceil(4 * 0.9) = 4 > 3 → ∞.
        let cp = SplitConformal::from_scores(vec![0.1, 0.2, 0.3], 0.1);
        assert!(cp.threshold().is_infinite());
        // Full set regardless of probability.
        assert_eq!(cp.predict_binary(0.999), LabelSet::BOTH);
    }

    #[test]
    fn confident_correct_classifier_gives_singletons() {
        let scores = vec![0.01; 99];
        let cp = SplitConformal::from_scores(scores, 0.1);
        let set = cp.predict_binary(0.995);
        assert_eq!(set, LabelSet::singleton(1));
        let set = cp.predict_binary(0.005);
        assert_eq!(set, LabelSet::singleton(0));
    }

    #[test]
    fn uncertain_classifier_gives_both_labels() {
        // Large calibration scores → large ε → wide sets.
        let scores = vec![0.6; 99];
        let cp = SplitConformal::from_scores(scores, 0.1);
        assert_eq!(cp.predict_binary(0.5), LabelSet::BOTH);
    }

    #[test]
    fn multiclass_prediction_set() {
        let cp = SplitConformal::from_scores(vec![0.3; 99], 0.1);
        // cut = 0.7: only labels with p >= 0.7 enter.
        let set = cp.predict(&[0.75, 0.2, 0.05]);
        assert_eq!(set, LabelSet::singleton(0));
        let set = cp.predict(&[0.1, 0.1, 0.8]);
        assert_eq!(set, LabelSet::singleton(2));
    }

    /// Empirical check of the 1−α marginal coverage guarantee.
    ///
    /// Model: p(y=1|x) is well calibrated (the true label is Bernoulli of
    /// the predicted probability). Scores on calibration and test are then
    /// exchangeable, so coverage must be ≥ 1 − α up to simulation noise.
    #[test]
    fn marginal_coverage_holds_empirically() {
        let alpha = 0.1;
        let mut rng = SplitMix64::new(2024);
        let trials = 300;
        let mut covered = 0usize;
        let mut total = 0usize;
        for _ in 0..trials {
            // Fresh calibration draw each trial (the guarantee is marginal
            // over calibration + test randomness).
            let cal: Vec<f64> = (0..200)
                .map(|_| {
                    let p1 = rng.next_f64();
                    let y = rng.next_bool(p1);
                    1.0 - if y { p1 } else { 1.0 - p1 }
                })
                .collect();
            let cp = SplitConformal::from_scores(cal, alpha);
            for _ in 0..20 {
                let p1 = rng.next_f64();
                let y = rng.next_bool(p1) as usize;
                if cp.predict_binary(p1).contains(y) {
                    covered += 1;
                }
                total += 1;
            }
        }
        let coverage = covered as f64 / total as f64;
        assert!(
            coverage >= 1.0 - alpha - 0.02,
            "empirical coverage {coverage} below guarantee"
        );
        // Also not absurdly conservative for a calibrated model.
        assert!(coverage <= 1.0, "coverage {coverage}");
    }

    #[test]
    #[should_panic(expected = "empty calibration set")]
    fn empty_calibration_panics() {
        let _ = SplitConformal::from_scores(vec![], 0.1);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn bad_alpha_panics() {
        let _ = SplitConformal::from_scores(vec![0.1], 1.5);
    }
}

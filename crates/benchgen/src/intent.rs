//! Query-intent sampling: gold SQL, natural-language question, and gold
//! schema links with confusion sets.
//!
//! Intents are stratified by the profile's difficulty mix:
//!
//! * **simple** — single-table lookup / count / top-1,
//! * **moderate** — one FK join lookup, filtered aggregate, group-count,
//! * **challenging** — join + group + HAVING/ORDER, two-hop join chains
//!   (the Figure 1a "race with the minimum first lap time" shape lives
//!   here).
//!
//! Every gold query references only columns whose predicate constants
//! exist in the generated data, so gold SQL always executes.

use crate::attrs::singular;
use crate::instance::{Confusable, Difficulty, GoldLink, Instance, SchemaElementRef};
use crate::profile::BenchmarkProfile;
use crate::schemagen::{ColumnMeta, ColumnRole, DbMeta, GeneratedDb, TableMeta};
use nanosql::ast::{
    AggFunc, BinOp, ColumnRef, Expr, JoinClause, JoinKind, OrderByItem, SelectItem, SelectStmt,
};
use nanosql::{DataType, Value};
use tinynn::rng::SplitMix64;

/// Sample a difficulty according to the profile mix.
fn sample_difficulty(profile: &BenchmarkProfile, rng: &mut SplitMix64) -> Difficulty {
    let x = rng.next_f64();
    if x < profile.difficulty_mix[0] {
        Difficulty::Simple
    } else if x < profile.difficulty_mix[0] + profile.difficulty_mix[1] {
        Difficulty::Moderate
    } else {
        Difficulty::Challenging
    }
}

fn pick<'a, T>(items: &[&'a T], rng: &mut SplitMix64) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(items[rng.next_below(items.len())])
    }
}

/// An equality predicate on a text attribute whose constant is drawn
/// from the column's value pool (guaranteed present in the data).
fn text_filter(table: &TableMeta, col: &ColumnMeta, rng: &mut SplitMix64) -> (Expr, Value) {
    let v = col.value_pool[rng.next_below(col.value_pool.len())].clone();
    (
        Expr::eq(Expr::col(&table.name, &col.name), Expr::lit(v.clone())),
        v,
    )
}

/// A comparison predicate on a numeric measure.
fn measure_filter(
    table: &TableMeta,
    col: &ColumnMeta,
    rng: &mut SplitMix64,
) -> (Expr, Value, BinOp) {
    let (constant, op) = match col.spec.map(|s| s.base) {
        Some("year") => (Value::Int(1995 + rng.next_below(20) as i64), BinOp::Ge),
        Some("age") => (Value::Int(25 + rng.next_below(40) as i64), BinOp::Lt),
        _ => {
            let op = if rng.next_bool(0.5) {
                BinOp::Gt
            } else {
                BinOp::Lt
            };
            match col.ty {
                DataType::Int => (Value::Int(100 + rng.next_below(700) as i64), op),
                _ => (Value::Float((100 + rng.next_below(700)) as f64), op),
            }
        }
    };
    (
        Expr::binary(
            op,
            Expr::col(&table.name, &col.name),
            Expr::lit(constant.clone()),
        ),
        constant,
        op,
    )
}

fn cmp_phrase(op: BinOp) -> &'static str {
    match op {
        BinOp::Gt | BinOp::Ge => "greater than",
        _ => "below",
    }
}

fn agg_phrase(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Avg => "average",
        AggFunc::Sum => "total",
        AggFunc::Min => "minimum",
        AggFunc::Max => "maximum",
        AggFunc::Count => "number of",
    }
}

/// The phrase a question uses for a column, plus whether the choice was
/// deliberately ambiguous (a phrase shared with other attributes).
fn choose_mention(
    col: &ColumnMeta,
    profile: &BenchmarkProfile,
    rng: &mut SplitMix64,
) -> (String, bool) {
    match col.spec {
        Some(spec) => {
            if spec.phrases.len() > 1 && rng.next_bool(profile.p_ambiguous) {
                // Deliberately pick a non-canonical, shareable phrase.
                let alt = spec.phrases[1 + rng.next_below(spec.phrases.len() - 1)];
                (alt.to_string(), true)
            } else {
                (spec.phrases[0].to_string(), false)
            }
        }
        None => (col.name.clone(), false),
    }
}

/// Build the gold link for a table reference.
fn table_link(
    meta: &DbMeta,
    table: &TableMeta,
    profile: &BenchmarkProfile,
    rng: &mut SplitMix64,
) -> GoldLink {
    let mention = singular(table.entity);
    let ambiguous_phrasing = rng.next_bool(profile.p_ambiguous);
    let damp = if ambiguous_phrasing { 1.0 } else { 0.4 };
    let mut confusables = Vec::new();
    for other in &meta.tables {
        if other.name == table.name {
            continue;
        }
        // Figure 1a: a table whose FK column carries this entity's name
        // ("race" could mean `races` or `lapTimes.raceId`).
        if other.fk_to(&table.name).is_some() {
            confusables.push(Confusable {
                alt: SchemaElementRef::table(&other.name),
                weight: 0.45 * damp,
            });
        } else if table.parent.as_deref() == Some(other.name.as_str()) {
            // Structural: the parent is topically adjacent.
            confusables.push(Confusable {
                alt: SchemaElementRef::table(&other.name),
                weight: 0.20 * damp,
            });
        } else if other.entity.starts_with(&mention[..mention.len().min(4)]) {
            // Lexical prefix overlap ("scoring" vs "scores").
            confusables.push(Confusable {
                alt: SchemaElementRef::table(&other.name),
                weight: 0.30 * damp,
            });
        }
    }
    let ambiguous = ambiguous_phrasing && !confusables.is_empty();
    GoldLink {
        element: SchemaElementRef::table(&table.name),
        mention,
        confusables,
        ambiguous,
        underspecified: false,
    }
}

/// Build the gold link for a column reference.
fn column_link(
    scope: &[&TableMeta],
    table: &TableMeta,
    col: &ColumnMeta,
    profile: &BenchmarkProfile,
    rng: &mut SplitMix64,
) -> GoldLink {
    let (mention, ambiguous_phrasing) = choose_mention(col, profile, rng);
    let mut confusables = Vec::new();

    match &col.role {
        ColumnRole::PrimaryKey | ColumnRole::ForeignKey(_) => {
            // Key columns confuse with their same-named twins in other
            // scope tables (raceId lives in both `races` and `lapTimes`).
            for other in scope {
                if other.name == table.name {
                    continue;
                }
                if let Some(twin) = other.column(&col.name) {
                    confusables.push(Confusable {
                        alt: SchemaElementRef::column(&other.name, &twin.name),
                        weight: 0.40,
                    });
                }
            }
        }
        ColumnRole::Attribute => {
            let spec = col.spec.expect("attributes have specs");
            // Phrase collisions across the scope.
            for other in scope {
                for oc in other.attributes() {
                    if other.name == table.name && oc.name == col.name {
                        continue;
                    }
                    let Some(ospec) = oc.spec else { continue };
                    if ospec.phrases.contains(&mention.as_str()) {
                        let mut w = 0.50;
                        if oc.underspecified() {
                            w += 0.15;
                        }
                        if other.name != table.name {
                            w -= 0.10; // cross-table confusion slightly less sticky
                        }
                        confusables.push(Confusable {
                            alt: SchemaElementRef::column(&other.name, &oc.name),
                            weight: w,
                        });
                    }
                }
            }
            // Figure 1b: an underspecified gold column makes every
            // same-typed sibling in its own table a live candidate
            // (EdOps vs Rtype — nothing lexical separates them).
            if col.underspecified() {
                let mut added = 0;
                for oc in table.attributes() {
                    if oc.name == col.name || oc.ty != spec.ty {
                        continue;
                    }
                    if confusables
                        .iter()
                        .any(|c| c.alt == SchemaElementRef::column(&table.name, &oc.name))
                    {
                        continue;
                    }
                    confusables.push(Confusable {
                        alt: SchemaElementRef::column(&table.name, &oc.name),
                        weight: 0.35,
                    });
                    added += 1;
                    if added >= 4 {
                        break;
                    }
                }
            }
        }
    }

    let ambiguous = (ambiguous_phrasing || confusables.iter().any(|c| c.weight >= 0.5))
        && !confusables.is_empty();
    GoldLink {
        element: SchemaElementRef::column(&table.name, &col.name),
        mention,
        confusables,
        ambiguous,
        underspecified: col.underspecified(),
    }
}

/// Extract gold tables/columns from a statement and assemble all links.
fn build_links(
    meta: &DbMeta,
    stmt: &SelectStmt,
    profile: &BenchmarkProfile,
    rng: &mut SplitMix64,
) -> (Vec<String>, Vec<(String, String)>, Vec<GoldLink>) {
    let mut gold_tables: Vec<String> = stmt.tables().iter().map(|t| t.to_string()).collect();
    gold_tables.sort();
    gold_tables.dedup();

    let mut gold_columns: Vec<(String, String)> = stmt
        .referenced_columns()
        .into_iter()
        .map(|c| (c.table.expect("generated SQL is fully qualified"), c.column))
        .collect();
    gold_columns.sort();
    gold_columns.dedup();

    let scope: Vec<&TableMeta> = gold_tables.iter().filter_map(|t| meta.table(t)).collect();

    let mut links = Vec::with_capacity(gold_tables.len() + gold_columns.len());
    for t in &gold_tables {
        let tm = meta.table(t).expect("gold table exists in meta");
        links.push(table_link(meta, tm, profile, rng));
    }
    for (t, c) in &gold_columns {
        let tm = meta.table(t).expect("gold table exists in meta");
        let cm = tm.column(c).expect("gold column exists in meta");
        links.push(column_link(&scope, tm, cm, profile, rng));
    }
    (gold_tables, gold_columns, links)
}

/// Latent hardness: saturating function of confusion mass, difficulty
/// and schema size. Drives the simulator's instance-level error rate.
fn hardness(links: &[GoldLink], difficulty: Difficulty, meta: &DbMeta) -> f64 {
    let mass: f64 = links.iter().map(GoldLink::confusion_mass).sum();
    let base = match difficulty {
        Difficulty::Simple => 0.10,
        Difficulty::Moderate => 0.22,
        Difficulty::Challenging => 0.38,
    };
    let size_bump = (meta.total_columns() as f64 / 120.0).min(0.15);
    (base + 0.55 * (1.0 - (-0.45 * mass).exp()) + size_bump).min(1.0)
}

/// One sampled intent, pre-question-rendering.
struct Built {
    stmt: SelectStmt,
    question: String,
}

fn join_clause(child: &TableMeta, parent: &TableMeta) -> JoinClause {
    let fk = child.fk_to(&parent.name).expect("child has fk to parent");
    JoinClause {
        kind: JoinKind::Inner,
        table: parent.name.clone(),
        left: ColumnRef::new(&child.name, &fk.name),
        right: ColumnRef::new(&parent.name, parent.pk()),
    }
}

fn try_simple(meta: &DbMeta, rng: &mut SplitMix64) -> Option<Built> {
    let tables: Vec<&TableMeta> = meta.tables.iter().collect();
    let t = pick(&tables, rng)?;
    let attrs: Vec<&ColumnMeta> = t.attributes().collect();
    let texts: Vec<&ColumnMeta> = t.text_attrs().collect();
    let measures: Vec<&ColumnMeta> = t.measures().collect();
    match rng.next_below(3) {
        0 => {
            // Lookup: SELECT attr FROM t WHERE text = v
            let proj = pick(&attrs, rng)?;
            let filt_candidates: Vec<&ColumnMeta> = texts
                .iter()
                .copied()
                .filter(|c| c.name != proj.name)
                .collect();
            let filt = pick(&filt_candidates, rng)?;
            let (pred, v) = text_filter(t, filt, rng);
            let mut stmt = SelectStmt::from_table(&t.name);
            stmt.projections
                .push(SelectItem::plain(Expr::col(&t.name, &proj.name)));
            stmt.where_clause = Some(pred);
            let question = format!(
                "What is the {} of the {} whose {} is {}?",
                proj.spec.map_or(proj.name.as_str(), |s| s.phrases[0]),
                singular(t.entity),
                filt.spec.map_or(filt.name.as_str(), |s| s.phrases[0]),
                v
            );
            Some(Built { stmt, question })
        }
        1 => {
            // CountRows: SELECT COUNT(*) FROM t WHERE text = v
            let filt = pick(&texts, rng)?;
            let (pred, v) = text_filter(t, filt, rng);
            let mut stmt = SelectStmt::from_table(&t.name);
            stmt.projections.push(SelectItem::plain(Expr::count_star()));
            stmt.where_clause = Some(pred);
            let question = format!(
                "How many {} have a {} of {}?",
                t.entity,
                filt.spec.map_or(filt.name.as_str(), |s| s.phrases[0]),
                v
            );
            Some(Built { stmt, question })
        }
        _ => {
            // TopOne: SELECT attr FROM t ORDER BY measure DESC LIMIT 1
            let proj = pick(&attrs, rng)?;
            let by_candidates: Vec<&ColumnMeta> = measures
                .iter()
                .copied()
                .filter(|c| c.name != proj.name)
                .collect();
            let by = pick(&by_candidates, rng)?;
            let desc = rng.next_bool(0.5);
            let mut stmt = SelectStmt::from_table(&t.name);
            stmt.projections
                .push(SelectItem::plain(Expr::col(&t.name, &proj.name)));
            stmt.order_by.push(OrderByItem {
                expr: Expr::col(&t.name, &by.name),
                desc,
            });
            stmt.limit = Some(1);
            let question = format!(
                "Which {} has the {} {}? Give its {}.",
                singular(t.entity),
                if desc { "highest" } else { "lowest" },
                by.spec.map_or(by.name.as_str(), |s| s.phrases[0]),
                proj.spec.map_or(proj.name.as_str(), |s| s.phrases[0]),
            );
            Some(Built { stmt, question })
        }
    }
}

fn try_moderate(meta: &DbMeta, rng: &mut SplitMix64) -> Option<Built> {
    match rng.next_below(3) {
        0 => {
            // JoinLookup: SELECT parent.attr FROM child JOIN parent WHERE child.text = v
            let edges = meta.join_edges();
            let edge_refs: Vec<&(&TableMeta, &TableMeta)> = edges.iter().collect();
            let (child, parent) = *pick(&edge_refs, rng)?;
            let pattrs: Vec<&ColumnMeta> = parent.attributes().collect();
            let proj = pick(&pattrs, rng)?;
            let ctexts: Vec<&ColumnMeta> = child.text_attrs().collect();
            let filt = pick(&ctexts, rng)?;
            let (pred, v) = text_filter(child, filt, rng);
            let mut stmt = SelectStmt::from_table(&child.name);
            stmt.distinct = true;
            stmt.projections
                .push(SelectItem::plain(Expr::col(&parent.name, &proj.name)));
            stmt.joins.push(join_clause(child, parent));
            stmt.where_clause = Some(pred);
            let question = format!(
                "List the distinct {} of the {} linked to {} whose {} is {}.",
                proj.spec.map_or(proj.name.as_str(), |s| s.phrases[0]),
                singular(parent.entity),
                child.entity,
                filt.spec.map_or(filt.name.as_str(), |s| s.phrases[0]),
                v
            );
            Some(Built { stmt, question })
        }
        1 => {
            // AggMeasure: SELECT AVG(measure) FROM t WHERE text = v
            let tables: Vec<&TableMeta> = meta.tables.iter().collect();
            let t = pick(&tables, rng)?;
            let measures: Vec<&ColumnMeta> = t.measures().collect();
            let m = pick(&measures, rng)?;
            let texts: Vec<&ColumnMeta> = t.text_attrs().collect();
            let filt = pick(&texts, rng)?;
            let func = *[AggFunc::Avg, AggFunc::Sum, AggFunc::Max, AggFunc::Min]
                .get(rng.next_below(4))
                .unwrap();
            let (pred, v) = text_filter(t, filt, rng);
            let mut stmt = SelectStmt::from_table(&t.name);
            stmt.projections.push(SelectItem::plain(Expr::agg(
                func,
                Expr::col(&t.name, &m.name),
            )));
            stmt.where_clause = Some(pred);
            let question = format!(
                "What is the {} {} of {} with {} {}?",
                agg_phrase(func),
                m.spec.map_or(m.name.as_str(), |s| s.phrases[0]),
                t.entity,
                filt.spec.map_or(filt.name.as_str(), |s| s.phrases[0]),
                v
            );
            Some(Built { stmt, question })
        }
        _ => {
            // GroupCount: SELECT text, COUNT(*) FROM t GROUP BY text
            let tables: Vec<&TableMeta> = meta.tables.iter().collect();
            let t = pick(&tables, rng)?;
            let texts: Vec<&ColumnMeta> = t.text_attrs().collect();
            let g = pick(&texts, rng)?;
            let mut stmt = SelectStmt::from_table(&t.name);
            stmt.projections
                .push(SelectItem::plain(Expr::col(&t.name, &g.name)));
            stmt.projections.push(SelectItem::plain(Expr::count_star()));
            stmt.group_by.push(Expr::col(&t.name, &g.name));
            let question = format!(
                "For each {}, how many {} are there?",
                g.spec.map_or(g.name.as_str(), |s| s.phrases[0]),
                t.entity
            );
            Some(Built { stmt, question })
        }
    }
}

fn try_challenging(meta: &DbMeta, rng: &mut SplitMix64) -> Option<Built> {
    match rng.next_below(3) {
        0 => {
            // JoinGroupAgg with HAVING + ORDER + LIMIT.
            let edges = meta.join_edges();
            let edge_refs: Vec<&(&TableMeta, &TableMeta)> = edges.iter().collect();
            let (child, parent) = *pick(&edge_refs, rng)?;
            let ptexts: Vec<&ColumnMeta> = parent.text_attrs().collect();
            let g = pick(&ptexts, rng)?;
            let cmeasures: Vec<&ColumnMeta> = child.measures().collect();
            let m = pick(&cmeasures, rng)?;
            let func = *[AggFunc::Avg, AggFunc::Sum, AggFunc::Max]
                .get(rng.next_below(3))
                .unwrap();
            let min_count = 1 + rng.next_below(3) as i64;
            let agg_expr = Expr::agg(func, Expr::col(&child.name, &m.name));
            let mut stmt = SelectStmt::from_table(&child.name);
            stmt.projections
                .push(SelectItem::plain(Expr::col(&parent.name, &g.name)));
            stmt.projections.push(SelectItem::plain(agg_expr.clone()));
            stmt.joins.push(join_clause(child, parent));
            stmt.group_by.push(Expr::col(&parent.name, &g.name));
            stmt.having = Some(Expr::binary(
                BinOp::Gt,
                Expr::count_star(),
                Expr::lit(Value::Int(min_count)),
            ));
            stmt.order_by.push(OrderByItem {
                expr: agg_expr,
                desc: true,
            });
            stmt.limit = Some(3);
            let question = format!(
                "Among {} of each {} {} with more than {} {}, list the top 3 {} by {} {}.",
                child.entity,
                singular(parent.entity),
                g.spec.map_or(g.name.as_str(), |s| s.phrases[0]),
                min_count,
                child.entity,
                g.spec.map_or(g.name.as_str(), |s| s.phrases[0]),
                agg_phrase(func),
                m.spec.map_or(m.name.as_str(), |s| s.phrases[0]),
            );
            Some(Built { stmt, question })
        }
        1 => {
            // Figure 1a shape: parent attr of the row with extreme
            // measure under a filter.
            let edges = meta.join_edges();
            let edge_refs: Vec<&(&TableMeta, &TableMeta)> = edges.iter().collect();
            let (child, parent) = *pick(&edge_refs, rng)?;
            let pattrs: Vec<&ColumnMeta> = parent.attributes().collect();
            let proj = pick(&pattrs, rng)?;
            let cmeasures: Vec<&ColumnMeta> = child.measures().collect();
            let by = pick(&cmeasures, rng)?;
            let filt_candidates: Vec<&ColumnMeta> =
                child.measures().filter(|c| c.name != by.name).collect();
            let mut stmt = SelectStmt::from_table(&child.name);
            stmt.projections
                .push(SelectItem::plain(Expr::col(&parent.name, &proj.name)));
            stmt.joins.push(join_clause(child, parent));
            let mut question = format!(
                "Which {} has the minimum {}? Give its {}.",
                singular(parent.entity),
                by.spec.map_or(by.name.as_str(), |s| s.phrases[0]),
                proj.spec.map_or(proj.name.as_str(), |s| s.phrases[0]),
            );
            if let Some(filt) = pick(&filt_candidates, rng) {
                let (pred, constant, op) = measure_filter(child, filt, rng);
                stmt.where_clause = Some(pred);
                question = format!(
                    "Among {} with {} {} {}, which {} has the minimum {}? Give its {}.",
                    child.entity,
                    filt.spec.map_or(filt.name.as_str(), |s| s.phrases[0]),
                    cmp_phrase(op),
                    constant,
                    singular(parent.entity),
                    by.spec.map_or(by.name.as_str(), |s| s.phrases[0]),
                    proj.spec.map_or(proj.name.as_str(), |s| s.phrases[0]),
                );
            }
            stmt.order_by.push(OrderByItem {
                expr: Expr::col(&child.name, &by.name),
                desc: false,
            });
            stmt.limit = Some(1);
            Some(Built { stmt, question })
        }
        _ => {
            // Two-hop chain: grandchild → child → parent.
            let chain = meta.tables.iter().find_map(|gc| {
                let mid = gc.parent.as_deref().and_then(|p| meta.table(p))?;
                let top = mid.parent.as_deref().and_then(|p| meta.table(p))?;
                Some((gc, mid, top))
            })?;
            let (gc, mid, top) = chain;
            let ttexts: Vec<&ColumnMeta> = top.text_attrs().collect();
            let g = pick(&ttexts, rng)?;
            let mut stmt = SelectStmt::from_table(&gc.name);
            stmt.projections
                .push(SelectItem::plain(Expr::col(&top.name, &g.name)));
            stmt.projections.push(SelectItem::plain(Expr::count_star()));
            stmt.joins.push(join_clause(gc, mid));
            stmt.joins.push(join_clause(mid, top));
            stmt.group_by.push(Expr::col(&top.name, &g.name));
            stmt.order_by.push(OrderByItem {
                expr: Expr::count_star(),
                desc: true,
            });
            let question = format!(
                "Count {} per {} of the {} reached through {}.",
                gc.entity,
                g.spec.map_or(g.name.as_str(), |s| s.phrases[0]),
                singular(top.entity),
                mid.entity
            );
            Some(Built { stmt, question })
        }
    }
}

/// Generate one instance on `gdb`, or `None` if the sampled intent is
/// not realisable on this database (caller retries).
pub fn generate_instance(
    gdb: &GeneratedDb,
    id: u64,
    profile: &BenchmarkProfile,
    rng: &mut SplitMix64,
) -> Option<Instance> {
    let difficulty = sample_difficulty(profile, rng);
    let built = match difficulty {
        Difficulty::Simple => try_simple(&gdb.meta, rng),
        Difficulty::Moderate => try_moderate(&gdb.meta, rng),
        Difficulty::Challenging => try_challenging(&gdb.meta, rng),
    }?;

    let (gold_tables, gold_columns, mut links) = build_links(&gdb.meta, &built.stmt, profile, rng);

    // External knowledge, when granted, de-fangs underspecified links:
    // the hint explains what the abbreviation means (BIRD's evidence
    // strings play exactly this role).
    let external_knowledge = if rng.next_bool(profile.p_external_knowledge) {
        let hint = links.iter().find(|l| l.underspecified).map(|l| {
            format!(
                "In this database, column `{}` stands for \"{}\".",
                l.element, l.mention
            )
        });
        if let Some(h) = hint {
            for l in &mut links {
                if l.underspecified {
                    for c in &mut l.confusables {
                        c.weight *= 0.5;
                    }
                }
            }
            Some(h)
        } else {
            None
        }
    } else {
        None
    };

    let hardness = hardness(&links, difficulty, &gdb.meta);
    let mut question = built.question;
    if let Some(ek) = &external_knowledge {
        question.push_str(" (Hint: ");
        question.push_str(ek);
        question.push(')');
    }

    Some(Instance {
        id,
        db_name: gdb.meta.name.clone(),
        question,
        difficulty,
        gold_sql: built.stmt,
        gold_tables,
        gold_columns,
        links,
        external_knowledge,
        hardness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::DOMAINS;
    use crate::schemagen::generate_db;

    fn gdb(seed: u64) -> GeneratedDb {
        let mut rng = SplitMix64::new(seed);
        let profile = BenchmarkProfile {
            rows_per_table: (20, 40),
            ..BenchmarkProfile::bird_like()
        };
        generate_db(&DOMAINS[0], 0, &profile, &mut rng)
    }

    fn many_instances(seed: u64, n: usize) -> (GeneratedDb, Vec<Instance>) {
        let g = gdb(seed);
        let profile = BenchmarkProfile::bird_like();
        let mut rng = SplitMix64::new(seed ^ 0xABCD);
        let mut out = Vec::new();
        let mut id = 0;
        while out.len() < n {
            if let Some(inst) = generate_instance(&g, id, &profile, &mut rng) {
                out.push(inst);
            }
            id += 1;
            assert!(id < (n as u64) * 100, "instance generation starved");
        }
        (g, out)
    }

    #[test]
    fn gold_sql_always_executes() {
        let (g, instances) = many_instances(1, 60);
        for inst in &instances {
            let result = nanosql::exec::execute(&g.db, &inst.gold_sql)
                .unwrap_or_else(|e| panic!("gold SQL failed: {} — {e}", inst.gold_sql));
            // Results may legitimately be empty, but execution must succeed.
            let _ = result;
        }
    }

    #[test]
    fn gold_links_cover_tables_and_columns() {
        let (_, instances) = many_instances(2, 40);
        for inst in &instances {
            assert!(!inst.gold_tables.is_empty());
            assert!(!inst.gold_columns.is_empty());
            let table_links: Vec<_> = inst.table_links().collect();
            let column_links: Vec<_> = inst.column_links().collect();
            assert_eq!(table_links.len(), inst.gold_tables.len());
            assert_eq!(column_links.len(), inst.gold_columns.len());
            // Every gold column's table is a gold table.
            for (t, _) in &inst.gold_columns {
                assert!(inst.gold_tables.contains(t));
            }
        }
    }

    #[test]
    fn difficulty_mix_is_respected() {
        let (_, instances) = many_instances(3, 300);
        let simple = instances
            .iter()
            .filter(|i| i.difficulty == Difficulty::Simple)
            .count() as f64;
        let frac = simple / instances.len() as f64;
        assert!((frac - 0.4).abs() < 0.12, "simple fraction {frac}");
    }

    #[test]
    fn challenging_instances_join() {
        let (_, instances) = many_instances(4, 200);
        let challenging: Vec<_> = instances
            .iter()
            .filter(|i| i.difficulty == Difficulty::Challenging)
            .collect();
        assert!(!challenging.is_empty());
        let joined = challenging
            .iter()
            .filter(|i| i.gold_tables.len() >= 2)
            .count();
        assert!(
            joined * 10 >= challenging.len() * 8,
            "most challenging instances should join tables"
        );
    }

    #[test]
    fn ambiguity_produces_confusables() {
        let (_, instances) = many_instances(5, 200);
        let ambiguous_links: usize = instances
            .iter()
            .flat_map(|i| i.links.iter())
            .filter(|l| l.ambiguous)
            .count();
        assert!(ambiguous_links > 0, "no ambiguous links generated");
        // Every ambiguous link must offer at least one confusable.
        for inst in &instances {
            for l in &inst.links {
                if l.ambiguous {
                    assert!(!l.confusables.is_empty());
                }
            }
        }
    }

    #[test]
    fn hardness_is_bounded_and_monotone_in_difficulty() {
        let (_, instances) = many_instances(6, 300);
        for inst in &instances {
            assert!((0.0..=1.0).contains(&inst.hardness));
        }
        let mean = |d: Difficulty| {
            let xs: Vec<f64> = instances
                .iter()
                .filter(|i| i.difficulty == d)
                .map(|i| i.hardness)
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        assert!(mean(Difficulty::Challenging) > mean(Difficulty::Simple));
    }

    #[test]
    fn external_knowledge_weakens_confusables() {
        let (_, instances) = many_instances(7, 400);
        let with_ek = instances
            .iter()
            .filter(|i| i.external_knowledge.is_some())
            .count();
        assert!(with_ek > 0, "no external knowledge generated at p=0.3");
        for inst in instances.iter().filter(|i| i.external_knowledge.is_some()) {
            assert!(inst.question.contains("Hint:"));
        }
    }

    #[test]
    fn instances_are_deterministic() {
        let (_, a) = many_instances(9, 20);
        let (_, b) = many_instances(9, 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.gold_sql, y.gold_sql);
        }
    }
}

//! Benchmark assembly: databases + train/dev/test splits.

use crate::domains::pick_domains;
use crate::instance::Instance;
use crate::intent::generate_instance;
use crate::profile::BenchmarkProfile;
use crate::schemagen::{generate_db, DbMeta, GeneratedDb};
use nanosql::Database;
use tinynn::rng::SplitMix64;

/// Train/dev/test instance splits.
#[derive(Debug, Clone, Default)]
pub struct Split {
    pub train: Vec<Instance>,
    pub dev: Vec<Instance>,
    pub test: Vec<Instance>,
}

impl Split {
    pub fn total(&self) -> usize {
        self.train.len() + self.dev.len() + self.test.len()
    }
}

/// A fully generated benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    pub profile: BenchmarkProfile,
    pub databases: Vec<Database>,
    pub metas: Vec<DbMeta>,
    pub split: Split,
    pub seed: u64,
}

impl Benchmark {
    pub fn database(&self, name: &str) -> Option<&Database> {
        self.databases.iter().find(|d| d.name == name)
    }

    pub fn meta(&self, name: &str) -> Option<&DbMeta> {
        self.metas.iter().find(|m| m.name == name)
    }

    /// All instances across splits (train, dev, test order).
    pub fn all_instances(&self) -> impl Iterator<Item = &Instance> {
        self.split
            .train
            .iter()
            .chain(self.split.dev.iter())
            .chain(self.split.test.iter())
    }
}

/// Generate the benchmark for a profile. Deterministic in `seed`.
///
/// Databases are split disjointly across train/dev/test (cross-database
/// generalisation, as in the real benchmarks): 70% of databases host
/// training questions, 15% dev, 15% test.
pub fn generate_benchmark(profile: &BenchmarkProfile, seed: u64) -> Benchmark {
    let mut rng = SplitMix64::new(seed);
    let domains = pick_domains(profile.n_domains);

    // Generate databases round-robin over domains.
    let mut gdbs: Vec<GeneratedDb> = Vec::with_capacity(profile.n_databases);
    for i in 0..profile.n_databases {
        let domain = domains[i % domains.len()];
        let db_index = i / domains.len();
        let mut db_rng = rng.fork(i as u64);
        gdbs.push(generate_db(domain, db_index, profile, &mut db_rng));
    }

    // Partition database indices across splits. Every split must own at
    // least one database, train keeps the remainder (≥ 1 requires n ≥ 3).
    let n = gdbs.len();
    assert!(n >= 3, "need at least 3 databases to split train/dev/test");
    let n_dev_dbs = (((n as f64) * 0.15).floor() as usize).max(1);
    let n_test_dbs = (((n as f64) * 0.15).floor() as usize).max(1);
    let mut order: Vec<usize> = (0..n).collect();
    tinynn::rng::shuffle(&mut order, &mut rng);
    let dev_dbs: Vec<usize> = order[..n_dev_dbs].to_vec();
    let test_dbs: Vec<usize> = order[n_dev_dbs..n_dev_dbs + n_test_dbs].to_vec();
    let train_dbs: Vec<usize> = order[n_dev_dbs + n_test_dbs..].to_vec();

    let mut next_id = 0u64;
    let mut fill = |db_indices: &[usize], target: usize, rng: &mut SplitMix64| -> Vec<Instance> {
        let mut out = Vec::with_capacity(target);
        let mut attempts = 0usize;
        // Hard cap: an intent can be unrealisable on a tiny schema; 50×
        // oversampling is far beyond what generation ever needs.
        let max_attempts = target * 50 + 1000;
        while out.len() < target && attempts < max_attempts {
            let gdb = &gdbs[db_indices[attempts % db_indices.len()]];
            let mut inst_rng = rng.fork(next_id ^ (attempts as u64) << 20);
            if let Some(inst) = generate_instance(gdb, next_id, profile, &mut inst_rng) {
                next_id += 1;
                out.push(inst);
            }
            attempts += 1;
        }
        assert_eq!(out.len(), target, "instance generation starved");
        out
    };

    let train = fill(&train_dbs, profile.n_train, &mut rng);
    let dev = fill(&dev_dbs, profile.n_dev, &mut rng);
    let test = fill(&test_dbs, profile.n_test, &mut rng);

    let (databases, metas): (Vec<Database>, Vec<DbMeta>) =
        gdbs.into_iter().map(|g| (g.db, g.meta)).unzip();

    Benchmark {
        profile: profile.clone(),
        databases,
        metas,
        split: Split { train, dev, test },
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bird() -> Benchmark {
        BenchmarkProfile::bird_like().scaled(0.01).generate(123)
    }

    #[test]
    fn split_sizes_match_profile() {
        let b = small_bird();
        assert_eq!(b.split.train.len(), b.profile.n_train);
        assert_eq!(b.split.dev.len(), b.profile.n_dev);
        assert_eq!(b.split.test.len(), b.profile.n_test);
    }

    #[test]
    fn databases_are_split_disjointly() {
        let b = small_bird();
        let train_dbs: std::collections::HashSet<&str> =
            b.split.train.iter().map(|i| i.db_name.as_str()).collect();
        let dev_dbs: std::collections::HashSet<&str> =
            b.split.dev.iter().map(|i| i.db_name.as_str()).collect();
        let test_dbs: std::collections::HashSet<&str> =
            b.split.test.iter().map(|i| i.db_name.as_str()).collect();
        assert!(train_dbs.is_disjoint(&dev_dbs), "train/dev DB overlap");
        assert!(train_dbs.is_disjoint(&test_dbs), "train/test DB overlap");
        assert!(dev_dbs.is_disjoint(&test_dbs), "dev/test DB overlap");
    }

    #[test]
    fn every_instance_resolves_and_executes() {
        let b = small_bird();
        for inst in b.all_instances() {
            let db = b.database(&inst.db_name).expect("instance DB exists");
            nanosql::exec::execute(db, &inst.gold_sql).expect("gold SQL executes");
            let meta = b.meta(&inst.db_name).expect("meta exists");
            for t in &inst.gold_tables {
                assert!(meta.table(t).is_some(), "gold table {t} missing from meta");
            }
        }
    }

    #[test]
    fn instance_ids_are_unique() {
        let b = small_bird();
        let mut ids: Vec<u64> = b.all_instances().map(|i| i.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = BenchmarkProfile::spider_like().scaled(0.01).generate(7);
        let b = BenchmarkProfile::spider_like().scaled(0.01).generate(7);
        assert_eq!(a.split.dev.len(), b.split.dev.len());
        for (x, y) in a.split.dev.iter().zip(&b.split.dev) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.gold_sql.to_string(), y.gold_sql.to_string());
        }
    }

    #[test]
    fn bird_is_harder_than_spider() {
        let bird = BenchmarkProfile::bird_like().scaled(0.02).generate(99);
        let spider = BenchmarkProfile::spider_like().scaled(0.02).generate(99);
        let mean_hardness = |b: &Benchmark| {
            let xs: Vec<f64> = b.split.dev.iter().map(|i| i.hardness).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            mean_hardness(&bird) > mean_hardness(&spider),
            "bird {} vs spider {}",
            mean_hardness(&bird),
            mean_hardness(&spider)
        );
    }
}

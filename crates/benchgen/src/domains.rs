//! Domain catalog: 40 professional domains (BIRD spans 37) with entity
//! vocabularies. Each domain contributes table names and question
//! flavour; schemas are assembled from these entities plus the shared
//! attribute pool.

/// A professional domain.
#[derive(Debug, Clone, Copy)]
pub struct DomainSpec {
    /// snake_case domain tag (doubles as database-name prefix).
    pub name: &'static str,
    /// Entity nouns usable as table names (plural).
    pub entities: &'static [&'static str],
}

/// The catalog. Entities within a domain are distinct; across domains
/// they may repeat (as in the real benchmarks).
pub const DOMAINS: &[DomainSpec] = &[
    DomainSpec {
        name: "formula_1",
        entities: &[
            "races",
            "drivers",
            "circuits",
            "lapTimes",
            "pitStops",
            "constructors",
            "results",
            "seasons",
        ],
    },
    DomainSpec {
        name: "california_schools",
        entities: &[
            "schools",
            "districts",
            "satscores",
            "enrollments",
            "frpm",
            "staff",
        ],
    },
    DomainSpec {
        name: "card_games",
        entities: &[
            "cards",
            "sets",
            "rulings",
            "legalities",
            "artists",
            "tournaments",
        ],
    },
    DomainSpec {
        name: "european_football",
        entities: &[
            "matches",
            "teams",
            "players",
            "leagues",
            "stadiums",
            "transfers",
            "managers",
        ],
    },
    DomainSpec {
        name: "financial",
        entities: &[
            "accounts",
            "loans",
            "transactions",
            "clients",
            "cards",
            "orders",
            "branches",
        ],
    },
    DomainSpec {
        name: "thrombosis_prediction",
        entities: &[
            "patients",
            "examinations",
            "laboratory",
            "admissions",
            "diagnoses",
        ],
    },
    DomainSpec {
        name: "debit_card",
        entities: &[
            "customers",
            "gasstations",
            "products",
            "transactions",
            "yearmonth",
        ],
    },
    DomainSpec {
        name: "codebase_community",
        entities: &[
            "posts",
            "users",
            "comments",
            "badges",
            "votes",
            "tags",
            "postlinks",
        ],
    },
    DomainSpec {
        name: "superhero",
        entities: &[
            "heroes",
            "powers",
            "publishers",
            "alignments",
            "attributes",
            "colours",
        ],
    },
    DomainSpec {
        name: "student_club",
        entities: &[
            "members",
            "events",
            "attendances",
            "budgets",
            "expenses",
            "zipcodes",
            "majors",
        ],
    },
    DomainSpec {
        name: "toxicology",
        entities: &["molecules", "atoms", "bonds", "connections", "labels"],
    },
    DomainSpec {
        name: "airlines",
        entities: &[
            "flights",
            "airports",
            "aircrafts",
            "passengers",
            "bookings",
            "crews",
            "routes",
        ],
    },
    DomainSpec {
        name: "retail_world",
        entities: &[
            "products",
            "suppliers",
            "categories",
            "orders",
            "customers",
            "shippers",
            "employees",
        ],
    },
    DomainSpec {
        name: "hockey",
        entities: &[
            "goalies", "skaters", "teams", "coaches", "awards", "seasons", "scoring",
        ],
    },
    DomainSpec {
        name: "movies",
        entities: &[
            "movies",
            "actors",
            "directors",
            "ratings",
            "genres",
            "studios",
            "reviews",
        ],
    },
    DomainSpec {
        name: "music_platform",
        entities: &[
            "tracks",
            "albums",
            "artists",
            "playlists",
            "genres",
            "subscribers",
            "streams",
        ],
    },
    DomainSpec {
        name: "olympics",
        entities: &[
            "athletes",
            "games",
            "medals",
            "countries",
            "events",
            "venues",
        ],
    },
    DomainSpec {
        name: "university_rankings",
        entities: &["universities", "rankings", "criteria", "countries", "years"],
    },
    DomainSpec {
        name: "restaurants",
        entities: &[
            "restaurants",
            "inspections",
            "violations",
            "cuisines",
            "neighborhoods",
        ],
    },
    DomainSpec {
        name: "shipping_logistics",
        entities: &[
            "shipments",
            "drivers",
            "trucks",
            "warehouses",
            "cities",
            "customers",
        ],
    },
    DomainSpec {
        name: "public_review",
        entities: &[
            "businesses",
            "reviews",
            "checkins",
            "tips",
            "categories",
            "attributes",
        ],
    },
    DomainSpec {
        name: "cookbook",
        entities: &[
            "recipes",
            "ingredients",
            "nutrition",
            "quantities",
            "cuisines",
        ],
    },
    DomainSpec {
        name: "computer_stores",
        entities: &[
            "stores",
            "computers",
            "monitors",
            "printers",
            "sales",
            "makers",
        ],
    },
    DomainSpec {
        name: "mental_health",
        entities: &[
            "surveys",
            "questions",
            "answers",
            "respondents",
            "conditions",
        ],
    },
    DomainSpec {
        name: "legislators",
        entities: &[
            "legislators",
            "terms",
            "committees",
            "bills",
            "parties",
            "states",
        ],
    },
    DomainSpec {
        name: "trains",
        entities: &["trains", "cars", "stations", "schedules", "routes"],
    },
    DomainSpec {
        name: "bike_share",
        entities: &["trips", "stations", "bikes", "weather", "subscriptions"],
    },
    DomainSpec {
        name: "book_publishing",
        entities: &[
            "books",
            "authors",
            "publishers",
            "editions",
            "sales",
            "stores",
        ],
    },
    DomainSpec {
        name: "crime_reports",
        entities: &[
            "incidents",
            "districts",
            "officers",
            "arrests",
            "wards",
            "iucr",
        ],
    },
    DomainSpec {
        name: "beer_factory",
        entities: &[
            "breweries",
            "beers",
            "styles",
            "reviews",
            "customers",
            "shipments",
        ],
    },
    DomainSpec {
        name: "hospital_system",
        entities: &[
            "patients",
            "doctors",
            "appointments",
            "wards",
            "prescriptions",
            "treatments",
        ],
    },
    DomainSpec {
        name: "insurance_claims",
        entities: &[
            "policies",
            "claims",
            "holders",
            "adjusters",
            "payments",
            "incidents",
        ],
    },
    DomainSpec {
        name: "real_estate",
        entities: &[
            "listings",
            "agents",
            "properties",
            "offers",
            "neighborhoods",
            "sales",
        ],
    },
    DomainSpec {
        name: "energy_grid",
        entities: &[
            "plants", "meters", "readings", "outages", "regions", "tariffs",
        ],
    },
    DomainSpec {
        name: "telecom_network",
        entities: &[
            "subscribers",
            "plans",
            "calls",
            "towers",
            "invoices",
            "complaints",
        ],
    },
    DomainSpec {
        name: "agriculture",
        entities: &[
            "farms",
            "crops",
            "harvests",
            "fields",
            "equipment",
            "yields",
        ],
    },
    DomainSpec {
        name: "video_games",
        entities: &[
            "games",
            "platforms",
            "publishers",
            "sales",
            "genres",
            "developers",
        ],
    },
    DomainSpec {
        name: "social_network",
        entities: &[
            "profiles",
            "friendships",
            "messages",
            "groups",
            "likes",
            "photos",
        ],
    },
    DomainSpec {
        name: "museum_collections",
        entities: &[
            "artifacts",
            "exhibits",
            "curators",
            "loans",
            "galleries",
            "donors",
        ],
    },
    DomainSpec {
        name: "weather_stations",
        entities: &["stations", "observations", "sensors", "alerts", "regions"],
    },
];

/// Pick `n` domains deterministically (cycling if `n > DOMAINS.len()`).
pub fn pick_domains(n: usize) -> Vec<&'static DomainSpec> {
    (0..n).map(|i| &DOMAINS[i % DOMAINS.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_size_covers_bird() {
        assert!(
            DOMAINS.len() >= 37,
            "need ≥37 domains, have {}",
            DOMAINS.len()
        );
    }

    #[test]
    fn entities_are_distinct_within_domain() {
        for d in DOMAINS {
            let mut names: Vec<_> = d.entities.to_vec();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate entity in {}", d.name);
            assert!(d.entities.len() >= 4, "{} too small", d.name);
        }
    }

    #[test]
    fn domain_names_are_unique() {
        let mut names: Vec<_> = DOMAINS.iter().map(|d| d.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn pick_domains_cycles() {
        let picked = pick_domains(DOMAINS.len() + 3);
        assert_eq!(picked.len(), DOMAINS.len() + 3);
        assert_eq!(picked[0].name, picked[DOMAINS.len()].name);
    }
}

//! # benchgen — synthetic BIRD/Spider-like text-to-SQL workloads
//!
//! The RTS paper evaluates on BIRD (95 databases, 37 professional
//! domains, "dirty" abbreviated column names, external knowledge) and
//! Spider (200 cleaner databases). Those datasets are not redistributable
//! here, so this crate generates *structurally equivalent* workloads: the
//! phenomena RTS exploits — ambiguous mentions that map to several schema
//! elements (Fig. 1a), abbreviated columns with missing descriptions
//! (Fig. 1b: `EdOps`, `Rtype`), schema size, join structure — are all
//! reproduced with controllable rates.
//!
//! A generated [`Benchmark`] contains:
//!
//! * fully populated [`nanosql::Database`]s (schemas, foreign keys, rows),
//! * train/dev/test splits of [`Instance`]s, each with a natural-language
//!   question, an *executable* gold SQL AST, gold table/column link sets,
//!   a difficulty label and, crucially for the LLM simulator, per-link
//!   **confusion sets**: the plausible wrong schema elements a model
//!   could link to, with weights derived from lexical overlap and
//!   metadata quality.
//!
//! Presets [`profile::BenchmarkProfile::bird_like`] and
//! [`profile::BenchmarkProfile::spider_like`] match the published scale
//! and difficulty of the two benchmarks. Everything is deterministic in
//! the seed.
//!
//! ```
//! use benchgen::profile::BenchmarkProfile;
//!
//! let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(42);
//! assert!(bench.databases.len() >= 2);
//! let inst = &bench.split.dev[0];
//! assert!(!inst.gold_tables.is_empty());
//! // Gold SQL always executes on its database.
//! let db = bench.database(&inst.db_name).unwrap();
//! nanosql::exec::execute(db, &inst.gold_sql).unwrap();
//! ```

pub mod attrs;
pub mod dataset;
pub mod domains;
pub mod instance;
pub mod intent;
pub mod profile;
pub mod schemagen;

pub use dataset::{Benchmark, Split};
pub use instance::{Confusable, Difficulty, GoldLink, Instance, SchemaElementRef};
pub use profile::BenchmarkProfile;

//! Benchmark profiles: the knobs that make a generated workload
//! BIRD-shaped or Spider-shaped, plus the entry point that assembles a
//! full [`crate::Benchmark`].

use crate::dataset::{generate_benchmark, Benchmark};
use serde::{Deserialize, Serialize};

/// All generation knobs for one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark tag ("bird", "spider").
    pub name: String,
    pub n_databases: usize,
    pub n_domains: usize,
    pub n_train: usize,
    pub n_dev: usize,
    pub n_test: usize,
    /// Inclusive range of tables per database.
    pub tables_per_db: (usize, usize),
    /// Inclusive range of *attribute* columns per table (keys excluded).
    pub cols_per_table: (usize, usize),
    /// Inclusive range of rows per table.
    pub rows_per_table: (usize, usize),
    /// Probability a column name is abbreviated (BIRD "dirty values").
    pub p_dirty: f64,
    /// Probability a dirty column also loses its description.
    pub p_missing_desc: f64,
    /// Probability a mention deliberately uses an ambiguous phrase.
    pub p_ambiguous: f64,
    /// Probability an instance carries external knowledge.
    pub p_external_knowledge: f64,
    /// Difficulty mix: [simple, moderate, challenging] (sums to 1).
    pub difficulty_mix: [f64; 3],
}

impl BenchmarkProfile {
    /// BIRD-like: 95 DBs over 37 domains, 9428/1534/1534 instances,
    /// heavy dirt and ambiguity, external knowledge on ~30% of examples.
    /// (BIRD's real test set is hidden; we generate one of dev size so
    /// the harness can report a test column like the paper's tables do.)
    pub fn bird_like() -> Self {
        Self {
            name: "bird".into(),
            n_databases: 95,
            n_domains: 37,
            n_train: 9428,
            n_dev: 1534,
            n_test: 1534,
            tables_per_db: (3, 8),
            cols_per_table: (4, 12),
            rows_per_table: (30, 90),
            p_dirty: 0.35,
            p_missing_desc: 0.45,
            p_ambiguous: 0.30,
            p_external_knowledge: 0.30,
            difficulty_mix: [0.40, 0.40, 0.20],
        }
    }

    /// Spider-like: 200 cleaner DBs, 8659/1034/2147 instances, little
    /// dirt, no external knowledge, easier difficulty mix.
    pub fn spider_like() -> Self {
        Self {
            name: "spider".into(),
            n_databases: 200,
            n_domains: 40,
            n_train: 8659,
            n_dev: 1034,
            n_test: 2147,
            tables_per_db: (2, 6),
            cols_per_table: (3, 8),
            rows_per_table: (20, 60),
            p_dirty: 0.08,
            p_missing_desc: 0.25,
            p_ambiguous: 0.13,
            p_external_knowledge: 0.0,
            difficulty_mix: [0.50, 0.35, 0.15],
        }
    }

    /// Shrink every count by `factor` (for fast tests/examples); keeps at
    /// least 2 databases and 10 instances per split.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor in (0,1]");
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(10);
        self.n_databases = ((self.n_databases as f64 * factor).round() as usize).max(3);
        self.n_domains = self.n_domains.min(self.n_databases);
        self.n_train = scale(self.n_train);
        self.n_dev = scale(self.n_dev);
        self.n_test = scale(self.n_test);
        self
    }

    /// Generate the full benchmark (databases + splits).
    pub fn generate(&self, seed: u64) -> Benchmark {
        generate_benchmark(self, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_published_scale() {
        let bird = BenchmarkProfile::bird_like();
        assert_eq!(bird.n_databases, 95);
        assert_eq!(bird.n_domains, 37);
        assert_eq!((bird.n_train, bird.n_dev), (9428, 1534));
        let spider = BenchmarkProfile::spider_like();
        assert_eq!(spider.n_databases, 200);
        assert_eq!(
            (spider.n_train, spider.n_dev, spider.n_test),
            (8659, 1034, 2147)
        );
        assert!(bird.p_dirty > spider.p_dirty, "BIRD is dirtier than Spider");
        assert!(bird.p_ambiguous > spider.p_ambiguous);
    }

    #[test]
    fn difficulty_mixes_sum_to_one() {
        for p in [
            BenchmarkProfile::bird_like(),
            BenchmarkProfile::spider_like(),
        ] {
            let sum: f64 = p.difficulty_mix.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{} mix sums to {sum}", p.name);
        }
    }

    #[test]
    fn scaled_keeps_minimums() {
        let tiny = BenchmarkProfile::bird_like().scaled(0.001);
        assert!(tiny.n_databases >= 3);
        assert!(tiny.n_dev >= 10);
        assert!(tiny.n_domains <= tiny.n_databases);
    }
}

//! Database generation: schemas, foreign keys, and row data.
//!
//! Each generated database records, alongside the executable
//! [`nanosql::Database`], the *generation metadata* ([`DbMeta`]) the rest
//! of the pipeline needs: which attribute template every column came
//! from, whether its name was dirtied (abbreviated), whether its
//! description survived, and per-column value pools for predicate
//! construction.

use crate::attrs::{abbreviate, describe, singular, AttrSpec, ATTR_POOL};
use crate::domains::DomainSpec;
use crate::profile::BenchmarkProfile;
use nanosql::schema::{ColumnDef, ForeignKey, TableSchema};
use nanosql::{DataType, Database, Value};
use tinynn::rng::SplitMix64;

/// Role of a column within its table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnRole {
    PrimaryKey,
    /// References the named parent table's primary key.
    ForeignKey(String),
    Attribute,
}

/// Generation metadata for one column.
#[derive(Debug, Clone)]
pub struct ColumnMeta {
    /// Actual name in the schema (possibly abbreviated).
    pub name: String,
    /// Source template for attribute columns; `None` for key columns.
    pub spec: Option<&'static AttrSpec>,
    pub ty: DataType,
    pub role: ColumnRole,
    /// Name was abbreviated (dirty).
    pub dirty: bool,
    /// A natural-language description is present in the schema.
    pub described: bool,
    /// Sample of distinct values present in the data (text columns keep
    /// their full pool; numeric columns keep observed min/max via pool).
    pub value_pool: Vec<Value>,
}

impl ColumnMeta {
    /// Is this column opaque to lexical matching? (dirty + no description)
    pub fn underspecified(&self) -> bool {
        self.dirty && !self.described
    }
}

/// Generation metadata for one table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub name: String,
    /// The domain entity noun this table was named after.
    pub entity: &'static str,
    pub columns: Vec<ColumnMeta>,
    /// Parent table joined via this table's FK column, if any.
    pub parent: Option<String>,
}

impl TableMeta {
    pub fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// The primary-key column name.
    pub fn pk(&self) -> &str {
        self.columns
            .iter()
            .find(|c| c.role == ColumnRole::PrimaryKey)
            .map(|c| c.name.as_str())
            .expect("every generated table has a primary key")
    }

    /// The FK column referencing `parent`, if present.
    pub fn fk_to(&self, parent: &str) -> Option<&ColumnMeta> {
        self.columns
            .iter()
            .find(|c| matches!(&c.role, ColumnRole::ForeignKey(p) if p == parent))
    }

    /// Attribute columns (non-key).
    pub fn attributes(&self) -> impl Iterator<Item = &ColumnMeta> {
        self.columns
            .iter()
            .filter(|c| c.role == ColumnRole::Attribute)
    }

    /// Numeric measure attributes (aggregate targets).
    pub fn measures(&self) -> impl Iterator<Item = &ColumnMeta> {
        self.attributes()
            .filter(|c| c.spec.is_some_and(|s| s.measure))
    }

    /// Text attributes (filter/group targets).
    pub fn text_attrs(&self) -> impl Iterator<Item = &ColumnMeta> {
        self.attributes().filter(|c| c.ty == DataType::Text)
    }
}

/// Metadata for a whole generated database.
#[derive(Debug, Clone)]
pub struct DbMeta {
    pub name: String,
    pub domain: &'static str,
    pub tables: Vec<TableMeta>,
    /// Schema-drift epoch. Generated corpora are static (always 0);
    /// a serving deployment bumps it when the schema semantically
    /// changes, so context caches can tell a stale compile from a
    /// current one (`rts_core::context::ContextCache` rebuilds on a
    /// revision mismatch).
    pub revision: u64,
}

impl DbMeta {
    pub fn table(&self, name: &str) -> Option<&TableMeta> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Pairs `(child, parent)` for every FK edge.
    pub fn join_edges(&self) -> Vec<(&TableMeta, &TableMeta)> {
        self.tables
            .iter()
            .filter_map(|t| {
                t.parent
                    .as_deref()
                    .and_then(|p| self.table(p))
                    .map(|parent| (t, parent))
            })
            .collect()
    }

    /// Total number of columns across tables.
    pub fn total_columns(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }
}

/// A generated database: executable data + generation metadata.
#[derive(Debug, Clone)]
pub struct GeneratedDb {
    pub db: Database,
    pub meta: DbMeta,
}

fn pk_name(entity: &str) -> String {
    // "races" → "raceId" (camelCase, BIRD style).
    format!("{}Id", singular(entity))
}

/// Text value pool for an attribute column, e.g. `status` →
/// `status_alpha … status_theta`. Values appear verbatim in the data, so
/// generated predicates always hit real rows.
fn text_pool(base: &str) -> Vec<Value> {
    const SUFFIXES: [&str; 8] = [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    ];
    SUFFIXES
        .iter()
        .map(|s| Value::text(format!("{base}_{s}")))
        .collect()
}

fn numeric_value(spec: &AttrSpec, rng: &mut SplitMix64) -> Value {
    match spec.base {
        "year" => Value::Int(1990 + rng.next_below(34) as i64),
        "month" => Value::Int(1 + rng.next_below(12) as i64),
        "age" => Value::Int(18 + rng.next_below(63) as i64),
        _ => match spec.ty {
            DataType::Int => Value::Int(rng.next_below(1000) as i64),
            DataType::Float => Value::Float((rng.next_f64() * 1000.0 * 100.0).round() / 100.0),
            _ => unreachable!("numeric_value on non-numeric spec"),
        },
    }
}

/// Generate one database for `domain` under `profile` knobs.
pub fn generate_db(
    domain: &'static DomainSpec,
    db_index: usize,
    profile: &BenchmarkProfile,
    rng: &mut SplitMix64,
) -> GeneratedDb {
    let db_name = if db_index == 0 {
        domain.name.to_string()
    } else {
        format!("{}_{db_index}", domain.name)
    };
    let mut db = Database::new(db_name.clone());
    db.domain = domain.name.to_string();

    let (t_lo, t_hi) = profile.tables_per_db;
    let n_tables = (t_lo + rng.next_below(t_hi - t_lo + 1)).min(domain.entities.len());

    // Choose entities for tables (shuffled prefix of the domain list).
    let mut entity_order: Vec<usize> = (0..domain.entities.len()).collect();
    tinynn::rng::shuffle(&mut entity_order, rng);
    let chosen: Vec<&'static str> = entity_order[..n_tables]
        .iter()
        .map(|&i| domain.entities[i])
        .collect();

    let mut metas: Vec<TableMeta> = Vec::with_capacity(n_tables);

    for (ti, entity) in chosen.iter().enumerate() {
        let mut columns: Vec<ColumnMeta> = Vec::new();
        // Primary key first.
        columns.push(ColumnMeta {
            name: pk_name(entity),
            spec: None,
            ty: DataType::Int,
            role: ColumnRole::PrimaryKey,
            dirty: false,
            described: true,
            value_pool: Vec::new(),
        });
        // FK to an earlier table with high probability (keeps the join
        // graph connected, as both benchmarks' schemas are).
        let parent = if ti > 0 && rng.next_bool(0.85) {
            let p = rng.next_below(ti);
            let parent_entity = chosen[p];
            columns.push(ColumnMeta {
                name: pk_name(parent_entity),
                spec: None,
                ty: DataType::Int,
                role: ColumnRole::ForeignKey(parent_entity.to_string()),
                dirty: false,
                described: true,
                value_pool: Vec::new(),
            });
            Some(parent_entity.to_string())
        } else {
            None
        };

        // Attribute columns: sample without replacement from the pool.
        let (c_lo, c_hi) = profile.cols_per_table;
        let n_attrs = c_lo + rng.next_below(c_hi - c_lo + 1);
        let mut pool_order: Vec<usize> = (0..ATTR_POOL.len()).collect();
        tinynn::rng::shuffle(&mut pool_order, rng);
        for &pi in pool_order.iter().take(n_attrs) {
            let spec = &ATTR_POOL[pi];
            let dirty = rng.next_bool(profile.p_dirty);
            let name = if dirty {
                abbreviate(spec.base)
            } else {
                spec.base.to_string()
            };
            // Dirty columns may additionally lose their description; a
            // clean name keeps its description (it *is* readable).
            let described = if dirty {
                !rng.next_bool(profile.p_missing_desc)
            } else {
                true
            };
            // Avoid literal duplicate column names after abbreviation.
            if columns.iter().any(|c| c.name.eq_ignore_ascii_case(&name)) {
                continue;
            }
            let value_pool = if spec.ty == DataType::Text {
                text_pool(spec.base)
            } else {
                Vec::new()
            };
            columns.push(ColumnMeta {
                name,
                spec: Some(spec),
                ty: spec.ty,
                role: ColumnRole::Attribute,
                dirty,
                described,
                value_pool,
            });
        }

        metas.push(TableMeta {
            name: entity.to_string(),
            entity,
            columns,
            parent,
        });
    }

    // Materialise schemas.
    for tm in &metas {
        let mut schema = TableSchema::new(tm.name.clone())
            .description(format!("{} records", singular(tm.entity)));
        for cm in &tm.columns {
            let mut def = ColumnDef::new(cm.name.clone(), cm.ty);
            if cm.role == ColumnRole::PrimaryKey {
                def = def.primary_key();
            }
            if cm.described {
                let text = match (&cm.role, cm.spec) {
                    (ColumnRole::PrimaryKey, _) => {
                        format!("unique identifier of the {}", singular(tm.entity))
                    }
                    (ColumnRole::ForeignKey(p), _) => {
                        format!("reference to the {} table", p)
                    }
                    (_, Some(spec)) => describe(spec, tm.entity),
                    _ => String::new(),
                };
                def = def.description(text);
            }
            schema = schema.column(def);
        }
        db.create_table(schema).expect("generated schema is valid");
    }
    for tm in &metas {
        if let Some(parent) = &tm.parent {
            let fk_col = tm.fk_to(parent).expect("fk column exists").name.clone();
            let parent_pk = metas
                .iter()
                .find(|m| &m.name == parent)
                .expect("parent table exists")
                .pk()
                .to_string();
            db.add_foreign_key(ForeignKey {
                from_table: tm.name.clone(),
                from_column: fk_col,
                to_table: parent.clone(),
                to_column: parent_pk,
            })
            .expect("fk endpoints exist");
        }
    }

    // Populate rows. Parents are created before children in `metas`
    // order only if the parent index precedes — which generate() ensures
    // by always pointing FKs at earlier tables.
    let (r_lo, r_hi) = profile.rows_per_table;
    let mut row_counts: Vec<usize> = Vec::with_capacity(metas.len());
    for tm in &metas {
        let n_rows = r_lo + rng.next_below(r_hi - r_lo + 1);
        row_counts.push(n_rows);
        for pk in 1..=n_rows {
            let mut row = Vec::with_capacity(tm.columns.len());
            for cm in &tm.columns {
                let v = match &cm.role {
                    ColumnRole::PrimaryKey => Value::Int(pk as i64),
                    ColumnRole::ForeignKey(parent) => {
                        let pidx = metas
                            .iter()
                            .position(|m| &m.name == parent)
                            .expect("parent exists");
                        let parent_rows = row_counts[pidx];
                        Value::Int(1 + rng.next_below(parent_rows) as i64)
                    }
                    ColumnRole::Attribute => {
                        let spec = cm.spec.expect("attributes have specs");
                        // ~3% NULLs: realistic dirt without breaking joins.
                        if rng.next_bool(0.03) {
                            Value::Null
                        } else {
                            match spec.ty {
                                DataType::Text => {
                                    cm.value_pool[rng.next_below(cm.value_pool.len())].clone()
                                }
                                DataType::Bool => Value::Bool(rng.next_bool(0.5)),
                                _ => numeric_value(spec, rng),
                            }
                        }
                    }
                };
                row.push(v);
            }
            db.insert(&tm.name, row).expect("generated row is valid");
        }
    }

    GeneratedDb {
        db,
        meta: DbMeta {
            name: db_name,
            domain: domain.name,
            tables: metas,
            revision: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::DOMAINS;

    fn small_profile() -> BenchmarkProfile {
        BenchmarkProfile {
            rows_per_table: (20, 40),
            ..BenchmarkProfile::bird_like()
        }
    }

    fn gen(seed: u64) -> GeneratedDb {
        let mut rng = SplitMix64::new(seed);
        generate_db(&DOMAINS[0], 0, &small_profile(), &mut rng)
    }

    #[test]
    fn generated_db_is_well_formed() {
        let g = gen(1);
        assert!(g.db.tables().len() >= 3);
        assert_eq!(g.db.tables().len(), g.meta.tables.len());
        for tm in &g.meta.tables {
            let schema = g.db.table(&tm.name).expect("schema exists");
            assert_eq!(schema.columns.len(), tm.columns.len());
            // PK exists and is the first column.
            assert_eq!(tm.pk(), tm.columns[0].name);
            // Data present.
            assert!(!g.db.table_data(&tm.name).unwrap().is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a.db.to_ddl(), b.db.to_ddl());
        assert_eq!(a.db.total_rows(), b.db.total_rows());
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen(1);
        let b = gen(2);
        assert!(a.db.to_ddl() != b.db.to_ddl() || a.db.total_rows() != b.db.total_rows());
    }

    #[test]
    fn foreign_keys_are_resolvable_and_joinable() {
        let g = gen(3);
        for fk in g.db.foreign_keys() {
            // Every FK value must reference an existing parent pk.
            let child = g.db.table_data(&fk.from_table).unwrap();
            let child_schema = g.db.table(&fk.from_table).unwrap();
            let cidx = child_schema.column_index(&fk.from_column).unwrap();
            let parent = g.db.table_data(&fk.to_table).unwrap();
            let n_parent = parent.len() as i64;
            for row in child.iter() {
                if let Value::Int(v) = &row[cidx] {
                    assert!(*v >= 1 && *v <= n_parent, "dangling FK value {v}");
                }
            }
        }
    }

    #[test]
    fn dirty_columns_appear_at_roughly_requested_rate() {
        let mut rng = SplitMix64::new(11);
        let profile = BenchmarkProfile {
            p_dirty: 0.5,
            rows_per_table: (5, 10),
            ..BenchmarkProfile::bird_like()
        };
        let mut dirty = 0usize;
        let mut total = 0usize;
        for (i, d) in crate::domains::pick_domains(20).into_iter().enumerate() {
            let g = generate_db(d, i, &profile, &mut rng);
            for t in &g.meta.tables {
                for c in t.attributes() {
                    total += 1;
                    dirty += c.dirty as usize;
                }
            }
        }
        let rate = dirty as f64 / total as f64;
        assert!((rate - 0.5).abs() < 0.1, "dirty rate {rate}");
    }

    #[test]
    fn text_predicate_values_exist_in_data() {
        let g = gen(5);
        for tm in &g.meta.tables {
            for cm in tm.text_attrs() {
                // At least one pool value must appear in the data (pools
                // have 8 values, tables ≥ 20 rows, so collisions are
                // essentially certain; this guards the invariant the
                // intent generator relies on).
                let schema = g.db.table(&tm.name).unwrap();
                let cidx = schema.column_index(&cm.name).unwrap();
                let data = g.db.table_data(&tm.name).unwrap();
                let any_hit = data
                    .iter()
                    .any(|row| cm.value_pool.iter().any(|pv| &row[cidx] == pv));
                assert!(any_hit, "no pool value in data for {}.{}", tm.name, cm.name);
            }
        }
    }

    #[test]
    fn join_edges_match_foreign_keys() {
        let g = gen(9);
        assert_eq!(g.meta.join_edges().len(), g.db.foreign_keys().len());
    }

    #[test]
    fn underspecified_requires_dirty_and_undescribed() {
        let g = gen(13);
        for tm in &g.meta.tables {
            for cm in &tm.columns {
                if cm.underspecified() {
                    assert!(cm.dirty && !cm.described);
                }
            }
        }
    }
}

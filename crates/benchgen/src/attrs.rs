//! Attribute lexicon: the column-name building blocks, their natural
//! language phrases, and the "dirty name" abbreviation machinery.
//!
//! Two properties of this lexicon drive the whole reproduction:
//!
//! 1. **Phrase overlap** — several attributes answer to the same natural
//!    language phrase ("type" fits `type`, `category` and `kind`
//!    columns). When a question uses an overlapping phrase, every other
//!    in-scope attribute sharing it becomes a *confusable*: exactly the
//!    Figure 1(a) ambiguity.
//! 2. **Abbreviation** — BIRD-style dirty names (`EdOps` for "education
//!    operations", `Rtype` for "resource type") are produced by
//!    [`abbreviate`]. A dirty name whose description is also missing is
//!    *underspecified*: the question's phrase cannot be mapped back by
//!    lexical means, the Figure 1(b) failure.

use nanosql::DataType;

/// One attribute template from the shared pool.
#[derive(Debug, Clone, Copy)]
pub struct AttrSpec {
    /// snake_case base column name.
    pub base: &'static str,
    pub ty: DataType,
    /// Natural-language phrases a question may use for this attribute.
    /// The *first* phrase is the canonical one.
    pub phrases: &'static [&'static str],
    /// Is this attribute a plausible aggregate target (numeric measure)?
    pub measure: bool,
}

/// The shared attribute pool. Text attributes carry deliberately
/// overlapping phrase sets; numeric measures power aggregates.
pub const ATTR_POOL: &[AttrSpec] = &[
    AttrSpec {
        base: "name",
        ty: DataType::Text,
        phrases: &["name", "title"],
        measure: false,
    },
    AttrSpec {
        base: "title",
        ty: DataType::Text,
        phrases: &["title", "name"],
        measure: false,
    },
    AttrSpec {
        base: "code",
        ty: DataType::Text,
        phrases: &["code", "identifier"],
        measure: false,
    },
    AttrSpec {
        base: "category",
        ty: DataType::Text,
        phrases: &["category", "type", "kind"],
        measure: false,
    },
    AttrSpec {
        base: "type",
        ty: DataType::Text,
        phrases: &["type", "kind", "category"],
        measure: false,
    },
    AttrSpec {
        base: "status",
        ty: DataType::Text,
        phrases: &["status", "state", "condition"],
        measure: false,
    },
    AttrSpec {
        base: "state",
        ty: DataType::Text,
        phrases: &["state", "status", "region"],
        measure: false,
    },
    AttrSpec {
        base: "city",
        ty: DataType::Text,
        phrases: &["city", "town"],
        measure: false,
    },
    AttrSpec {
        base: "country",
        ty: DataType::Text,
        phrases: &["country", "nation"],
        measure: false,
    },
    AttrSpec {
        base: "region",
        ty: DataType::Text,
        phrases: &["region", "area", "zone"],
        measure: false,
    },
    AttrSpec {
        base: "description",
        ty: DataType::Text,
        phrases: &["description", "details"],
        measure: false,
    },
    AttrSpec {
        base: "grade",
        ty: DataType::Text,
        phrases: &["grade", "level", "rank"],
        measure: false,
    },
    AttrSpec {
        base: "level",
        ty: DataType::Text,
        phrases: &["level", "grade", "tier"],
        measure: false,
    },
    AttrSpec {
        base: "year",
        ty: DataType::Int,
        phrases: &["year", "season"],
        measure: false,
    },
    AttrSpec {
        base: "month",
        ty: DataType::Int,
        phrases: &["month"],
        measure: false,
    },
    AttrSpec {
        base: "amount",
        ty: DataType::Float,
        phrases: &["amount", "total", "sum"],
        measure: true,
    },
    AttrSpec {
        base: "total",
        ty: DataType::Float,
        phrases: &["total", "amount", "sum"],
        measure: true,
    },
    AttrSpec {
        base: "price",
        ty: DataType::Float,
        phrases: &["price", "cost", "value"],
        measure: true,
    },
    AttrSpec {
        base: "cost",
        ty: DataType::Float,
        phrases: &["cost", "price", "expense"],
        measure: true,
    },
    AttrSpec {
        base: "score",
        ty: DataType::Float,
        phrases: &["score", "points", "rating"],
        measure: true,
    },
    AttrSpec {
        base: "rating",
        ty: DataType::Float,
        phrases: &["rating", "score", "stars"],
        measure: true,
    },
    AttrSpec {
        base: "rate",
        ty: DataType::Float,
        phrases: &["rate", "ratio", "percentage"],
        measure: true,
    },
    AttrSpec {
        base: "ratio",
        ty: DataType::Float,
        phrases: &["ratio", "rate", "proportion"],
        measure: true,
    },
    AttrSpec {
        base: "duration",
        ty: DataType::Float,
        phrases: &["duration", "time", "length"],
        measure: true,
    },
    AttrSpec {
        base: "time",
        ty: DataType::Float,
        phrases: &["time", "duration"],
        measure: true,
    },
    AttrSpec {
        base: "distance",
        ty: DataType::Float,
        phrases: &["distance", "length"],
        measure: true,
    },
    AttrSpec {
        base: "weight",
        ty: DataType::Float,
        phrases: &["weight", "mass"],
        measure: true,
    },
    AttrSpec {
        base: "height",
        ty: DataType::Float,
        phrases: &["height"],
        measure: true,
    },
    AttrSpec {
        base: "age",
        ty: DataType::Int,
        phrases: &["age"],
        measure: true,
    },
    AttrSpec {
        base: "quantity",
        ty: DataType::Int,
        phrases: &["quantity", "count", "number"],
        measure: true,
    },
    AttrSpec {
        base: "population",
        ty: DataType::Int,
        phrases: &["population", "count", "size"],
        measure: true,
    },
    AttrSpec {
        base: "capacity",
        ty: DataType::Int,
        phrases: &["capacity", "size", "limit"],
        measure: true,
    },
    AttrSpec {
        base: "size",
        ty: DataType::Int,
        phrases: &["size", "capacity"],
        measure: true,
    },
    AttrSpec {
        base: "salary",
        ty: DataType::Float,
        phrases: &["salary", "pay", "income"],
        measure: true,
    },
    AttrSpec {
        base: "revenue",
        ty: DataType::Float,
        phrases: &["revenue", "income", "earnings"],
        measure: true,
    },
    AttrSpec {
        base: "budget",
        ty: DataType::Float,
        phrases: &["budget", "funding"],
        measure: true,
    },
    AttrSpec {
        base: "active",
        ty: DataType::Bool,
        phrases: &["active", "enabled"],
        measure: false,
    },
    AttrSpec {
        base: "verified",
        ty: DataType::Bool,
        phrases: &["verified", "approved"],
        measure: false,
    },
    AttrSpec {
        base: "operations_type",
        ty: DataType::Text,
        phrases: &["type of operations", "operations", "type"],
        measure: false,
    },
    AttrSpec {
        base: "resource_type",
        ty: DataType::Text,
        phrases: &["type of resource", "resource", "type"],
        measure: false,
    },
    AttrSpec {
        base: "funding_type",
        ty: DataType::Text,
        phrases: &["type of funding", "funding", "type"],
        measure: false,
    },
];

/// Abbreviate a snake_case name BIRD-style: first fragment keeps its
/// first two letters (capitalised), later fragments contribute their
/// first letter plus following consonants up to 3 chars — producing
/// `education_operations` → `EdOps`-like shapes.
pub fn abbreviate(base: &str) -> String {
    let frags: Vec<&str> = base.split('_').filter(|f| !f.is_empty()).collect();
    if frags.is_empty() {
        return base.to_string();
    }
    let mut out = String::new();
    for (i, frag) in frags.iter().enumerate() {
        let keep = if i == 0 { 2 } else { 3 };
        let mut piece = String::new();
        for (j, ch) in frag.chars().enumerate() {
            if j == 0 {
                piece.push(ch.to_ascii_uppercase());
            } else if i == 0 && j == 1 {
                // First fragment keeps its second letter verbatim
                // ("education" → "Ed", "resource" → "Re").
                piece.push(ch);
            } else if piece.len() < keep && !"aeiou".contains(ch) {
                piece.push(ch);
            }
            if piece.len() >= keep {
                break;
            }
        }
        out.push_str(&piece);
    }
    out
}

/// Human description of an attribute (used as the BIRD-style column
/// description when metadata is present).
pub fn describe(spec: &AttrSpec, entity_noun: &str) -> String {
    format!("the {} of the {}", spec.phrases[0], singular(entity_noun))
}

/// Cheap singularisation for entity nouns (only used in prose).
pub fn singular(noun: &str) -> String {
    if let Some(stem) = noun.strip_suffix("ies") {
        format!("{stem}y")
    } else if let Some(stem) = noun.strip_suffix('s') {
        stem.to_string()
    } else {
        noun.to_string()
    }
}

/// Do two attributes share any phrase? (The lexical-confusability test.)
pub fn phrases_overlap(a: &AttrSpec, b: &AttrSpec) -> bool {
    a.phrases.iter().any(|p| b.phrases.contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_nonempty_and_well_formed() {
        assert!(ATTR_POOL.len() >= 30);
        for spec in ATTR_POOL {
            assert!(!spec.phrases.is_empty(), "{} has no phrases", spec.base);
            assert!(!spec.base.is_empty());
        }
    }

    #[test]
    fn pool_has_measures_and_dimensions() {
        assert!(ATTR_POOL.iter().filter(|a| a.measure).count() >= 10);
        assert!(ATTR_POOL.iter().filter(|a| !a.measure).count() >= 10);
    }

    #[test]
    fn pool_contains_deliberate_phrase_collisions() {
        // "type" must be claimable by at least three different attributes
        // — the engine of Figure 1(b) style confusion.
        let claimants = ATTR_POOL
            .iter()
            .filter(|a| a.phrases.contains(&"type"))
            .count();
        assert!(
            claimants >= 3,
            "only {claimants} attributes answer to \"type\""
        );
    }

    #[test]
    fn abbreviate_produces_bird_style_names() {
        let a = abbreviate("education_operations");
        assert!(a.starts_with("Ed"), "{a}");
        assert!(a.len() <= 6, "{a}");
        let b = abbreviate("resource_type");
        assert!(b.starts_with("Re"), "{b}");
        // Abbreviation loses the vowels that made the name readable.
        assert!(!b.to_lowercase().contains("resource"));
    }

    #[test]
    fn abbreviate_single_fragment() {
        let a = abbreviate("status");
        assert_eq!(a, "St");
    }

    #[test]
    fn abbreviation_collisions_exist_in_pool() {
        // Different bases may abbreviate to similar opaque tokens; at
        // minimum the mapping is non-injective on readability: no dirty
        // name contains its own canonical phrase.
        for spec in ATTR_POOL {
            let dirty = abbreviate(spec.base);
            assert!(
                !dirty.to_lowercase().contains(spec.phrases[0]),
                "{dirty} still readable as {}",
                spec.phrases[0]
            );
        }
    }

    #[test]
    fn singular_rules() {
        assert_eq!(singular("races"), "race");
        assert_eq!(singular("countries"), "country");
        assert_eq!(singular("staff"), "staff");
    }

    #[test]
    fn overlap_is_symmetric() {
        for a in ATTR_POOL {
            for b in ATTR_POOL {
                assert_eq!(phrases_overlap(a, b), phrases_overlap(b, a));
            }
        }
    }
}

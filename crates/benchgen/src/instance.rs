//! The benchmark instance type: one (question, gold SQL, gold links)
//! triple plus the latent structure the LLM simulator consumes.

use nanosql::ast::SelectStmt;
use serde::{Deserialize, Serialize};

/// Question difficulty, following BIRD's three-way labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Difficulty {
    Simple,
    Moderate,
    Challenging,
}

impl Difficulty {
    pub fn label(self) -> &'static str {
        match self {
            Difficulty::Simple => "simple",
            Difficulty::Moderate => "moderate",
            Difficulty::Challenging => "challenging",
        }
    }

    pub const ALL: [Difficulty; 3] = [
        Difficulty::Simple,
        Difficulty::Moderate,
        Difficulty::Challenging,
    ];
}

/// A reference to a schema element: a table, or a column of a table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SchemaElementRef {
    pub table: String,
    /// `None` = the table itself (table-linking target).
    pub column: Option<String>,
}

impl SchemaElementRef {
    pub fn table(t: impl Into<String>) -> Self {
        Self {
            table: t.into(),
            column: None,
        }
    }

    pub fn column(t: impl Into<String>, c: impl Into<String>) -> Self {
        Self {
            table: t.into(),
            column: Some(c.into()),
        }
    }

    pub fn is_table(&self) -> bool {
        self.column.is_none()
    }
}

impl std::fmt::Display for SchemaElementRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.column {
            Some(c) => write!(f, "{}.{}", self.table, c),
            None => write!(f, "{}", self.table),
        }
    }
}

/// A plausible *wrong* linking target for a mention, with a weight in
/// `(0, 1]` reflecting how attractive the confusion is (lexical overlap,
/// missing metadata, abbreviation opacity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Confusable {
    pub alt: SchemaElementRef,
    pub weight: f64,
}

/// Ground-truth link between a question mention and a schema element,
/// annotated with its confusion set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldLink {
    pub element: SchemaElementRef,
    /// The natural-language phrase the question used for this element.
    pub mention: String,
    pub confusables: Vec<Confusable>,
    /// Mention maps to ≥ 2 in-scope elements (Figure 1a ambiguity).
    pub ambiguous: bool,
    /// Element name is abbreviated *and* its description is missing
    /// (Figure 1b underspecification).
    pub underspecified: bool,
}

impl GoldLink {
    /// Total confusion mass — the simulator's per-link risk driver.
    pub fn confusion_mass(&self) -> f64 {
        self.confusables.iter().map(|c| c.weight).sum()
    }
}

/// One benchmark example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// Stable unique id within the benchmark.
    pub id: u64,
    pub db_name: String,
    pub question: String,
    pub difficulty: Difficulty,
    pub gold_sql: SelectStmt,
    /// Sorted, deduplicated gold table names.
    pub gold_tables: Vec<String>,
    /// Sorted, deduplicated `(table, column)` pairs.
    pub gold_columns: Vec<(String, String)>,
    /// Per-element link annotations (tables first, then columns).
    pub links: Vec<GoldLink>,
    /// BIRD-style external-knowledge hint, when present.
    pub external_knowledge: Option<String>,
    /// Latent instance hardness in `[0, 1]`; aggregates ambiguity,
    /// underspecification, schema size and structural complexity.
    pub hardness: f64,
}

impl Instance {
    /// Links targeting tables.
    pub fn table_links(&self) -> impl Iterator<Item = &GoldLink> {
        self.links.iter().filter(|l| l.element.is_table())
    }

    /// Links targeting columns.
    pub fn column_links(&self) -> impl Iterator<Item = &GoldLink> {
        self.links.iter().filter(|l| !l.element.is_table())
    }

    /// Count of links flagged ambiguous or underspecified.
    pub fn risk_count(&self) -> usize {
        self.links
            .iter()
            .filter(|l| l.ambiguous || l.underspecified)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_ref_display() {
        assert_eq!(SchemaElementRef::table("races").to_string(), "races");
        assert_eq!(
            SchemaElementRef::column("races", "name").to_string(),
            "races.name"
        );
    }

    #[test]
    fn confusion_mass_sums_weights() {
        let link = GoldLink {
            element: SchemaElementRef::table("races"),
            mention: "race".into(),
            confusables: vec![
                Confusable {
                    alt: SchemaElementRef::table("lapTimes"),
                    weight: 0.5,
                },
                Confusable {
                    alt: SchemaElementRef::table("results"),
                    weight: 0.25,
                },
            ],
            ambiguous: true,
            underspecified: false,
        };
        assert!((link.confusion_mass() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn difficulty_labels() {
        assert_eq!(Difficulty::Simple.label(), "simple");
        assert_eq!(Difficulty::ALL.len(), 3);
    }
}

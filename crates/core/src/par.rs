//! Deterministic scoped-thread parallelism for the instance level.
//!
//! Every per-instance computation in this workspace is a pure function
//! of the instance plus explicit seeds (monitored linking seeds its RNG
//! via [`instance_rng`]`(RtsConfig::seed, inst.id)`, SQL generation
//! from the generator seed and `inst.id`), so fanning instances out
//! across threads cannot change any outcome — only wall-clock. [`par_map`] preserves input
//! order in its output (results are written into per-index slots), so
//! parallel and serial runs of the experiment harness produce identical
//! tables.
//!
//! The worker pattern is the same work-stealing-by-atomic-counter loop
//! `Mbpp::train` uses for per-layer probe training.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Derive a per-instance RNG from a run seed and the instance id — the
/// single mixing formula shared by the monitored-linking runtime and
/// every experiment driver, so parallel fan-outs stay deterministic
/// and runtime/experiment seeding can never drift apart.
pub fn instance_rng(seed: u64, inst_id: u64) -> tinynn::rng::SplitMix64 {
    tinynn::rng::SplitMix64::new(seed ^ inst_id.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

/// Worker-thread count: `RTS_THREADS` if set (clamped to ≥ 1;
/// `RTS_THREADS=1` forces serial execution, which the parity tests use
/// as the reference), otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    if let Some(n) = std::env::var("RTS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Map `f` over `items` in parallel, returning results in input order.
///
/// `f` must be deterministic per item for parallel/serial equivalence —
/// which everything routed through here is (see module docs). Panics in
/// `f` propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, || (), |(), item| f(item))
}

/// [`par_map`] with per-worker scratch state: `init` runs once per
/// worker thread and the resulting state is threaded through every item
/// that worker processes. This is what keeps reusable buffers
/// (`BppScratch` etc.) amortised under the parallel fan-out — one
/// scratch per worker instead of one per instance.
///
/// The state must not influence results (it is scratch), otherwise
/// parallel and serial runs could diverge.
pub fn par_map_with<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let n_workers = thread_count().min(items.len());
    if n_workers <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let slots: Vec<parking_lot::Mutex<Option<R>>> = items
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        let slots = &slots;
        let next = &next;
        let init = &init;
        let f = &f;
        for _ in 0..n_workers {
            scope.spawn(move |_| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    *slots[i].lock() = Some(f(&mut state, &items[i]));
                }
            });
        }
    })
    .expect("parallel worker panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert_eq!(par_map::<u8, u8, _>(&[], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[9], |&x| x + 1), vec![10]);
    }

    #[test]
    fn matches_serial_for_stateful_per_item_rng() {
        // The determinism contract: per-item seeding ⇒ parallel == serial.
        let items: Vec<u64> = (0..64).collect();
        let run = |items: &[u64]| {
            par_map(items, |&id| {
                let mut rng = tinynn::rng::SplitMix64::new(0xC0FFEE ^ id);
                (0..10).fold(0u64, |acc, _| acc.wrapping_add(rng.next_u64()))
            })
        };
        let serial: Vec<u64> = items
            .iter()
            .map(|&id| {
                let mut rng = tinynn::rng::SplitMix64::new(0xC0FFEE ^ id);
                (0..10).fold(0u64, |acc, _| acc.wrapping_add(rng.next_u64()))
            })
            .collect();
        assert_eq!(run(&items), serial);
    }
}

//! Simulated downstream text-to-SQL generators + execution accuracy.
//!
//! The paper's Table 1 / Table 7 story is *causal*: the SQL generator's
//! success depends on the schema it is shown. A golden (exactly linked)
//! schema maximises EX; distractor columns dilute it; missing gold
//! elements destroy it. We simulate fine-tuned generators (Deepseek-7B
//! and CodeS-15B class) whose success probability follows exactly that
//! mechanism and whose failures are *materialised as real, executable
//! wrong SQL* — predicted queries actually run on `nanosql` and EX is a
//! genuine result-set comparison, so near-miss corruptions can still
//! accidentally score (as on the real benchmarks).

use benchgen::schemagen::DbMeta;
use benchgen::{Difficulty, Instance};
use nanosql::ast::{AggFunc, BinOp, Expr, SelectStmt};
use nanosql::result::execution_accuracy;
use nanosql::{Database, Value};
use tinynn::rng::SplitMix64;

/// The schema handed to the SQL generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvidedSchema {
    pub tables: Vec<String>,
    pub columns: Vec<(String, String)>,
}

impl ProvidedSchema {
    /// Exactly the gold elements ("Correct tables + Correct columns").
    pub fn golden(inst: &Instance) -> Self {
        Self {
            tables: inst.gold_tables.clone(),
            columns: inst.gold_columns.clone(),
        }
    }

    /// The whole database ("Full tables + Full columns").
    pub fn full(meta: &DbMeta) -> Self {
        let tables = meta.tables.iter().map(|t| t.name.clone()).collect();
        let columns = meta
            .tables
            .iter()
            .flat_map(|t| {
                t.columns
                    .iter()
                    .map(move |c| (t.name.clone(), c.name.clone()))
            })
            .collect();
        Self { tables, columns }
    }

    /// Gold tables but every column of those tables ("Correct tables +
    /// Full columns").
    pub fn correct_tables_full_columns(inst: &Instance, meta: &DbMeta) -> Self {
        let tables = inst.gold_tables.clone();
        let columns = meta
            .tables
            .iter()
            .filter(|t| tables.contains(&t.name))
            .flat_map(|t| {
                t.columns
                    .iter()
                    .map(move |c| (t.name.clone(), c.name.clone()))
            })
            .collect();
        Self { tables, columns }
    }

    /// From a linking prediction.
    pub fn from_linking(tables: Vec<String>, columns: Vec<(String, String)>) -> Self {
        Self { tables, columns }
    }

    /// Does the schema contain every gold element of the instance?
    pub fn covers(&self, inst: &Instance) -> bool {
        inst.gold_tables.iter().all(|t| self.tables.contains(t))
            && inst.gold_columns.iter().all(|c| self.columns.contains(c))
    }

    /// Number of provided columns beyond the gold ones (distractors).
    pub fn n_distractor_columns(&self, inst: &Instance) -> usize {
        self.columns
            .iter()
            .filter(|c| !inst.gold_columns.contains(c))
            .count()
    }
}

/// A simulated fine-tuned SQL generator.
#[derive(Debug, Clone)]
pub struct SqlGenModel {
    pub name: String,
    /// Success probability on a clean golden schema, per difficulty.
    base_ex: [f64; 3],
    /// Per-distractor-column success decay (`exp(-λ·extra)`).
    lambda: f64,
    /// Success multiplier when gold elements are missing from the schema.
    miss_penalty: f64,
    seed: u64,
}

impl SqlGenModel {
    /// Deepseek-7B-class generator, calibrated per benchmark to the
    /// paper's Table 7 golden-schema EX (BIRD 66.21 / Spider 90.13).
    pub fn deepseek_7b(benchmark: &str, seed: u64) -> Self {
        match benchmark {
            "bird" => Self {
                name: "Deepseek-7B".into(),
                base_ex: [0.70, 0.54, 0.34],
                lambda: 0.0061,
                miss_penalty: 0.05,
                seed,
            },
            "spider" => Self {
                name: "Deepseek-7B".into(),
                base_ex: [0.92, 0.84, 0.72],
                lambda: 0.0032,
                miss_penalty: 0.05,
                seed,
            },
            other => panic!("no sqlgen calibration for {other}"),
        }
    }

    /// CodeS-15B-class generator (Table 7: BIRD 66.27 / Spider 90.02).
    pub fn codes_15b(benchmark: &str, seed: u64) -> Self {
        match benchmark {
            "bird" => Self {
                name: "CodeS-15B".into(),
                base_ex: [0.66, 0.51, 0.33],
                lambda: 0.0042,
                miss_penalty: 0.05,
                seed,
            },
            "spider" => Self {
                name: "CodeS-15B".into(),
                base_ex: [0.915, 0.835, 0.72],
                lambda: 0.0035,
                miss_penalty: 0.05,
                seed,
            },
            other => panic!("no sqlgen calibration for {other}"),
        }
    }

    fn difficulty_index(d: Difficulty) -> usize {
        match d {
            Difficulty::Simple => 0,
            Difficulty::Moderate => 1,
            Difficulty::Challenging => 2,
        }
    }

    /// Success probability for this instance under this schema.
    pub fn success_prob(&self, inst: &Instance, schema: &ProvidedSchema) -> f64 {
        let base = self.base_ex[Self::difficulty_index(inst.difficulty)];
        let distractors = schema.n_distractor_columns(inst) as f64;
        let mut p = base * (-self.lambda * distractors).exp();
        if !schema.covers(inst) {
            p *= self.miss_penalty;
        }
        p
    }

    /// Generate SQL for the instance given the provided schema: the gold
    /// query on success, a bound-valid corruption on failure.
    pub fn generate(&self, inst: &Instance, schema: &ProvidedSchema, meta: &DbMeta) -> SelectStmt {
        let mut rng = SplitMix64::new(
            self.seed
                ^ inst.id.wrapping_mul(0x94D0_49BB_1331_11EB)
                ^ tinynn::rng::stable_hash(self.name.as_bytes()),
        );
        let p = self.success_prob(inst, schema);
        if rng.next_bool(p) {
            return inst.gold_sql.clone();
        }
        corrupt(&inst.gold_sql, schema, meta, &mut rng)
    }

    /// Generate for one instance and execute gold vs predicted on the
    /// database. Deterministic in (generator seed, instance id), which
    /// is what lets [`crate::par::par_map`] fan instances out.
    pub fn ex_correct(
        &self,
        inst: &Instance,
        db: &Database,
        meta: &DbMeta,
        schema: &ProvidedSchema,
    ) -> bool {
        let predicted = self.generate(inst, schema, meta);
        let gold_sql = inst.gold_sql.to_string();
        let pred_sql = predicted.to_string();
        execution_accuracy(db, &gold_sql, &pred_sql).is_correct()
    }

    /// EX over instances: execute gold vs predicted on the database.
    pub fn execution_accuracy<'a>(
        &self,
        instances: impl Iterator<Item = &'a Instance>,
        db_of: impl Fn(&str) -> Option<&'a Database>,
        meta_of: impl Fn(&str) -> Option<&'a DbMeta>,
        schema_of: impl Fn(&Instance) -> ProvidedSchema,
    ) -> (f64, usize) {
        let mut correct = 0usize;
        let mut total = 0usize;
        for inst in instances {
            let db = db_of(&inst.db_name).expect("database exists");
            let meta = meta_of(&inst.db_name).expect("meta exists");
            let schema = schema_of(inst);
            if self.ex_correct(inst, db, meta, &schema) {
                correct += 1;
            }
            total += 1;
        }
        (
            if total == 0 {
                0.0
            } else {
                correct as f64 / total as f64
            },
            total,
        )
    }
}

/// Corrupt a gold statement into a *valid, executable* wrong query.
/// Corruption modes mirror real text-to-SQL failure taxonomies: wrong
/// filter constant, wrong aggregate, wrong sort direction, wrong column
/// among the provided distractors, dropped predicate.
fn corrupt(
    gold: &SelectStmt,
    schema: &ProvidedSchema,
    meta: &DbMeta,
    rng: &mut SplitMix64,
) -> SelectStmt {
    let mut stmt = gold.clone();

    // Collect applicable corruption modes first, then draw uniformly.
    let mut modes: Vec<u8> = Vec::with_capacity(5);
    if stmt.where_clause.is_some() {
        modes.push(0); // perturb constant
        modes.push(4); // drop predicate
    }
    let has_agg = stmt.projections.iter().any(|p| p.expr.contains_agg());
    if has_agg {
        modes.push(1); // swap aggregate function
    }
    if !stmt.order_by.is_empty() {
        modes.push(2); // flip direction
    }
    if swap_candidate(&stmt, schema, meta).is_some() {
        modes.push(3); // wrong column from distractors
    }
    let mode = if modes.is_empty() {
        5
    } else {
        modes[rng.next_below(modes.len())]
    };

    match mode {
        0 => {
            if let Some(w) = stmt.where_clause.take() {
                stmt.where_clause = Some(perturb_literal(w, rng));
            }
        }
        1 => {
            for p in &mut stmt.projections {
                swap_agg(&mut p.expr);
            }
            for o in &mut stmt.order_by {
                swap_agg(&mut o.expr);
            }
        }
        2 => {
            for o in &mut stmt.order_by {
                o.desc = !o.desc;
            }
        }
        3 => {
            if let Some((table, from, to)) = swap_candidate(&stmt, schema, meta) {
                substitute_column(&mut stmt, &table, &from, &to);
            }
        }
        4 => {
            stmt.where_clause = None;
        }
        _ => {
            // Last resort: change LIMIT semantics.
            stmt.limit = Some(stmt.limit.map_or(1, |l| l + 1));
        }
    }
    stmt
}

/// Find a plain projected column that can be swapped for a same-table
/// distractor present in the provided schema. Grouped queries are left
/// alone (swapping a grouped key would need coordinated rewrites).
fn swap_candidate(
    stmt: &SelectStmt,
    schema: &ProvidedSchema,
    meta: &DbMeta,
) -> Option<(String, String, String)> {
    if !stmt.group_by.is_empty() {
        return None;
    }
    for p in &stmt.projections {
        if let Expr::Column(c) = &p.expr {
            let table = c.table.clone()?;
            let tm = meta.table(&table)?;
            let current = tm.column(&c.column)?;
            // A distractor of the same type keeps the query type-valid.
            let alt = schema.columns.iter().find(|(t, col)| {
                *t == table
                    && *col != c.column
                    && tm.column(col).is_some_and(|cm| cm.ty == current.ty)
            });
            if let Some((_, col)) = alt {
                return Some((table, c.column.clone(), col.clone()));
            }
        }
    }
    None
}

fn substitute_column(stmt: &mut SelectStmt, table: &str, from: &str, to: &str) {
    for p in &mut stmt.projections {
        substitute_in_expr(&mut p.expr, table, from, to);
    }
    if let Some(w) = &mut stmt.where_clause {
        substitute_in_expr(w, table, from, to);
    }
    for o in &mut stmt.order_by {
        substitute_in_expr(&mut o.expr, table, from, to);
    }
}

fn substitute_in_expr(e: &mut Expr, table: &str, from: &str, to: &str) {
    match e {
        Expr::Column(c) => {
            if c.table.as_deref() == Some(table) && c.column == from {
                c.column = to.to_string();
            }
        }
        Expr::Binary { left, right, .. } => {
            substitute_in_expr(left, table, from, to);
            substitute_in_expr(right, table, from, to);
        }
        Expr::Not(inner) => substitute_in_expr(inner, table, from, to),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } | Expr::InList { expr, .. } => {
            substitute_in_expr(expr, table, from, to)
        }
        Expr::Agg { arg: Some(a), .. } => substitute_in_expr(a, table, from, to),
        Expr::Agg { arg: None, .. } | Expr::Literal(_) => {}
    }
}

fn swap_agg(e: &mut Expr) {
    match e {
        Expr::Agg { func, .. } => {
            *func = match func {
                AggFunc::Min => AggFunc::Max,
                AggFunc::Max => AggFunc::Min,
                AggFunc::Avg => AggFunc::Sum,
                AggFunc::Sum => AggFunc::Avg,
                AggFunc::Count => AggFunc::Count,
            };
        }
        Expr::Binary { left, right, .. } => {
            swap_agg(left);
            swap_agg(right);
        }
        Expr::Not(inner) => swap_agg(inner),
        _ => {}
    }
}

/// Perturb the first literal found in a predicate tree.
fn perturb_literal(mut e: Expr, rng: &mut SplitMix64) -> Expr {
    fn walk(e: &mut Expr, rng: &mut SplitMix64) -> bool {
        match e {
            Expr::Binary { op, left, right } => {
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) {
                    if let Expr::Literal(v) = right.as_mut() {
                        let replacement = match &*v {
                            Value::Int(i) => Value::Int(*i + 1 + rng.next_below(5) as i64),
                            Value::Float(f) => Value::Float(*f * 1.35 + 7.0),
                            Value::Text(s) => Value::Text(format!("{s}_x")),
                            other => other.clone(),
                        };
                        *v = replacement;
                        return true;
                    }
                }
                walk(left, rng) || walk(right, rng)
            }
            Expr::Not(inner) => walk(inner, rng),
            _ => false,
        }
    }
    walk(&mut e, rng);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::{Benchmark, BenchmarkProfile};

    fn bench() -> Benchmark {
        BenchmarkProfile::bird_like().scaled(0.015).generate(88)
    }

    fn ex(
        bench: &Benchmark,
        model: &SqlGenModel,
        schema_of: impl Fn(&Instance) -> ProvidedSchema,
    ) -> f64 {
        model
            .execution_accuracy(
                bench.split.dev.iter(),
                |n| bench.database(n),
                |n| bench.meta(n),
                schema_of,
            )
            .0
    }

    #[test]
    fn corrupted_queries_always_execute() {
        let b = bench();
        let model = SqlGenModel::deepseek_7b("bird", 1);
        for inst in &b.split.dev {
            let meta = b.meta(&inst.db_name).unwrap();
            let db = b.database(&inst.db_name).unwrap();
            let schema = ProvidedSchema::full(meta);
            let stmt = model.generate(inst, &schema, meta);
            nanosql::exec::execute(db, &stmt)
                .unwrap_or_else(|e| panic!("generated SQL failed: {stmt} — {e}"));
        }
    }

    #[test]
    fn golden_schema_beats_full_schema() {
        let b = bench();
        let model = SqlGenModel::deepseek_7b("bird", 2);
        let golden = ex(&b, &model, ProvidedSchema::golden);
        let full = ex(&b, &model, |i| {
            ProvidedSchema::full(b.meta(&i.db_name).unwrap())
        });
        assert!(
            golden > full,
            "golden {golden} must beat full {full} (the Table 1 mechanism)"
        );
        // BIRD regime: golden in the 60s.
        assert!((0.52..=0.80).contains(&golden), "golden EX {golden}");
    }

    #[test]
    fn intermediate_schema_sits_between() {
        let b = bench();
        let model = SqlGenModel::deepseek_7b("bird", 3);
        let golden = ex(&b, &model, ProvidedSchema::golden);
        let mid = ex(&b, &model, |i| {
            ProvidedSchema::correct_tables_full_columns(i, b.meta(&i.db_name).unwrap())
        });
        let full = ex(&b, &model, |i| {
            ProvidedSchema::full(b.meta(&i.db_name).unwrap())
        });
        assert!(golden + 1e-9 >= mid, "golden {golden} vs mid {mid}");
        assert!(mid + 0.03 >= full, "mid {mid} vs full {full}");
    }

    #[test]
    fn missing_gold_elements_collapse_accuracy() {
        let b = bench();
        let model = SqlGenModel::deepseek_7b("bird", 4);
        // Remove the first gold column from every schema.
        let broken = ex(&b, &model, |i| {
            let mut s = ProvidedSchema::golden(i);
            s.columns.remove(0);
            s
        });
        let golden = ex(&b, &model, ProvidedSchema::golden);
        assert!(broken < golden * 0.45, "broken {broken} vs golden {golden}");
    }

    #[test]
    fn spider_is_easier_than_bird() {
        let bird = bench();
        let spider = BenchmarkProfile::spider_like().scaled(0.015).generate(88);
        let mb = SqlGenModel::deepseek_7b("bird", 5);
        let ms = SqlGenModel::deepseek_7b("spider", 5);
        let ex_bird = ex(&bird, &mb, ProvidedSchema::golden);
        let ex_spider = ms
            .execution_accuracy(
                spider.split.dev.iter(),
                |n| spider.database(n),
                |n| spider.meta(n),
                ProvidedSchema::golden,
            )
            .0;
        assert!(
            ex_spider > ex_bird + 0.1,
            "spider {ex_spider} vs bird {ex_bird}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let b = bench();
        let model = SqlGenModel::codes_15b("bird", 6);
        let inst = &b.split.dev[0];
        let meta = b.meta(&inst.db_name).unwrap();
        let schema = ProvidedSchema::full(meta);
        assert_eq!(
            model.generate(inst, &schema, meta).to_string(),
            model.generate(inst, &schema, meta).to_string()
        );
    }

    #[test]
    fn provided_schema_helpers() {
        let b = bench();
        let inst = &b.split.dev[0];
        let meta = b.meta(&inst.db_name).unwrap();
        let golden = ProvidedSchema::golden(inst);
        assert!(golden.covers(inst));
        assert_eq!(golden.n_distractor_columns(inst), 0);
        let full = ProvidedSchema::full(meta);
        assert!(full.covers(inst));
        assert!(full.n_distractor_columns(inst) > 0);
        let mid = ProvidedSchema::correct_tables_full_columns(inst, meta);
        assert!(mid.covers(inst));
        assert!(mid.n_distractor_columns(inst) <= full.n_distractor_columns(inst));
    }
}

//! Building `D_branch` (§3.1): trace teacher-forced generations over
//! labelled instances and collect, for every generated token, its
//! per-layer hidden-state vectors together with the branching-point
//! label `s_i ∈ {0, 1}`.

use simlm::{GenMode, LayerSet, LinkTarget, SchemaLinker, SynthScratch, Vocab};
use tinynn::Matrix;

/// The branching-point dataset: per-layer feature matrices sharing one
/// label vector (a token contributes one row to *every* layer).
#[derive(Debug, Clone)]
pub struct BranchDataset {
    pub n_layers: usize,
    pub hidden_dim: usize,
    /// `layers[j]` is an `(n_tokens × hidden_dim)` feature matrix.
    pub layers: Vec<Matrix>,
    /// `labels[i] = 1.0` iff token `i` is a branching point.
    pub labels: Vec<f32>,
    /// Instance count that produced the dataset.
    pub n_instances: usize,
}

impl BranchDataset {
    /// Trace `instances` with teacher forcing and collect `D_branch`.
    ///
    /// `max_instances` caps the cost (the paper uses ~10% of the
    /// training split); `0` means no cap.
    pub fn build(
        model: &SchemaLinker,
        instances: &[benchgen::Instance],
        target: LinkTarget,
        max_instances: usize,
    ) -> Self {
        let take = if max_instances == 0 {
            instances.len()
        } else {
            max_instances.min(instances.len())
        };
        assert!(take > 0, "no instances to trace");
        // Tracing is per-instance deterministic; fan it out and flatten
        // in instance order so the dataset is identical to a serial
        // build. Probe training reads *every* layer, so this is one of
        // the paths that keeps requesting the full stack; the per-worker
        // scratch only amortises the synthesis buffers.
        let layers = LayerSet::all();
        let traces = crate::par::par_map_with(&instances[..take], SynthScratch::default, {
            let layers = &layers;
            move |synth, inst| {
                let mut vocab = Vocab::new();
                model.generate_with_layers(
                    inst,
                    &mut vocab,
                    target,
                    GenMode::TeacherForced,
                    layers,
                    synth,
                )
            }
        });
        let mut rows_per_layer: Vec<Vec<f32>> = vec![Vec::new(); model.n_layers];
        let mut labels: Vec<f32> = Vec::new();
        for trace in &traces {
            for step in &trace.steps {
                labels.push(step.is_branch as u8 as f32);
                for (j, h) in step.hidden.iter().enumerate() {
                    rows_per_layer[j].extend_from_slice(h);
                }
            }
        }
        let n_tokens = labels.len();
        let layers: Vec<Matrix> = rows_per_layer
            .into_iter()
            .map(|data| Matrix::from_vec(n_tokens, model.hidden_dim, data))
            .collect();
        BranchDataset {
            n_layers: model.n_layers,
            hidden_dim: model.hidden_dim,
            layers,
            labels,
            n_instances: take,
        }
    }

    pub fn n_tokens(&self) -> usize {
        self.labels.len()
    }

    /// Fraction of positive (branching) tokens.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l > 0.5).count() as f64 / self.labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::BenchmarkProfile;

    #[test]
    fn dataset_shape_and_labels() {
        let bench = BenchmarkProfile::bird_like().scaled(0.005).generate(11);
        let model = SchemaLinker::new("bird", 3);
        let ds = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 40);
        assert_eq!(ds.layers.len(), model.n_layers);
        assert!(ds.n_tokens() > 100);
        for layer in &ds.layers {
            assert_eq!(layer.rows(), ds.n_tokens());
            assert_eq!(layer.cols(), model.hidden_dim);
        }
        // Branching points are rare but present.
        let rate = ds.positive_rate();
        assert!(rate > 0.0 && rate < 0.2, "positive rate {rate}");
    }

    #[test]
    fn cap_limits_instances() {
        let bench = BenchmarkProfile::bird_like().scaled(0.005).generate(12);
        let model = SchemaLinker::new("bird", 3);
        let small = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 5);
        let large = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 20);
        assert_eq!(small.n_instances, 5);
        assert!(large.n_tokens() > small.n_tokens());
    }

    #[test]
    fn columns_dataset_is_larger_than_tables() {
        let bench = BenchmarkProfile::bird_like().scaled(0.005).generate(13);
        let model = SchemaLinker::new("bird", 3);
        let t = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 20);
        let c = BranchDataset::build(&model, &bench.split.train, LinkTarget::Columns, 20);
        assert!(c.n_tokens() > t.n_tokens(), "column streams are longer");
    }
}

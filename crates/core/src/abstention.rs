//! The RTS runtime: monitored generation with adaptive abstention
//! (§2.3, §3.3).
//!
//! The schema linker free-runs token by token; every token's hidden
//! stack goes through the mBPP. When a branching point fires, the
//! configured policy reacts:
//!
//! * [`MitigationPolicy::AbstainOnly`] — stop; the instance is handed
//!   off (Table 5 row "mBPP-Abstention").
//! * [`MitigationPolicy::Surrogate`] — trace the flag back to the
//!   implicated elements (Algorithm 2) and ask the surrogate filter; it
//!   halts generation only on an explicit "irrelevant", otherwise
//!   generation continues unchanged (Table 5 row "Surrogate filter").
//! * [`MitigationPolicy::Human`] — trace back, then interact: confirm
//!   candidates one by one; on a confirmation the generation continues
//!   with that element pinned; if every candidate is rejected the user
//!   supplies the correct element, which is pinned instead (Table 6).
//!
//! Teacher-forcing-style continuation is realised by *regenerating* the
//! stream with the resolved element's decision overridden — equivalent
//! to forcing the token and letting the model continue, because
//! decisions are drawn independently per element.

use crate::bpp::Mbpp;
use crate::human::HumanOracle;
use crate::surrogate::SurrogateModel;
use crate::traceback::{column_trie, table_trie, trace_back};
use benchgen::schemagen::DbMeta;
use benchgen::Instance;
use simlm::{Decision, GenMode, LinkTarget, SchemaLinker, Vocab};
use std::collections::{HashMap, HashSet};

/// What to do when a branching point is detected.
pub enum MitigationPolicy<'a> {
    AbstainOnly,
    Surrogate(&'a SurrogateModel),
    Human(&'a HumanOracle),
}

/// Runtime knobs.
#[derive(Debug, Clone)]
pub struct RtsConfig {
    /// Safety cap on correction rounds (defaults to #elements + 2).
    pub max_rounds: usize,
    /// Seed for the permutation-merge randomness.
    pub seed: u64,
    /// Monitor with the per-token reference loop instead of the batched
    /// scoring path. Flags are identical either way (see the parity
    /// proptest); this knob exists for A/B benchmarking and debugging.
    pub per_token_monitoring: bool,
    /// Synthesize the full hidden stack for every generated trace
    /// instead of only the layers the monitor reads (the pre-lazy
    /// reference behaviour). Outcomes are identical either way — lazy
    /// layers are bit-equal to their eager counterparts (see the
    /// lazy/eager parity proptests); this knob exists for A/B
    /// benchmarking and debugging, mirroring `per_token_monitoring`.
    pub eager_synthesis: bool,
}

impl Default for RtsConfig {
    fn default() -> Self {
        Self {
            max_rounds: 0,
            seed: 0xC0FFEE,
            per_token_monitoring: false,
            eager_synthesis: false,
        }
    }
}

/// Outcome of one monitored linking run.
#[derive(Debug, Clone)]
pub struct RtsOutcome {
    /// The run ended in abstention (never true under the Human policy).
    pub abstained: bool,
    /// Final predicted element set (empty when abstained).
    pub predicted: Vec<String>,
    /// Exactly matches gold? (false when abstained)
    pub correct: bool,
    /// Would the *unmonitored* free run have been exactly right?
    pub would_be_correct: bool,
    /// Number of human/surrogate consultations.
    pub n_interventions: usize,
    /// Total branching flags raised across rounds.
    pub n_flags: usize,
}

/// Run RTS schema linking for one instance.
pub fn run_rts_linking(
    model: &SchemaLinker,
    mbpp: &Mbpp,
    inst: &Instance,
    meta: &DbMeta,
    target: LinkTarget,
    policy: &MitigationPolicy<'_>,
    config: &RtsConfig,
) -> RtsOutcome {
    let gold = SchemaLinker::gold_elements(inst, target);
    let gold_set = {
        let mut g = gold.clone();
        g.sort();
        g
    };
    let mut rng = crate::par::instance_rng(config.seed, inst.id);

    // Lazy hidden-state synthesis: monitored traces only materialise
    // the layers the mBPP's selected probes read (~k of n_layers), and
    // the unmonitored counterfactual — which is only consulted for its
    // predicted element set — materialises none at all. Both are
    // observably identical to eager full-stack generation (per-layer
    // gaussian streams are independently seeded), so flags, outcomes
    // and the experiment corpus are unchanged.
    let (monitor_layers, baseline_layers) = if config.eager_synthesis {
        (simlm::LayerSet::all(), simlm::LayerSet::all())
    } else {
        (mbpp.layer_set(), simlm::LayerSet::none())
    };
    let mut synth = simlm::SynthScratch::default();

    // The unmonitored counterfactual (for TAR/FAR accounting).
    let mut vocab = Vocab::new();
    let baseline = model.generate_with_layers(
        inst,
        &mut vocab,
        target,
        GenMode::Free,
        &baseline_layers,
        &mut synth,
    );
    let would_be_correct = baseline.predicted_set() == gold_set;

    let max_rounds = if config.max_rounds == 0 {
        gold.len() + 2
    } else {
        config.max_rounds
    };
    let mut overrides: HashMap<String, Decision> = HashMap::new();
    let mut handled: HashSet<usize> = HashSet::new();
    let mut n_interventions = 0usize;
    let mut n_flags = 0usize;
    // Monitoring scratch shared across correction rounds.
    let mut scratch = crate::bpp::BppScratch::default();

    for _round in 0..max_rounds {
        let mut vocab = Vocab::new();
        let trace = model.generate_with_overrides_and_layers(
            inst,
            &mut vocab,
            target,
            GenMode::Free,
            &overrides,
            &monitor_layers,
            &mut synth,
        );
        let flags = if config.per_token_monitoring {
            mbpp.flag_trace_per_token(&trace, &mut rng)
        } else {
            mbpp.flag_trace_with_scratch(&trace, &mut rng, &mut scratch)
        };

        // First actionable flag: one raised on a not-yet-handled element.
        let mut actionable: Option<(usize, usize)> = None; // (position, element_idx)
        for (pos, &flagged) in flags.iter().enumerate() {
            if !flagged {
                continue;
            }
            n_flags += 1;
            if actionable.is_none() {
                if let Some(ei) = trace.steps[pos].element_idx {
                    if !handled.contains(&ei) {
                        actionable = Some((pos, ei));
                    }
                }
            }
        }

        let Some((branch_pos, element_idx)) = actionable else {
            // Clean run (or only spurious separator flags): accept.
            let predicted = trace.predicted_set();
            let correct = predicted == gold_set;
            return RtsOutcome {
                abstained: false,
                predicted,
                correct,
                would_be_correct,
                n_interventions,
                n_flags,
            };
        };

        match policy {
            MitigationPolicy::AbstainOnly => {
                return RtsOutcome {
                    abstained: true,
                    predicted: Vec::new(),
                    correct: false,
                    would_be_correct,
                    n_interventions,
                    n_flags,
                };
            }
            MitigationPolicy::Surrogate(surrogate) => {
                let implicated =
                    implicated_elements(&vocab, meta, target, &trace.tokens, branch_pos);
                n_interventions += 1;
                let is_table = target == LinkTarget::Tables;
                // §3.3: halt only if the surrogate explicitly confirms
                // irrelevance of the implicated elements.
                let all_irrelevant = !implicated.is_empty()
                    && implicated
                        .iter()
                        .all(|e| !surrogate.is_relevant(inst, e, is_table));
                if all_irrelevant {
                    return RtsOutcome {
                        abstained: true,
                        predicted: Vec::new(),
                        correct: false,
                        would_be_correct,
                        n_interventions,
                        n_flags,
                    };
                }
                // Otherwise generation continues unchanged; don't
                // re-consult for the same element.
                handled.insert(element_idx);
            }
            MitigationPolicy::Human(oracle) => {
                let implicated =
                    implicated_elements(&vocab, meta, target, &trace.tokens, branch_pos);
                n_interventions += 1;
                let is_table = target == LinkTarget::Tables;
                let gold_element = &gold[element_idx];
                // Confirm candidates in turn (§3.3): an affirmed
                // candidate is pinned and generation proceeds with it.
                // A candidate that is already linked elsewhere in the
                // answer cannot fill this slot (affirming it would just
                // duplicate the element), so it is skipped and the
                // interaction falls through to the "name the correct
                // element" request.
                let mut resolved: Option<String> = None;
                for cand in &implicated {
                    let already_linked = cand != gold_element && trace.predicted.contains(cand);
                    if already_linked {
                        continue;
                    }
                    let truly = gold_set.binary_search(cand).is_ok();
                    if oracle.judge_relevance(inst, cand, is_table, truly) {
                        resolved = Some(cand.clone());
                        break;
                    }
                }
                // All rejected: the user names the correct element.
                let chosen = resolved.unwrap_or_else(|| {
                    let distractors: Vec<String> = inst
                        .links
                        .iter()
                        .filter(|l| l.element.to_string() == *gold_element)
                        .flat_map(|l| l.confusables.iter())
                        .filter(|c| c.alt.is_table() == is_table)
                        .map(|c| c.alt.to_string())
                        .collect();
                    oracle.provide_element(inst, gold_element, &distractors, is_table)
                });
                let decision = if &chosen == gold_element {
                    Decision::Correct
                } else {
                    Decision::Substitute(chosen)
                };
                overrides.insert(gold_element.clone(), decision);
                handled.insert(element_idx);
            }
        }
    }

    // Round cap exceeded: give up and abstain (defensive; unreachable in
    // practice because every round handles one element).
    RtsOutcome {
        abstained: true,
        predicted: Vec::new(),
        correct: false,
        would_be_correct,
        n_interventions,
        n_flags,
    }
}

/// Algorithm 2 wrapper: implicated elements for the right element kind.
fn implicated_elements(
    vocab: &Vocab,
    meta: &DbMeta,
    target: LinkTarget,
    tokens: &[simlm::TokenId],
    branch_pos: usize,
) -> Vec<String> {
    // The trie needs a mutable vocab to tokenize candidate names; work on
    // a clone so caller state is untouched.
    let mut v = vocab.clone();
    let trie = match target {
        LinkTarget::Tables => table_trie(&mut v, meta),
        LinkTarget::Columns => column_trie(&mut v, meta),
    };
    trace_back(&v, &trie, tokens, branch_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpp::{Mbpp, MbppConfig, ProbeConfig};
    use crate::branching::BranchDataset;
    use crate::human::Expertise;
    use crate::metrics::{abstention_metrics, AbstentionOutcome};
    use benchgen::{Benchmark, BenchmarkProfile};

    struct Fixture {
        bench: Benchmark,
        model: SchemaLinker,
        mbpp: Mbpp,
    }

    fn fixture() -> Fixture {
        let bench = BenchmarkProfile::bird_like().scaled(0.06).generate(64);
        let model = SchemaLinker::new("bird", 13);
        let ds = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 450);
        let mbpp = Mbpp::train(
            &ds,
            &MbppConfig {
                probe: ProbeConfig {
                    epochs: 6,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        Fixture { bench, model, mbpp }
    }

    fn outcomes(fx: &Fixture, policy: &MitigationPolicy<'_>, n: usize) -> Vec<RtsOutcome> {
        let config = RtsConfig::default();
        fx.bench
            .split
            .dev
            .iter()
            .take(n)
            .map(|inst| {
                let meta = fx.bench.meta(&inst.db_name).unwrap();
                run_rts_linking(
                    &fx.model,
                    &fx.mbpp,
                    inst,
                    meta,
                    LinkTarget::Tables,
                    policy,
                    &config,
                )
            })
            .collect()
    }

    #[test]
    fn abstain_only_catches_most_errors() {
        let fx = fixture();
        let outs = outcomes(&fx, &MitigationPolicy::AbstainOnly, 120);
        let m = abstention_metrics(
            &outs
                .iter()
                .map(|o| AbstentionOutcome {
                    abstained: o.abstained,
                    correct: o.correct,
                    would_be_correct: o.would_be_correct,
                })
                .collect::<Vec<_>>(),
        );
        // Table 5 regime: high EM among answered, TAR > FAR ≈ modest.
        assert!(m.exact_match > 0.9, "EM {}", m.exact_match);
        assert!(m.tar > 0.0, "no true abstentions at all");
        let wrong_rate =
            outs.iter().filter(|o| !o.would_be_correct).count() as f64 / outs.len() as f64;
        assert!(
            m.tar >= wrong_rate * 0.6,
            "abstention catches too few errors: TAR {} vs wrong {}",
            m.tar,
            wrong_rate
        );
    }

    #[test]
    fn human_feedback_never_abstains_and_lifts_em() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 5);
        let outs = outcomes(&fx, &MitigationPolicy::Human(&oracle), 120);
        assert!(outs.iter().all(|o| !o.abstained));
        let em = outs.iter().filter(|o| o.correct).count() as f64 / outs.len() as f64;
        let em_baseline =
            outs.iter().filter(|o| o.would_be_correct).count() as f64 / outs.len() as f64;
        assert!(
            em > em_baseline,
            "human feedback must improve EM: {em} vs {em_baseline}"
        );
        assert!(em > 0.82, "EM with expert feedback {em}");
        // Interventions happen.
        assert!(outs.iter().any(|o| o.n_interventions > 0));
    }

    #[test]
    fn surrogate_reduces_abstentions_vs_abstain_only() {
        let fx = fixture();
        let surrogate = SurrogateModel::train(&fx.bench, 3);
        let plain = outcomes(&fx, &MitigationPolicy::AbstainOnly, 400);
        let filtered = outcomes(&fx, &MitigationPolicy::Surrogate(&surrogate), 400);
        let abst = |outs: &[RtsOutcome]| outs.iter().filter(|o| o.abstained).count();
        assert!(
            abst(&filtered) <= abst(&plain),
            "surrogate increased abstentions: {} vs {}",
            abst(&filtered),
            abst(&plain)
        );
        // The reduction must specifically shrink *false* abstentions.
        let far = |outs: &[RtsOutcome]| {
            outs.iter()
                .filter(|o| o.abstained && o.would_be_correct)
                .count()
        };
        assert!(
            far(&filtered) <= far(&plain),
            "surrogate did not cut false abstentions: {} vs {}",
            far(&filtered),
            far(&plain)
        );
    }

    #[test]
    fn outcomes_are_deterministic() {
        let fx = fixture();
        let a = outcomes(&fx, &MitigationPolicy::AbstainOnly, 30);
        let b = outcomes(&fx, &MitigationPolicy::AbstainOnly, 30);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.abstained, y.abstained);
            assert_eq!(x.predicted, y.predicted);
        }
    }

    #[test]
    fn beginner_humans_fix_less_than_experts() {
        let fx = fixture();
        let beginner = HumanOracle::new(Expertise::Beginner, 5);
        let expert = HumanOracle::new(Expertise::Expert, 5);
        let em = |oracle: &HumanOracle| {
            let outs = outcomes(&fx, &MitigationPolicy::Human(oracle), 150);
            outs.iter().filter(|o| o.correct).count() as f64 / outs.len() as f64
        };
        let em_b = em(&beginner);
        let em_e = em(&expert);
        // Single-oracle samples are noisy at fixture scale; the ordering
        // must hold up to small-sample tolerance (Table 8 averages 10
        // participants at benchmark scale for the clean comparison).
        assert!(em_e >= em_b - 0.03, "expert {em_e} vs beginner {em_b}");
    }
}

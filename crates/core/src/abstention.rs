//! The RTS runtime: monitored generation with adaptive abstention
//! (§2.3, §3.3).
//!
//! The schema linker free-runs token by token; every token's hidden
//! stack goes through the mBPP. When a branching point fires, the
//! configured policy reacts:
//!
//! * [`MitigationPolicy::AbstainOnly`] — stop; the instance is handed
//!   off (Table 5 row "mBPP-Abstention").
//! * [`MitigationPolicy::Surrogate`] — trace the flag back to the
//!   implicated elements (Algorithm 2) and ask the surrogate filter; it
//!   halts generation only on an explicit "irrelevant", otherwise
//!   generation continues unchanged (Table 5 row "Surrogate filter").
//! * [`MitigationPolicy::Human`] — trace back, then interact: confirm
//!   candidates one by one; on a confirmation the generation continues
//!   with that element pinned; if every candidate is rejected the user
//!   supplies the correct element, which is pinned instead (Table 6).
//!
//! Teacher-forcing-style continuation is realised by *regenerating* the
//! stream with the resolved element's decision overridden — equivalent
//! to forcing the token and letting the model continue, because
//! decisions are drawn independently per element.

use crate::bpp::Mbpp;
use crate::context::{implicated_elements_reference, LinkContext};
use crate::human::HumanOracle;
use crate::session::{drive_session, CtxHandle, LinkSession};
use crate::surrogate::SurrogateModel;
use benchgen::schemagen::DbMeta;
use benchgen::Instance;
use simlm::{Decision, GenMode, GenerationTrace, LinkTarget, SchemaLinker, Vocab};
use std::collections::{HashMap, HashSet};

/// What to do when a branching point is detected.
pub enum MitigationPolicy<'a> {
    AbstainOnly,
    Surrogate(&'a SurrogateModel),
    Human(&'a HumanOracle),
}

/// Runtime knobs.
#[derive(Debug, Clone)]
pub struct RtsConfig {
    /// Safety cap on correction rounds (defaults to #elements + 2).
    pub max_rounds: usize,
    /// Seed for the permutation-merge randomness.
    pub seed: u64,
    /// Monitor with the per-token reference loop instead of the batched
    /// scoring path. Flags are identical either way (see the parity
    /// proptest); this knob exists for A/B benchmarking and debugging.
    pub per_token_monitoring: bool,
    /// Synthesize the full hidden stack for every generated trace
    /// instead of only the layers the monitor reads (the pre-lazy
    /// reference behaviour). Outcomes are identical either way — lazy
    /// layers are bit-equal to their eager counterparts (see the
    /// lazy/eager parity proptests); this knob exists for A/B
    /// benchmarking and debugging, mirroring `per_token_monitoring`.
    pub eager_synthesis: bool,
    /// Run the pre-`LinkContext` reference path: generate the
    /// unmonitored counterfactual explicitly, regenerate the stream on
    /// every correction round even when no override changed it, rebuild
    /// the candidate trie from a vocabulary clone on every flag, and
    /// trace back by re-decoding the full prefix each step. Outcomes,
    /// flags, implicated sets and the merge RNG stream are identical
    /// either way (pinned by the `context_linking_matches_reference`
    /// parity proptest); this knob exists for A/B benchmarking,
    /// mirroring `per_token_monitoring` and `eager_synthesis`.
    pub reference_linking: bool,
    /// Which hidden-state synthesis corpus the run expects its
    /// `SchemaLinker` to generate (see `simlm::CorpusVersion`). This
    /// is the driver-level half of the corpus-version contract: the
    /// model owns the truth (`SchemaLinker::corpus`), the config
    /// records the expectation, and `LinkSession::new` debug-asserts
    /// they agree so a v2 config can never silently consume a v1
    /// stream (records from different corpora are incomparable).
    pub corpus: simlm::CorpusVersion,
}

impl Default for RtsConfig {
    fn default() -> Self {
        Self {
            max_rounds: 0,
            seed: 0xC0FFEE,
            per_token_monitoring: false,
            eager_synthesis: false,
            reference_linking: false,
            corpus: simlm::CorpusVersion::default(),
        }
    }
}

/// Reusable buffers for the monitored-linking runtime: hidden-state
/// synthesis scratch plus the mBPP's batched-scoring scratch. One per
/// worker thread (threaded through [`crate::par::par_map_with`]) keeps
/// the per-instance fan-out allocation-light; one per call is what the
/// plain [`run_rts_linking`] entry point falls back to.
#[derive(Debug, Default)]
pub struct LinkScratch {
    pub synth: simlm::SynthScratch,
    pub bpp: crate::bpp::BppScratch,
}

/// Outcome of one monitored linking run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RtsOutcome {
    /// The run ended in abstention (never true under the Human policy).
    pub abstained: bool,
    /// Final predicted element set (empty when abstained).
    pub predicted: Vec<String>,
    /// Exactly matches gold? (false when abstained)
    pub correct: bool,
    /// Would the *unmonitored* free run have been exactly right?
    pub would_be_correct: bool,
    /// Number of human/surrogate consultations.
    pub n_interventions: usize,
    /// Total branching flags raised across rounds.
    pub n_flags: usize,
}

/// A pre-generated round-0 monitored trace, handed to
/// [`run_rts_linking_from`] by callers that already produced the free
/// generation (the production dataflow: the stream is generated once
/// and consumed by both the monitor and the mitigation loop).
///
/// Contract: `trace` must be exactly what
/// `model.generate_with_layers(inst, &mut Vocab::new(), target,
/// GenMode::Free, &mbpp.layer_set(), …)` returns for this instance —
/// i.e. a free run with *no* overrides, carrying (at least) the
/// monitor's selected layers — and `vocab` the vocabulary that
/// generation filled. Generation is deterministic, so reusing such a
/// trace is bit-identical to regenerating it (pinned by the
/// `from_trace_linking_matches_regenerating` parity proptest).
#[derive(Debug, Clone, Copy)]
pub struct Round0<'a> {
    pub trace: &'a GenerationTrace,
    pub vocab: &'a Vocab,
}

/// Run RTS schema linking for one instance.
///
/// Convenience entry point: precompiles the instance's [`LinkContext`]
/// on the fly and uses per-call scratch. Hot loops over many instances
/// of the same database should build the context once (or a
/// [`crate::context::LinkContexts`] registry per benchmark) and call
/// [`run_rts_linking_in`] instead.
///
/// Since the [`LinkSession`] refactor every blocking entry point here
/// is a thin driver: it opens a session and loops
/// [`LinkSession::step`] / [`crate::session::resolve_flag`] until the
/// run completes — bit-identical to the pre-session monolithic loop
/// (kept as [`run_rts_linking_monolithic`]; pinned by the
/// `session_linking_matches_monolithic_loop` parity proptest).
pub fn run_rts_linking(
    model: &SchemaLinker,
    mbpp: &Mbpp,
    inst: &Instance,
    meta: &DbMeta,
    target: LinkTarget,
    policy: &MitigationPolicy<'_>,
    config: &RtsConfig,
) -> RtsOutcome {
    let mut scratch = LinkScratch::default();
    if config.reference_linking {
        // The reference path never touches a context; don't build one.
        let mut session = LinkSession::new(model, mbpp, inst, meta, target, None, None, config);
        drive_session(&mut session, policy, &mut scratch)
    } else {
        let ctx = LinkContext::new(meta, target);
        let mut session = LinkSession::new(
            model,
            mbpp,
            inst,
            meta,
            target,
            Some(CtxHandle::Borrowed(&ctx)),
            None,
            config,
        );
        drive_session(&mut session, policy, &mut scratch)
    }
}

/// [`run_rts_linking`] against a shared precompiled [`LinkContext`]
/// (and caller-owned scratch): the per-flag vocabulary clone + trie
/// rebuild disappears, the unmonitored counterfactual is derived from
/// round 0's stream instead of generated, and clean correction rounds
/// reuse the previous round's trace. Outcomes are bit-identical to the
/// reference path either way.
#[allow(clippy::too_many_arguments)] // mirrors run_rts_linking + context
pub fn run_rts_linking_in(
    model: &SchemaLinker,
    mbpp: &Mbpp,
    inst: &Instance,
    meta: &DbMeta,
    ctx: &LinkContext,
    policy: &MitigationPolicy<'_>,
    config: &RtsConfig,
    scratch: &mut LinkScratch,
) -> RtsOutcome {
    let mut session = LinkSession::new(
        model,
        mbpp,
        inst,
        meta,
        ctx.target(),
        Some(CtxHandle::Borrowed(ctx)),
        None,
        config,
    );
    drive_session(&mut session, policy, scratch)
}

/// [`run_rts_linking_in`] consuming a pre-generated round-0 trace (see
/// [`Round0`] for the contract): the mitigation loop starts by
/// monitoring the supplied stream and only generates when a correction
/// round actually changes it.
#[allow(clippy::too_many_arguments)] // mirrors run_rts_linking + context
pub fn run_rts_linking_from(
    model: &SchemaLinker,
    mbpp: &Mbpp,
    inst: &Instance,
    meta: &DbMeta,
    ctx: &LinkContext,
    round0: Round0<'_>,
    policy: &MitigationPolicy<'_>,
    config: &RtsConfig,
    scratch: &mut LinkScratch,
) -> RtsOutcome {
    let mut session = LinkSession::new(
        model,
        mbpp,
        inst,
        meta,
        ctx.target(),
        Some(CtxHandle::Borrowed(ctx)),
        Some(round0),
        config,
    );
    drive_session(&mut session, policy, scratch)
}

/// The round state: round 0 may be borrowed from the caller
/// ([`Round0`]); regenerated rounds are owned.
enum Round<'a> {
    Borrowed(Round0<'a>),
    Owned(GenerationTrace, Vocab),
}

impl Round<'_> {
    fn trace(&self) -> &GenerationTrace {
        match self {
            Round::Borrowed(r) => r.trace,
            Round::Owned(t, _) => t,
        }
    }

    fn vocab(&self) -> &Vocab {
        match self {
            Round::Borrowed(r) => r.vocab,
            Round::Owned(_, v) => v,
        }
    }
}

/// The pre-session monolithic mitigation loop, kept verbatim as the
/// parity reference for the [`LinkSession`] refactor: one blocking
/// function interleaving generation, monitoring and policy handling.
/// Every driver above must reproduce it bit for bit — same flags, same
/// merge-RNG stream, same interventions, same outcomes (enforced by
/// the `session_linking_matches_monolithic_loop` parity proptest and
/// the session module's unit tests).
///
/// `ctx`/`round0` select the entry-point shape being mirrored:
/// `run_rts_linking` (reference or per-call context),
/// `run_rts_linking_in` (`ctx` supplied), `run_rts_linking_from`
/// (`ctx` + `round0`).
///
/// Invariant: the loop runs context-backed exactly when
/// `config.reference_linking` is false (the reference path reproduces
/// the pre-context costs: explicit counterfactual generation,
/// regeneration every round, and a clone-per-flag trie rebuild). Both
/// paths produce bit-identical outcomes — generation never consumes
/// the instance RNG (its streams are self-seeded from `(seed,
/// instance, position)`), so skipping a redundant regeneration or the
/// counterfactual leaves the merge RNG, flags and decisions untouched.
#[allow(clippy::too_many_arguments)] // the one fully-explicit reference
pub fn run_rts_linking_monolithic(
    model: &SchemaLinker,
    mbpp: &Mbpp,
    inst: &Instance,
    meta: &DbMeta,
    target: LinkTarget,
    ctx: Option<&LinkContext>,
    round0: Option<Round0<'_>>,
    policy: &MitigationPolicy<'_>,
    config: &RtsConfig,
    scratch: &mut LinkScratch,
) -> RtsOutcome {
    // The reference path must pay the clone-per-flag trie rebuild even
    // if a caller handed us a context alongside the knob.
    let ctx = if config.reference_linking { None } else { ctx };
    let gold = SchemaLinker::gold_elements(inst, target);
    let gold_set = {
        let mut g = gold.clone();
        g.sort();
        g
    };
    let mut rng = crate::par::instance_rng(config.seed, inst.id);

    // Lazy hidden-state synthesis: monitored traces only materialise
    // the layers the mBPP's selected probes read (~k of n_layers). Both
    // are observably identical to eager full-stack generation
    // (per-layer gaussian streams are independently seeded), so flags,
    // outcomes and the experiment corpus are unchanged.
    let monitor_layers = if config.eager_synthesis {
        simlm::LayerSet::all()
    } else {
        mbpp.layer_set()
    };

    // TAR/FAR accounting needs the *unmonitored* run's predicted set.
    // Round 0 of the monitored loop runs with no overrides, so its
    // stream IS the unmonitored counterfactual — deriving the answer
    // from it below makes the extra generation redundant. The reference
    // path keeps the explicit extra generation (materialising zero
    // hidden layers, as before) for A/B comparisons.
    let mut would_be_correct: Option<bool> = if config.reference_linking {
        let baseline_layers = if config.eager_synthesis {
            simlm::LayerSet::all()
        } else {
            simlm::LayerSet::none()
        };
        let mut vocab = Vocab::new();
        let baseline = model.generate_with_layers(
            inst,
            &mut vocab,
            target,
            GenMode::Free,
            &baseline_layers,
            &mut scratch.synth,
        );
        Some(baseline.predicted_set() == gold_set)
    } else {
        None
    };

    let max_rounds = if config.max_rounds == 0 {
        gold.len() + 2
    } else {
        config.max_rounds
    };
    let mut overrides: HashMap<String, Decision> = HashMap::new();
    let mut handled: HashSet<usize> = HashSet::new();
    let mut n_interventions = 0usize;
    let mut n_flags = 0usize;

    let mut cur: Option<Round<'_>> = round0.map(Round::Borrowed);
    // Have `overrides` changed since `cur` was generated? Clean rounds
    // (Surrogate "continue unchanged") would regenerate a bit-identical
    // stream; reusing the trace changes nothing observable. The flags
    // are still recomputed each round — the merge RNG advances across
    // rounds, so round k's flags are not round 0's.
    let mut stale = false;

    for _round in 0..max_rounds {
        let regenerate = match &cur {
            None => true,
            Some(_) => stale || config.reference_linking,
        };
        if regenerate {
            let mut vocab = Vocab::new();
            let trace = model.generate_with_overrides_and_layers(
                inst,
                &mut vocab,
                target,
                GenMode::Free,
                &overrides,
                &monitor_layers,
                &mut scratch.synth,
            );
            cur = Some(Round::Owned(trace, vocab));
            stale = false;
        }
        let round = cur.as_ref().expect("round state populated");
        let trace = round.trace();
        let vocab = round.vocab();
        if would_be_correct.is_none() {
            // Round 0, no overrides: this stream is the counterfactual.
            would_be_correct = Some(trace.predicted_set() == gold_set);
        }
        let flags = if config.per_token_monitoring {
            mbpp.flag_trace_per_token(trace, &mut rng)
        } else {
            mbpp.flag_trace_with_scratch(trace, &mut rng, &mut scratch.bpp)
        };

        // First actionable flag: one raised on a not-yet-handled element.
        let mut actionable: Option<(usize, usize)> = None; // (position, element_idx)
        for (pos, &flagged) in flags.iter().enumerate() {
            if !flagged {
                continue;
            }
            n_flags += 1;
            if actionable.is_none() {
                if let Some(ei) = trace.steps[pos].element_idx {
                    if !handled.contains(&ei) {
                        actionable = Some((pos, ei));
                    }
                }
            }
        }

        let Some((branch_pos, element_idx)) = actionable else {
            // Clean run (or only spurious separator flags): accept.
            let predicted = trace.predicted_set();
            let correct = predicted == gold_set;
            return RtsOutcome {
                abstained: false,
                predicted,
                correct,
                would_be_correct: would_be_correct.unwrap_or(false),
                n_interventions,
                n_flags,
            };
        };

        match policy {
            MitigationPolicy::AbstainOnly => {
                return RtsOutcome {
                    abstained: true,
                    predicted: Vec::new(),
                    correct: false,
                    would_be_correct: would_be_correct.unwrap_or(false),
                    n_interventions,
                    n_flags,
                };
            }
            MitigationPolicy::Surrogate(surrogate) => {
                let implicated = implicated(ctx, vocab, meta, target, &trace.tokens, branch_pos);
                n_interventions += 1;
                let is_table = target == LinkTarget::Tables;
                // §3.3: halt only if the surrogate explicitly confirms
                // irrelevance of the implicated elements.
                let all_irrelevant = !implicated.is_empty()
                    && implicated
                        .iter()
                        .all(|e| !surrogate.is_relevant(inst, e, is_table));
                if all_irrelevant {
                    return RtsOutcome {
                        abstained: true,
                        predicted: Vec::new(),
                        correct: false,
                        would_be_correct: would_be_correct.unwrap_or(false),
                        n_interventions,
                        n_flags,
                    };
                }
                // Otherwise generation continues unchanged; don't
                // re-consult for the same element. The stream is not
                // stale — the next round reuses it.
                handled.insert(element_idx);
            }
            MitigationPolicy::Human(oracle) => {
                let implicated = implicated(ctx, vocab, meta, target, &trace.tokens, branch_pos);
                n_interventions += 1;
                let is_table = target == LinkTarget::Tables;
                let gold_element = &gold[element_idx];
                // Confirm candidates in turn (§3.3): an affirmed
                // candidate is pinned and generation proceeds with it.
                // A candidate that is already linked elsewhere in the
                // answer cannot fill this slot (affirming it would just
                // duplicate the element), so it is skipped and the
                // interaction falls through to the "name the correct
                // element" request.
                let mut resolved: Option<String> = None;
                for cand in &implicated {
                    let already_linked = cand != gold_element && trace.predicted.contains(cand);
                    if already_linked {
                        continue;
                    }
                    let truly = gold_set.binary_search(cand).is_ok();
                    if oracle.judge_relevance(inst, cand, is_table, truly) {
                        resolved = Some(cand.clone());
                        break;
                    }
                }
                // All rejected: the user names the correct element.
                let chosen = resolved.unwrap_or_else(|| {
                    let distractors: Vec<String> = inst
                        .links
                        .iter()
                        .filter(|l| l.element.to_string() == *gold_element)
                        .flat_map(|l| l.confusables.iter())
                        .filter(|c| c.alt.is_table() == is_table)
                        .map(|c| c.alt.to_string())
                        .collect();
                    oracle.provide_element(inst, gold_element, &distractors, is_table)
                });
                let decision = if &chosen == gold_element {
                    Decision::Correct
                } else {
                    Decision::Substitute(chosen)
                };
                overrides.insert(gold_element.clone(), decision);
                handled.insert(element_idx);
                // The pinned decision changes the stream: regenerate.
                stale = true;
            }
        }
    }

    // Round cap exceeded: give up and abstain (defensive; unreachable in
    // practice because every round handles one element).
    RtsOutcome {
        abstained: true,
        predicted: Vec::new(),
        correct: false,
        would_be_correct: would_be_correct.unwrap_or(false),
        n_interventions,
        n_flags,
    }
}

/// Algorithm 2 wrapper: implicated elements through the shared
/// context's cached trie, or — on the reference path, where no context
/// exists — by cloning the generation vocabulary and rebuilding the
/// trie in its id space (the pre-context per-flag cost). Shared by the
/// monolithic reference loop and the [`LinkSession`] state machine.
pub(crate) fn implicated(
    ctx: Option<&LinkContext>,
    vocab: &Vocab,
    meta: &DbMeta,
    target: LinkTarget,
    tokens: &[simlm::TokenId],
    branch_pos: usize,
) -> Vec<String> {
    match ctx {
        Some(ctx) => ctx.implicated_elements(vocab, tokens, branch_pos),
        None => implicated_elements_reference(vocab, meta, target, tokens, branch_pos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpp::{Mbpp, MbppConfig, ProbeConfig};
    use crate::branching::BranchDataset;
    use crate::human::Expertise;
    use crate::metrics::{abstention_metrics, AbstentionOutcome};
    use benchgen::{Benchmark, BenchmarkProfile};

    struct Fixture {
        bench: Benchmark,
        model: SchemaLinker,
        mbpp: Mbpp,
    }

    fn fixture() -> Fixture {
        let bench = BenchmarkProfile::bird_like().scaled(0.06).generate(64);
        let model = SchemaLinker::new("bird", 13);
        let ds = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 450);
        let mbpp = Mbpp::train(
            &ds,
            &MbppConfig {
                probe: ProbeConfig {
                    epochs: 6,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        Fixture { bench, model, mbpp }
    }

    fn outcomes(fx: &Fixture, policy: &MitigationPolicy<'_>, n: usize) -> Vec<RtsOutcome> {
        let config = RtsConfig::default();
        fx.bench
            .split
            .dev
            .iter()
            .take(n)
            .map(|inst| {
                let meta = fx.bench.meta(&inst.db_name).unwrap();
                run_rts_linking(
                    &fx.model,
                    &fx.mbpp,
                    inst,
                    meta,
                    LinkTarget::Tables,
                    policy,
                    &config,
                )
            })
            .collect()
    }

    #[test]
    fn abstain_only_catches_most_errors() {
        let fx = fixture();
        let outs = outcomes(&fx, &MitigationPolicy::AbstainOnly, 120);
        let m = abstention_metrics(
            &outs
                .iter()
                .map(|o| AbstentionOutcome {
                    abstained: o.abstained,
                    correct: o.correct,
                    would_be_correct: o.would_be_correct,
                })
                .collect::<Vec<_>>(),
        );
        // Table 5 regime: high EM among answered, TAR > FAR ≈ modest.
        assert!(m.exact_match > 0.9, "EM {}", m.exact_match);
        assert!(m.tar > 0.0, "no true abstentions at all");
        let wrong_rate =
            outs.iter().filter(|o| !o.would_be_correct).count() as f64 / outs.len() as f64;
        assert!(
            m.tar >= wrong_rate * 0.6,
            "abstention catches too few errors: TAR {} vs wrong {}",
            m.tar,
            wrong_rate
        );
    }

    #[test]
    fn human_feedback_never_abstains_and_lifts_em() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 5);
        let outs = outcomes(&fx, &MitigationPolicy::Human(&oracle), 120);
        assert!(outs.iter().all(|o| !o.abstained));
        let em = outs.iter().filter(|o| o.correct).count() as f64 / outs.len() as f64;
        let em_baseline =
            outs.iter().filter(|o| o.would_be_correct).count() as f64 / outs.len() as f64;
        assert!(
            em > em_baseline,
            "human feedback must improve EM: {em} vs {em_baseline}"
        );
        assert!(em > 0.82, "EM with expert feedback {em}");
        // Interventions happen.
        assert!(outs.iter().any(|o| o.n_interventions > 0));
    }

    #[test]
    fn surrogate_reduces_abstentions_vs_abstain_only() {
        let fx = fixture();
        let surrogate = SurrogateModel::train(&fx.bench, 3);
        let plain = outcomes(&fx, &MitigationPolicy::AbstainOnly, 400);
        let filtered = outcomes(&fx, &MitigationPolicy::Surrogate(&surrogate), 400);
        let abst = |outs: &[RtsOutcome]| outs.iter().filter(|o| o.abstained).count();
        assert!(
            abst(&filtered) <= abst(&plain),
            "surrogate increased abstentions: {} vs {}",
            abst(&filtered),
            abst(&plain)
        );
        // The reduction must specifically shrink *false* abstentions.
        let far = |outs: &[RtsOutcome]| {
            outs.iter()
                .filter(|o| o.abstained && o.would_be_correct)
                .count()
        };
        assert!(
            far(&filtered) <= far(&plain),
            "surrogate did not cut false abstentions: {} vs {}",
            far(&filtered),
            far(&plain)
        );
    }

    #[test]
    fn outcomes_are_deterministic() {
        let fx = fixture();
        let a = outcomes(&fx, &MitigationPolicy::AbstainOnly, 30);
        let b = outcomes(&fx, &MitigationPolicy::AbstainOnly, 30);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.abstained, y.abstained);
            assert_eq!(x.predicted, y.predicted);
        }
    }

    #[test]
    fn context_path_matches_reference_path_for_all_policies() {
        let fx = fixture();
        let surrogate = SurrogateModel::train(&fx.bench, 3);
        let oracle = HumanOracle::new(Expertise::Expert, 5);
        let contexts = crate::context::LinkContexts::build(&fx.bench);
        let fast_cfg = RtsConfig::default();
        let ref_cfg = RtsConfig {
            reference_linking: true,
            ..RtsConfig::default()
        };
        let mut scratch = LinkScratch::default();
        for policy in [
            MitigationPolicy::AbstainOnly,
            MitigationPolicy::Surrogate(&surrogate),
            MitigationPolicy::Human(&oracle),
        ] {
            for inst in fx.bench.split.dev.iter().take(60) {
                let meta = fx.bench.meta(&inst.db_name).unwrap();
                let ctx = contexts.get(&inst.db_name, LinkTarget::Tables);
                let fast = run_rts_linking_in(
                    &fx.model,
                    &fx.mbpp,
                    inst,
                    meta,
                    ctx,
                    &policy,
                    &fast_cfg,
                    &mut scratch,
                );
                let reference = run_rts_linking(
                    &fx.model,
                    &fx.mbpp,
                    inst,
                    meta,
                    LinkTarget::Tables,
                    &policy,
                    &ref_cfg,
                );
                assert_eq!(
                    format!("{fast:?}"),
                    format!("{reference:?}"),
                    "inst {}",
                    inst.id
                );
            }
        }
    }

    #[test]
    fn from_trace_entry_matches_regenerating() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 5);
        let contexts = crate::context::LinkContexts::build(&fx.bench);
        let config = RtsConfig::default();
        let mut scratch = LinkScratch::default();
        for policy in [
            MitigationPolicy::AbstainOnly,
            MitigationPolicy::Human(&oracle),
        ] {
            for inst in fx.bench.split.dev.iter().take(60) {
                let meta = fx.bench.meta(&inst.db_name).unwrap();
                let ctx = contexts.get(&inst.db_name, LinkTarget::Tables);
                let mut vocab = Vocab::new();
                let trace = fx.model.generate_with_layers(
                    inst,
                    &mut vocab,
                    LinkTarget::Tables,
                    GenMode::Free,
                    &fx.mbpp.layer_set(),
                    &mut scratch.synth,
                );
                let from = run_rts_linking_from(
                    &fx.model,
                    &fx.mbpp,
                    inst,
                    meta,
                    ctx,
                    Round0 {
                        trace: &trace,
                        vocab: &vocab,
                    },
                    &policy,
                    &config,
                    &mut scratch,
                );
                let regen = run_rts_linking_in(
                    &fx.model,
                    &fx.mbpp,
                    inst,
                    meta,
                    ctx,
                    &policy,
                    &config,
                    &mut scratch,
                );
                assert_eq!(
                    format!("{from:?}"),
                    format!("{regen:?}"),
                    "inst {}",
                    inst.id
                );
            }
        }
    }

    #[test]
    fn beginner_humans_fix_less_than_experts() {
        let fx = fixture();
        let beginner = HumanOracle::new(Expertise::Beginner, 5);
        let expert = HumanOracle::new(Expertise::Expert, 5);
        let em = |oracle: &HumanOracle| {
            let outs = outcomes(&fx, &MitigationPolicy::Human(oracle), 150);
            outs.iter().filter(|o| o.correct).count() as f64 / outs.len() as f64
        };
        let em_b = em(&beginner);
        let em_e = em(&expert);
        // Single-oracle samples are noisy at fixture scale; the ordering
        // must hold up to small-sample tolerance (Table 8 averages 10
        // participants at benchmark scale for the clean comparison).
        assert!(em_e >= em_b - 0.03, "expert {em_e} vs beginner {em_b}");
    }
}

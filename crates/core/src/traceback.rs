//! Algorithm 2: Table (and column) Trace Back.
//!
//! Given a flagged branching token, identify which schema elements the
//! divergence implicates: decode the stream up to (exclusive) and
//! through (inclusive) the branching token; while the difference is
//! empty, keep consuming the model's continuation; if the stream ends
//! mid-element, complete it through the constrained-decoding trie (the
//! model could only ever have produced a valid element). If end-of-
//! sequence arrives before any new element materialises, the last
//! decoded element is returned (the paper's `T[-1:]` case).
//!
//! [`trace_back`] consumes the stream through a
//! [`simlm::IncrementalDecoder`], one token per loop step; the
//! re-decode-the-whole-prefix formulation it replaced is kept verbatim
//! as [`trace_back_reference`] (quadratic in the stream length) for A/B
//! benchmarking and the parity tests.

use simlm::vocab::{TokenId, TOK_END};
use simlm::{decode_elements, IncrementalDecoder, Trie, Vocab};

/// Elements implicated by the branching token at `branch_pos`.
///
/// * `tokens` — the emitted stream (at least `branch_pos + 1` long),
/// * `trie` — the candidate-element trie used for completion when the
///   stream runs out mid-element.
///
/// Single pass over the stream: the prefix before the branching token
/// is decoded once, and every later loop step consumes exactly one
/// token. At most one element can complete per consumed token, so the
/// "fresh element" check inspects only the decoder's newly finished
/// elements instead of re-diffing the full prefix.
pub fn trace_back(
    vocab: &Vocab,
    trie: &Trie,
    tokens: &[TokenId],
    branch_pos: usize,
) -> Vec<String> {
    trace_back_with(vocab, tokens, branch_pos, |partial| {
        trie.cheapest_completion(partial)
            .map(|(_suffix, name)| name.to_string())
    })
}

/// [`trace_back`] with the trie-completion step abstracted out:
/// `complete` receives the trailing partial element's tokens (in the
/// stream's vocabulary) and returns the completed element name, if any.
/// This is what lets the shared `LinkContext` complete partials against
/// a trie keyed in *its own* id space — the decode phase is pure string
/// work in the stream vocabulary either way.
pub fn trace_back_with(
    vocab: &Vocab,
    tokens: &[TokenId],
    branch_pos: usize,
    complete: impl Fn(&[TokenId]) -> Option<String>,
) -> Vec<String> {
    assert!(branch_pos < tokens.len(), "branch position out of range");
    let end_tok = vocab.get(TOK_END);

    let mut dec = IncrementalDecoder::new(vocab);
    for &t in &tokens[..branch_pos] {
        dec.push(t);
    }
    let pre: Vec<String> = dec.elements().to_vec();
    // Elements at indices < `checked` are known to be in `pre`.
    let mut checked = dec.elements().len();
    dec.push(tokens[branch_pos]);
    let mut upto = branch_pos + 1;
    loop {
        while checked < dec.elements().len() {
            let e = &dec.elements()[checked];
            if !pre.contains(e) {
                return vec![e.clone()];
            }
            checked += 1;
        }
        // Need more tokens. Next token from the model's own stream…
        if upto < tokens.len() {
            if Some(tokens[upto]) == end_tok {
                // eos before a new element: paper returns the last table.
                if let Some(last) = dec.elements().last() {
                    return vec![last.clone()];
                }
                // Nothing decoded at all — fall through to completion.
            }
            dec.push(tokens[upto]);
            upto += 1;
            continue;
        }
        // …or, when the stream is exhausted mid-element, complete the
        // partial prefix through the trie.
        if !dec.partial().is_empty() {
            if let Some(name) = complete(dec.partial()) {
                if !pre.contains(&name) {
                    return vec![name];
                }
            }
        }
        // Give up: return the last decoded element if any.
        return dec
            .elements()
            .last()
            .map(|e| vec![e.clone()])
            .unwrap_or_default();
    }
}

/// The pre-incremental [`trace_back`]: re-runs [`decode_elements`] over
/// the full prefix on every loop iteration (O(n²) in the stream
/// length). Kept byte-for-byte as the reference the incremental decoder
/// is pinned against (`traceback_incremental_matches_reference` in the
/// parity proptests) and as the cost model behind
/// `RtsConfig::reference_linking`.
pub fn trace_back_reference(
    vocab: &Vocab,
    trie: &Trie,
    tokens: &[TokenId],
    branch_pos: usize,
) -> Vec<String> {
    assert!(branch_pos < tokens.len(), "branch position out of range");
    let end_tok = vocab.get(TOK_END);

    let (pre, _) = decode_elements(vocab, &tokens[..branch_pos]);
    let mut upto = branch_pos + 1;
    loop {
        let (after, partial) = decode_elements(vocab, &tokens[..upto]);
        let fresh: Vec<String> = after.iter().filter(|e| !pre.contains(e)).cloned().collect();
        if !fresh.is_empty() {
            return fresh;
        }
        if upto < tokens.len() {
            if Some(tokens[upto]) == end_tok {
                if let Some(last) = after.last() {
                    return vec![last.clone()];
                }
            }
            upto += 1;
            continue;
        }
        if !partial.is_empty() {
            if let Some((_suffix, name)) = trie.cheapest_completion(&partial) {
                if !pre.contains(&name.to_string()) {
                    return vec![name.to_string()];
                }
            }
        }
        return after.last().map(|e| vec![e.clone()]).unwrap_or_default();
    }
}

/// Build the constrained-decoding trie over table names in (the id
/// space of) `vocab`. This is the builder `LinkContext` precompiles
/// once per database; it also serves the clone-per-flag reference path,
/// which hands it a clone of the generation vocabulary.
pub fn table_trie_in(vocab: &mut Vocab, meta: &benchgen::schemagen::DbMeta) -> Trie {
    Trie::from_elements(vocab, meta.tables.iter().map(|t| t.name.as_str()))
}

/// Build the trie over fully qualified `table.column` elements in (the
/// id space of) `vocab`.
pub fn column_trie_in(vocab: &mut Vocab, meta: &benchgen::schemagen::DbMeta) -> Trie {
    Trie::from_elements(
        vocab,
        meta.tables
            .iter()
            .flat_map(|t| t.columns.iter().map(|c| format!("{}.{}", t.name, c.name))),
    )
}

/// Build the constrained-decoding trie over table names.
pub fn table_trie(vocab: &mut Vocab, meta: &benchgen::schemagen::DbMeta) -> Trie {
    table_trie_in(vocab, meta)
}

/// Build the trie over fully qualified `table.column` elements.
pub fn column_trie(vocab: &mut Vocab, meta: &benchgen::schemagen::DbMeta) -> Trie {
    column_trie_in(vocab, meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::BenchmarkProfile;
    use simlm::{GenMode, LinkTarget, SchemaLinker};

    #[test]
    fn traceback_finds_substituted_table() {
        let bench = BenchmarkProfile::bird_like().scaled(0.008).generate(77);
        let model = SchemaLinker::new("bird", 21);
        let mut found_case = false;
        for inst in bench.split.dev.iter() {
            let mut vocab = Vocab::new();
            let trace = model.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            let Some(branch_pos) = trace.steps.iter().position(|s| s.is_branch) else {
                continue;
            };
            let meta = bench.meta(&inst.db_name).unwrap();
            let trie = table_trie(&mut vocab, meta);
            let implicated = trace_back(&vocab, &trie, &trace.tokens, branch_pos);
            if implicated.is_empty() {
                // Legitimate only when the stream names no element at all
                // (a fully omitted single-element answer): nothing exists
                // to trace back to; mitigation falls through to the
                // "name the correct element" interaction.
                let (decoded, _) = simlm::decode_elements(&vocab, &trace.tokens);
                assert!(decoded.is_empty(), "empty trace back on a non-empty answer");
                continue;
            }
            // Every implicated element must be a real table of the DB
            // (the stream only ever contains valid elements).
            for e in &implicated {
                assert!(meta.table(e).is_some(), "{e} is not a table");
            }
            found_case = true;
        }
        assert!(found_case, "no branching generation in dev split");
    }

    #[test]
    fn traceback_on_truncated_stream_completes_via_trie() {
        let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(78);
        let model = SchemaLinker::new("bird", 22);
        for inst in bench.split.dev.iter().chain(bench.split.train.iter()) {
            let mut vocab = Vocab::new();
            let trace = model.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            let Some(branch_pos) = trace.steps.iter().position(|s| s.is_branch) else {
                continue;
            };
            // Truncate right after the branch token, forcing completion.
            let cut = &trace.tokens[..branch_pos + 1];
            let meta = bench.meta(&inst.db_name).unwrap();
            let trie = table_trie(&mut vocab, meta);
            let implicated = trace_back(&vocab, &trie, cut, branch_pos);
            for e in &implicated {
                assert!(meta.table(e).is_some(), "{e} is not a table");
            }
            return;
        }
        panic!("no branching generation found");
    }

    #[test]
    fn column_trie_contains_qualified_names() {
        let bench = BenchmarkProfile::bird_like().scaled(0.008).generate(79);
        let meta = &bench.metas[0];
        let mut vocab = Vocab::new();
        let trie = column_trie(&mut vocab, meta);
        let total: usize = meta.tables.iter().map(|t| t.columns.len()).sum();
        assert_eq!(trie.len(), total);
    }

    #[test]
    fn incremental_matches_reference_on_generated_streams() {
        // Every (stream, branch position, truncation) the dev split can
        // produce: the single-pass trace back must agree with the
        // quadratic reference exactly, including the trie-completion
        // and eos corner cases.
        let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(80);
        let model = SchemaLinker::new("bird", 23);
        let mut cases = 0usize;
        for inst in bench.split.dev.iter() {
            for target in [LinkTarget::Tables, LinkTarget::Columns] {
                let mut vocab = Vocab::new();
                let trace = model.generate(inst, &mut vocab, target, GenMode::Free);
                let meta = bench.meta(&inst.db_name).unwrap();
                let trie = match target {
                    LinkTarget::Tables => table_trie(&mut vocab, meta),
                    LinkTarget::Columns => column_trie(&mut vocab, meta),
                };
                for branch_pos in 0..trace.tokens.len() {
                    for cut in branch_pos + 1..=trace.tokens.len() {
                        let toks = &trace.tokens[..cut];
                        assert_eq!(
                            trace_back(&vocab, &trie, toks, branch_pos),
                            trace_back_reference(&vocab, &trie, toks, branch_pos),
                            "instance {} target {target:?} branch {branch_pos} cut {cut}",
                            inst.id
                        );
                        cases += 1;
                    }
                }
            }
        }
        assert!(cases > 1000, "too few cases exercised: {cases}");
    }

    #[test]
    fn long_stream_traceback_is_single_pass() {
        // A long synthetic stream (hundreds of elements): the
        // incremental path must agree with the reference when the
        // branch sits at the front — exactly where the re-decode
        // formulation paid its quadratic worst case.
        let mut vocab = Vocab::new();
        let mut trie = Trie::new();
        let comma = vocab.intern(simlm::vocab::TOK_COMMA);
        let mut tokens: Vec<TokenId> = vec![
            vocab.intern(simlm::vocab::TOK_TABLES),
            vocab.intern(simlm::vocab::TOK_COLON),
        ];
        for i in 0..400 {
            let name = format!("tbl{i}Data");
            let ids = simlm::linearize::element_tokens(&mut vocab, &name);
            trie.insert(&name, &ids);
            if i > 0 {
                tokens.push(comma);
            }
            // Repeat the same element so nothing is ever "fresh" and the
            // loop must walk the whole stream.
            let ids0 = vocab.try_encode_identifier("tbl0Data").unwrap();
            tokens.extend(ids0);
        }
        tokens.push(vocab.intern(simlm::vocab::TOK_END));
        // Branch on the second element's first token: `pre` then already
        // contains "tbl0Data", so no later completion is ever fresh and
        // both paths must walk the stream to the eos fallback.
        let branch_pos = 5;
        let fast = trace_back(&vocab, &trie, &tokens, branch_pos);
        let slow = trace_back_reference(&vocab, &trie, &tokens, branch_pos);
        assert_eq!(fast, slow);
        assert_eq!(fast, vec!["tbl0Data".to_string()]);
    }
}

//! Algorithm 2: Table (and column) Trace Back.
//!
//! Given a flagged branching token, identify which schema elements the
//! divergence implicates: decode the stream up to (exclusive) and
//! through (inclusive) the branching token; while the difference is
//! empty, keep consuming the model's continuation; if the stream ends
//! mid-element, complete it through the constrained-decoding trie (the
//! model could only ever have produced a valid element). If end-of-
//! sequence arrives before any new element materialises, the last
//! decoded element is returned (the paper's `T[-1:]` case).

use simlm::vocab::{TokenId, TOK_END};
use simlm::{decode_elements, Trie, Vocab};

/// Elements implicated by the branching token at `branch_pos`.
///
/// * `tokens` — the emitted stream (at least `branch_pos + 1` long),
/// * `trie` — the candidate-element trie used for completion when the
///   stream runs out mid-element.
pub fn trace_back(
    vocab: &Vocab,
    trie: &Trie,
    tokens: &[TokenId],
    branch_pos: usize,
) -> Vec<String> {
    assert!(branch_pos < tokens.len(), "branch position out of range");
    let end_tok = vocab.get(TOK_END);

    let (pre, _) = decode_elements(vocab, &tokens[..branch_pos]);
    let mut upto = branch_pos + 1;
    loop {
        let (after, partial) = decode_elements(vocab, &tokens[..upto]);
        let fresh: Vec<String> = after.iter().filter(|e| !pre.contains(e)).cloned().collect();
        if !fresh.is_empty() {
            return fresh;
        }
        // Need more tokens. Next token from the model's own stream…
        if upto < tokens.len() {
            if Some(tokens[upto]) == end_tok {
                // eos before a new element: paper returns the last table.
                if let Some(last) = after.last() {
                    return vec![last.clone()];
                }
                // Nothing decoded at all — fall through to completion.
            }
            upto += 1;
            continue;
        }
        // …or, when the stream is exhausted mid-element, complete the
        // partial prefix through the trie.
        if !partial.is_empty() {
            if let Some((_suffix, name)) = trie.cheapest_completion(&partial) {
                if !pre.contains(&name.to_string()) {
                    return vec![name.to_string()];
                }
            }
        }
        // Give up: return the last decoded element if any.
        return after.last().map(|e| vec![e.clone()]).unwrap_or_default();
    }
}

/// Build the constrained-decoding trie over table names.
pub fn table_trie(vocab: &mut Vocab, meta: &benchgen::schemagen::DbMeta) -> Trie {
    let mut trie = Trie::new();
    for t in &meta.tables {
        let toks = simlm::linearize::element_tokens(vocab, &t.name);
        trie.insert(&t.name, &toks);
    }
    trie
}

/// Build the trie over fully qualified `table.column` elements.
pub fn column_trie(vocab: &mut Vocab, meta: &benchgen::schemagen::DbMeta) -> Trie {
    let mut trie = Trie::new();
    for t in &meta.tables {
        for c in &t.columns {
            let name = format!("{}.{}", t.name, c.name);
            let toks = simlm::linearize::element_tokens(vocab, &name);
            trie.insert(&name, &toks);
        }
    }
    trie
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::BenchmarkProfile;
    use simlm::{GenMode, LinkTarget, SchemaLinker};

    #[test]
    fn traceback_finds_substituted_table() {
        let bench = BenchmarkProfile::bird_like().scaled(0.008).generate(77);
        let model = SchemaLinker::new("bird", 21);
        let mut found_case = false;
        for inst in bench.split.dev.iter() {
            let mut vocab = Vocab::new();
            let trace = model.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            let Some(branch_pos) = trace.steps.iter().position(|s| s.is_branch) else {
                continue;
            };
            let meta = bench.meta(&inst.db_name).unwrap();
            let trie = table_trie(&mut vocab, meta);
            let implicated = trace_back(&vocab, &trie, &trace.tokens, branch_pos);
            if implicated.is_empty() {
                // Legitimate only when the stream names no element at all
                // (a fully omitted single-element answer): nothing exists
                // to trace back to; mitigation falls through to the
                // "name the correct element" interaction.
                let (decoded, _) = simlm::decode_elements(&vocab, &trace.tokens);
                assert!(decoded.is_empty(), "empty trace back on a non-empty answer");
                continue;
            }
            // Every implicated element must be a real table of the DB
            // (the stream only ever contains valid elements).
            for e in &implicated {
                assert!(meta.table(e).is_some(), "{e} is not a table");
            }
            found_case = true;
        }
        assert!(found_case, "no branching generation in dev split");
    }

    #[test]
    fn traceback_on_truncated_stream_completes_via_trie() {
        let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(78);
        let model = SchemaLinker::new("bird", 22);
        for inst in bench.split.dev.iter().chain(bench.split.train.iter()) {
            let mut vocab = Vocab::new();
            let trace = model.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            let Some(branch_pos) = trace.steps.iter().position(|s| s.is_branch) else {
                continue;
            };
            // Truncate right after the branch token, forcing completion.
            let cut = &trace.tokens[..branch_pos + 1];
            let meta = bench.meta(&inst.db_name).unwrap();
            let trie = table_trie(&mut vocab, meta);
            let implicated = trace_back(&vocab, &trie, cut, branch_pos);
            for e in &implicated {
                assert!(meta.table(e).is_some(), "{e} is not a table");
            }
            return;
        }
        panic!("no branching generation found");
    }

    #[test]
    fn column_trie_contains_qualified_names() {
        let bench = BenchmarkProfile::bird_like().scaled(0.008).generate(79);
        let meta = &bench.metas[0];
        let mut vocab = Vocab::new();
        let trie = column_trie(&mut vocab, meta);
        let total: usize = meta.tables.iter().map(|t| t.columns.len()).sum();
        assert_eq!(trie.len(), total);
    }
}

//! The Branching Point Predictor (§3.2).
//!
//! **sBPP** (§3.2.2): one two-layer MLP probe per hidden layer, trained
//! on `D_branch` and wrapped in split conformal prediction with
//! nonconformity score `1 − p(y* | x)`. Each probe yields a prediction
//! set over `{0 = ordinary, 1 = branching point}` with marginal coverage
//! ≥ 1 − α. The non-exchangeable KNN-weighted variant of Barber et al.
//! is available behind [`ConformalKind::Knn`].
//!
//! **mBPP** (§3.2.3): the `k` probes with the best calibration AUC are
//! selected (the paper's `k = 5` default) and their prediction sets are
//! merged by either the θ-majority vote of Theorem 1 or the
//! random-permutation merge of Algorithm 1 / Theorem 3. A token is
//! declared a branching point iff label `1` survives in the merged set.

use crate::branching::BranchDataset;
use conformal::{LabelSet, NonExchangeableConformal, SplitConformal};
use serde::{Deserialize, Serialize};
use simlm::GenerationTrace;
use tinynn::rng::SplitMix64;
use tinynn::{Dataset, Matrix, Mlp, MlpConfig, MlpScratch, StandardScaler};

/// Which conformal wrapper an sBPP uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConformalKind {
    /// Standard split conformal (exchangeable calibration).
    Split,
    /// Non-exchangeable, KNN-weighted (Barber et al. 2023).
    Knn { k: usize, tau: f64 },
}

/// How per-layer prediction sets are merged into the mBPP decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MergeMethod {
    /// Theorem 1: keep labels in strictly more than θ of the sets.
    MajorityVote { theta: f64 },
    /// Algorithm 1 / Theorem 3.
    RandomPermutation,
}

/// A single-layer branching point predictor.
#[derive(Debug, Clone)]
pub struct Sbpp {
    pub layer: usize,
    pub alpha: f64,
    /// AUC of the probe on its calibration split (the layer-selection
    /// criterion and the Table 3 statistic).
    pub auc: f64,
    /// Probe failed validation and was replaced by the constant prior.
    pub degenerate: bool,
    probe: Mlp,
    scaler: StandardScaler,
    /// Calibration nonconformity scores (kept so α can be re-chosen
    /// without re-training — the Figure 6 sweep).
    cal_scores: Vec<f64>,
    conformal: SplitConformal,
    /// Present only for the non-exchangeable variant.
    knn: Option<NonExchangeableConformal>,
}

/// Training configuration for the probes.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Hidden widths of the probe MLP (paper: one hidden layer).
    pub hidden: Vec<usize>,
    pub epochs: usize,
    pub lr: f32,
    /// Fraction of `D_branch` rows held out for calibration.
    pub calibration_frac: f64,
    pub conformal: ConformalKind,
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self {
            hidden: vec![16],
            epochs: 20,
            lr: 5e-3,
            calibration_frac: 0.35,
            conformal: ConformalKind::Split,
            seed: 0,
        }
    }
}

/// Reusable buffers for the batched sBPP scoring path. One instance can
/// be shared across probes and traces; buffers grow to the largest
/// batch seen and are then reused, so the steady-state hot loop does
/// not allocate.
#[derive(Debug, Default, Clone)]
pub struct SbppScratch {
    standardized: Matrix,
    mlp: MlpScratch,
    probs: Vec<f32>,
}

/// Scratch for [`Mbpp::flag_trace_with_scratch`]: the per-layer packed
/// hidden-state matrix plus the per-probe scoring buffers.
#[derive(Debug, Default, Clone)]
pub struct BppScratch {
    /// One packed (n_tokens × hidden_dim) matrix per selected probe,
    /// filled in a single pass over the trace.
    packed: Vec<Matrix>,
    sbpp: SbppScratch,
    /// Per selected probe, the per-token prediction sets of the current
    /// trace (buffers reused across traces).
    sets_per_probe: Vec<Vec<LabelSet>>,
}

impl Sbpp {
    /// Train the probe for one layer of `D_branch`.
    pub fn train(ds: &BranchDataset, layer: usize, alpha: f64, cfg: &ProbeConfig) -> Sbpp {
        let features = &ds.layers[layer];
        let n = features.rows();
        assert!(n >= 50, "too few tokens ({n}) to train a probe");

        let full = Dataset::from_matrix(features.clone(), ds.labels.clone());
        let (train, cal) = full.split(cfg.calibration_frac, cfg.seed ^ (layer as u64) << 7);
        // Cap the probe-training set: past a few thousand rows extra data
        // only sharpens the sigmoid into saturation, which degenerates
        // the conformal quantiles (ε stops responding to α). The
        // calibration split is never capped — quantile resolution wants
        // every point.
        let train = if train.len() > 6000 {
            let idx: Vec<usize> = (0..6000).collect();
            let (shuffled, _) = train.split(0.0, cfg.seed ^ 0x5b5b);
            shuffled.subset(&idx)
        } else {
            train
        };

        // Standardise on the probe-training split only; the scaler is
        // part of the fixed predictor, preserving exchangeability of the
        // calibration scores.
        let train_rows: Vec<&[f32]> = (0..train.len()).map(|i| train.row(i)).collect();
        let scaler = StandardScaler::fit(&train_rows);
        let scale_ds = |d: &Dataset| {
            let rows: Vec<Vec<f32>> = (0..d.len()).map(|i| scaler.transform(d.row(i))).collect();
            Dataset::from_rows(&rows, d.targets())
        };
        let train_s = scale_ds(&train);
        let cal_s = scale_ds(&cal);

        // Branching points are ~2% of tokens: oversample positives to a
        // 1:1 class balance so every Adam batch sees them. Duplicated
        // copies are jittered (Gaussian, σ = 0.6 in standardised
        // units), which blocks a signal-free probe from memorising the
        // handful of unique positives — a blind layer's probe then
        // honestly outputs p ≈ 0.5 and its conformal sets become the
        // wide {0,1} of a clueless expert. That regime is what the
        // merge comparison of Fig. 7 lives in: wide sets pollute the
        // θ-majority vote at large k while the permutation merge prunes
        // them.
        let pos_idx: Vec<usize> = (0..train_s.len())
            .filter(|&i| train_s.targets()[i] > 0.5)
            .collect();
        let neg_count = train_s.len() - pos_idx.len();
        let train_s = if pos_idx.is_empty() {
            train_s
        } else {
            let copies = (neg_count / pos_idx.len()).clamp(1, 120);
            let mut jitter_rng = SplitMix64::new(cfg.seed ^ 0x7177 ^ ((layer as u64) << 3));
            let mut rows: Vec<Vec<f32>> =
                Vec::with_capacity(train_s.len() + (copies - 1) * pos_idx.len());
            let mut labels: Vec<f32> = Vec::with_capacity(rows.capacity());
            for i in 0..train_s.len() {
                rows.push(train_s.row(i).to_vec());
                labels.push(train_s.targets()[i]);
            }
            for _ in 1..copies {
                for &i in &pos_idx {
                    let jittered: Vec<f32> = train_s
                        .row(i)
                        .iter()
                        .map(|&x| x + 0.60 * jitter_rng.next_gaussian() as f32)
                        .collect();
                    rows.push(jittered);
                    labels.push(1.0);
                }
            }
            Dataset::from_rows(&rows, &labels)
        };
        let pos_rate = train_s.positive_rate().max(1e-4);
        let pos_weight = (((1.0 - pos_rate) / pos_rate) as f32).min(4.0);
        let mut probe = Mlp::new(MlpConfig {
            input_dim: ds.hidden_dim,
            hidden_dims: cfg.hidden.clone(),
            lr: cfg.lr,
            epochs: cfg.epochs,
            batch_size: 64,
            pos_weight,
            weight_decay: 1e-4,
            seed: cfg.seed ^ 0xBB90 ^ (layer as u64),
            ..MlpConfig::default()
        });
        probe.fit(&train_s);

        // Calibration scores + AUC.
        let probs = probe.predict_proba_batch(cal_s.features());
        let mut cal_scores = Vec::with_capacity(cal_s.len());
        let mut auc_scores = Vec::with_capacity(cal_s.len());
        let mut auc_labels = Vec::with_capacity(cal_s.len());
        for (i, &p) in probs.iter().enumerate() {
            let y = cal_s.targets()[i] > 0.5;
            let p_true = if y { p as f64 } else { 1.0 - p as f64 };
            cal_scores.push(1.0 - p_true);
            auc_scores.push(p as f64);
            auc_labels.push(y);
        }
        let auc = tinynn::metrics::auc(&auc_scores, &auc_labels);
        // Probe validation: a layer whose probe cannot beat chance on
        // calibration is replaced by the constant-prior predictor
        // (p = 0.5). Its nonconformity scores are then all 0.5, every
        // prediction set is the honest {0,1} of a clueless expert, and
        // the layer is naturally down-ranked by AUC selection.
        let degenerate = auc < 0.65;
        let cal_scores = if degenerate {
            vec![0.5; cal_scores.len()]
        } else {
            cal_scores
        };
        let conformal = SplitConformal::from_scores(cal_scores.clone(), alpha);
        let knn = match cfg.conformal {
            ConformalKind::Split => None,
            ConformalKind::Knn { k, tau } => {
                let points: Vec<Vec<f32>> =
                    (0..cal_s.len()).map(|i| cal_s.row(i).to_vec()).collect();
                Some(NonExchangeableConformal::new(
                    points,
                    cal_scores.clone(),
                    k,
                    tau,
                    alpha,
                ))
            }
        };
        Sbpp {
            layer,
            alpha,
            auc,
            degenerate,
            probe,
            scaler,
            cal_scores,
            conformal,
            knn,
        }
    }

    /// Probe score p(branch | h) for a raw hidden-state vector.
    pub fn score(&self, h: &[f32]) -> f64 {
        if self.degenerate {
            return 0.5;
        }
        self.probe.predict_proba(&self.scaler.transform(h)) as f64
    }

    /// The conformal prediction set for a raw hidden-state vector.
    ///
    /// The set may be empty (`max(p₀, p₁) < 1 − ε`): the probe conforms
    /// to neither label. The mBPP merge treats an empty set as an
    /// *abstaining layer* and drops it — the prefix-majority of
    /// Algorithm 1 is only meaningful over layers that voted.
    pub fn predict_set(&self, h: &[f32]) -> LabelSet {
        let hs = self.scaler.transform(h);
        let p1 = if self.degenerate {
            0.5
        } else {
            self.probe.predict_proba(&hs) as f64
        };
        match &self.knn {
            Some(knn) => knn.predict_binary(&hs, p1),
            None => self.conformal.predict_binary(p1),
        }
    }

    /// Conformal prediction sets for a whole batch of raw hidden-state
    /// rows (one per generated token), produced by one scaler transform
    /// and one MLP forward over the packed matrix instead of per-token
    /// vector ops. Row `t` of the result is exactly
    /// [`Sbpp::predict_set`] of row `t` of `h` — the batched matmul
    /// accumulates every output element in the same order as the
    /// per-token kernel, so the scores (and therefore the sets) are
    /// identical.
    pub fn predict_sets_batch(&self, h: &Matrix, scratch: &mut SbppScratch) -> Vec<LabelSet> {
        let mut out = Vec::new();
        self.predict_sets_into(h, scratch, &mut out);
        out
    }

    /// [`Sbpp::predict_sets_batch`] writing into a caller-owned vector
    /// (cleared first), so repeated trace monitoring reuses the buffer.
    pub fn predict_sets_into(
        &self,
        h: &Matrix,
        scratch: &mut SbppScratch,
        out: &mut Vec<LabelSet>,
    ) {
        let n = h.rows();
        self.score_batch_into(h, scratch);
        out.clear();
        out.reserve(n);
        for t in 0..n {
            let p1 = scratch.probs[t] as f64;
            out.push(match &self.knn {
                Some(knn) => knn.predict_binary(scratch.standardized.row(t), p1),
                None => self.conformal.predict_binary(p1),
            });
        }
    }

    /// Batched probe scores p(branch | h) for rows of `h` — the batched
    /// counterpart of [`Sbpp::score`], one scaler transform + one MLP
    /// forward for the whole batch.
    pub fn scores_batch(&self, h: &Matrix, scratch: &mut SbppScratch) -> Vec<f64> {
        self.score_batch_into(h, scratch);
        scratch.probs.iter().map(|&p| p as f64).collect()
    }

    /// Fill `scratch.standardized` / `scratch.probs` for rows of `h`.
    fn score_batch_into(&self, h: &Matrix, scratch: &mut SbppScratch) {
        self.scaler
            .transform_batch_into(h, &mut scratch.standardized);
        if self.degenerate {
            scratch.probs.clear();
            scratch.probs.resize(h.rows(), 0.5);
        } else {
            self.probe.predict_proba_batch_into(
                &scratch.standardized,
                &mut scratch.mlp,
                &mut scratch.probs,
            );
        }
    }

    /// Re-calibrate to a different error level without re-training.
    pub fn with_alpha(&self, alpha: f64) -> Sbpp {
        let mut out = self.clone();
        out.alpha = alpha;
        out.conformal = SplitConformal::from_scores(self.cal_scores.clone(), alpha);
        // The KNN variant re-reads alpha lazily; rebuild if present.
        if let Some(_knn) = &self.knn {
            // Rebuilding requires the calibration points, which the KNN
            // wrapper owns; cheapest correct path is to keep split CP for
            // sweeps (the ablation constructs KNN variants per α).
            out.knn = None;
        }
        out
    }
}

/// The multi-layer branching point predictor.
#[derive(Debug, Clone)]
pub struct Mbpp {
    /// One probe per LLM layer (all trained; selection picks `k`).
    pub sbpps: Vec<Sbpp>,
    /// Indices (into `sbpps`) of the k best-AUC layers.
    pub selected: Vec<usize>,
    pub method: MergeMethod,
    pub alpha: f64,
}

/// mBPP training configuration.
#[derive(Debug, Clone)]
pub struct MbppConfig {
    pub alpha: f64,
    /// Number of sBPPs aggregated (paper default: 5).
    pub k: usize,
    pub method: MergeMethod,
    pub probe: ProbeConfig,
}

impl Default for MbppConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            k: 5,
            method: MergeMethod::RandomPermutation,
            probe: ProbeConfig::default(),
        }
    }
}

impl Mbpp {
    /// Train probes for every layer, rank them by calibration AUC and
    /// select the top `k`.
    pub fn train(ds: &BranchDataset, cfg: &MbppConfig) -> Mbpp {
        assert!(cfg.k >= 1 && cfg.k <= ds.n_layers, "k out of range");
        // Per-layer probes are independent; train them in parallel.
        let n_workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let slots: Vec<parking_lot::Mutex<Option<Sbpp>>> = (0..ds.n_layers)
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            let slots = &slots;
            let next = &next;
            for _ in 0..n_workers.min(ds.n_layers) {
                scope.spawn(move |_| loop {
                    let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if j >= ds.n_layers {
                        break;
                    }
                    let trained = Sbpp::train(ds, j, cfg.alpha, &cfg.probe);
                    *slots[j].lock() = Some(trained);
                });
            }
        })
        .expect("probe training threads panicked");
        let sbpps: Vec<Sbpp> = slots
            .into_iter()
            .map(|s| s.into_inner().expect("probe trained"))
            .collect();
        let selected = Self::top_k(&sbpps, cfg.k);
        Mbpp {
            sbpps,
            selected,
            method: cfg.method,
            alpha: cfg.alpha,
        }
    }

    fn top_k(sbpps: &[Sbpp], k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..sbpps.len()).collect();
        order.sort_by(|&a, &b| sbpps[b].auc.total_cmp(&sbpps[a].auc));
        order.truncate(k);
        order
    }

    /// The hidden layers this monitor actually reads: the selected
    /// probes' layers as a [`simlm::LayerSet`], handed to the lazy
    /// trace-generation path so only those layers are synthesized.
    /// Every `flag_trace*` / [`Mbpp::is_branch`] call touches exactly
    /// these layers, so monitoring a lazily synthesized trace is
    /// bit-identical to monitoring an eager full-stack one.
    pub fn layer_set(&self) -> simlm::LayerSet {
        simlm::LayerSet::select(self.selected.iter().map(|&i| self.sbpps[i].layer))
    }

    /// Mean AUC over the *selected* probes (what Table 3 reports for the
    /// sBPPs used in conformal prediction).
    pub fn mean_selected_auc(&self) -> f64 {
        self.selected
            .iter()
            .map(|&i| self.sbpps[i].auc)
            .sum::<f64>()
            / self.selected.len() as f64
    }

    /// Mean AUC over all layers (diagnostic).
    pub fn mean_auc_all(&self) -> f64 {
        self.sbpps.iter().map(|s| s.auc).sum::<f64>() / self.sbpps.len() as f64
    }

    /// Is this token (its per-layer hidden stack) a branching point?
    ///
    /// Empty per-layer sets are abstentions and are excluded from the
    /// merge; a token every layer abstains on is not flagged.
    ///
    /// Only the selected probes' layers are read, so `hidden` may be a
    /// lazily synthesized stack as long as it covers
    /// [`Mbpp::layer_set`] (the monitored runtime's production path).
    pub fn is_branch(&self, hidden: &simlm::HiddenStack, rng: &mut SplitMix64) -> bool {
        let sets: Vec<LabelSet> = self
            .selected
            .iter()
            .map(|&i| self.sbpps[i].predict_set(&hidden[self.sbpps[i].layer]))
            .filter(|s| !s.is_empty())
            .collect();
        self.merge_token_sets(&sets, rng)
    }

    /// The token-level merge decision shared by the per-token and
    /// batched paths (their parity contract requires a single
    /// implementation): `sets` holds the non-abstaining (non-empty)
    /// per-layer prediction sets; the token is flagged iff label 1
    /// survives the configured merge. No sets at all ⇒ not flagged.
    fn merge_token_sets(&self, sets: &[LabelSet], rng: &mut SplitMix64) -> bool {
        if sets.is_empty() {
            return false;
        }
        let merged = match self.method {
            MergeMethod::MajorityVote { theta } => conformal::majority_vote(sets, theta, 2),
            MergeMethod::RandomPermutation => conformal::random_permutation_merge(sets, 2, rng),
        };
        merged.contains(1)
    }

    /// Flag every token of a trace. Returns the per-token decisions.
    ///
    /// This is the batched fast path: per selected probe, all token
    /// hidden states of the trace are packed into one matrix, pushed
    /// through one scaler transform and one MLP forward (amortising the
    /// matmul), and the resulting per-token prediction sets are merged
    /// exactly as the per-token loop would. Flags — and the permutation
    /// merge's RNG consumption — are identical to
    /// [`Mbpp::flag_trace_per_token`] (the parity proptest in
    /// `tests/proptest_invariants.rs` pins this).
    pub fn flag_trace(&self, trace: &GenerationTrace, rng: &mut SplitMix64) -> Vec<bool> {
        let mut scratch = BppScratch::default();
        self.flag_trace_with_scratch(trace, rng, &mut scratch)
    }

    /// [`Mbpp::flag_trace`] with caller-owned scratch buffers, for hot
    /// loops that flag many traces (monitored linking re-generates the
    /// stream once per correction round).
    pub fn flag_trace_with_scratch(
        &self,
        trace: &GenerationTrace,
        rng: &mut SplitMix64,
        scratch: &mut BppScratch,
    ) -> Vec<bool> {
        let n = trace.steps.len();
        if n == 0 {
            return Vec::new();
        }
        // Pack every selected layer's hidden states in one pass over the
        // trace (each step's hidden stack is touched once), then run one
        // batched scoring pass per probe into reused set buffers.
        let dim = trace.steps[0].hidden.dim();
        scratch
            .packed
            .resize(self.selected.len(), Matrix::default());
        scratch
            .sets_per_probe
            .resize(self.selected.len(), Vec::new());
        for m in scratch.packed.iter_mut() {
            m.resize_for_overwrite(n, dim);
        }
        // Fused multi-layer variant of `GenerationTrace::pack_layer_into`:
        // one pass over the steps fills every selected layer's matrix.
        for (t, step) in trace.steps.iter().enumerate() {
            for (slot, &i) in self.selected.iter().enumerate() {
                scratch.packed[slot]
                    .row_mut(t)
                    .copy_from_slice(step.hidden.layer(self.sbpps[i].layer));
            }
        }
        for (slot, &i) in self.selected.iter().enumerate() {
            self.sbpps[i].predict_sets_into(
                &scratch.packed[slot],
                &mut scratch.sbpp,
                &mut scratch.sets_per_probe[slot],
            );
        }
        let sets_per_probe = &scratch.sets_per_probe;
        // Merge per token in the same order (and with the same RNG
        // consumption pattern) as the per-token path.
        let mut sets: Vec<LabelSet> = Vec::with_capacity(self.selected.len());
        (0..n)
            .map(|t| {
                sets.clear();
                sets.extend(
                    sets_per_probe
                        .iter()
                        .map(|probe_sets| probe_sets[t])
                        .filter(|s| !s.is_empty()),
                );
                self.merge_token_sets(&sets, rng)
            })
            .collect()
    }

    /// The reference per-token monitoring loop: one scaler transform and
    /// one MLP forward per (token, probe). Kept as the baseline the
    /// batched path is benchmarked and parity-tested against.
    pub fn flag_trace_per_token(&self, trace: &GenerationTrace, rng: &mut SplitMix64) -> Vec<bool> {
        trace
            .steps
            .iter()
            .map(|s| self.is_branch(&s.hidden, rng))
            .collect()
    }

    /// Clone with a different error level (cheap: reuses probes).
    pub fn with_alpha(&self, alpha: f64) -> Mbpp {
        Mbpp {
            sbpps: self.sbpps.iter().map(|s| s.with_alpha(alpha)).collect(),
            selected: self.selected.clone(),
            method: self.method,
            alpha,
        }
    }

    /// Clone with a different k (cheap: reuses probes).
    pub fn with_k(&self, k: usize) -> Mbpp {
        assert!(k >= 1 && k <= self.sbpps.len());
        Mbpp {
            sbpps: self.sbpps.clone(),
            selected: Self::top_k(&self.sbpps, k),
            method: self.method,
            alpha: self.alpha,
        }
    }

    /// Clone with a different merge method.
    pub fn with_method(&self, method: MergeMethod) -> Mbpp {
        Mbpp {
            method,
            ..self.clone()
        }
    }

    /// Clone selecting *random* layers instead of top-AUC (ablation).
    pub fn with_random_layers(&self, k: usize, seed: u64) -> Mbpp {
        let mut order: Vec<usize> = (0..self.sbpps.len()).collect();
        let mut rng = SplitMix64::new(seed);
        tinynn::rng::shuffle(&mut order, &mut rng);
        order.truncate(k);
        Mbpp {
            selected: order,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::BenchmarkProfile;
    use simlm::{GenMode, LinkTarget, SchemaLinker, Vocab};

    fn setup() -> (benchgen::Benchmark, SchemaLinker, BranchDataset) {
        let bench = BenchmarkProfile::bird_like().scaled(0.03).generate(31);
        let model = SchemaLinker::new("bird", 5);
        let ds = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 250);
        (bench, model, ds)
    }

    #[test]
    fn probes_learn_the_risk_direction() {
        let (_, _, ds) = setup();
        // Train only a mid-depth layer (cheap test): it must beat 0.85
        // AUC; an early layer must be clearly worse.
        let cfg = ProbeConfig {
            epochs: 15,
            ..ProbeConfig::default()
        };
        let late = Sbpp::train(&ds, 21, 0.1, &cfg);
        let early = Sbpp::train(&ds, 0, 0.1, &cfg);
        assert!(late.auc > 0.85, "late-layer AUC {}", late.auc);
        assert!(
            early.auc < late.auc,
            "early {} vs late {}",
            early.auc,
            late.auc
        );
    }

    #[test]
    fn mbpp_selects_informative_layers() {
        let (_, model, ds) = setup();
        let cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 12,
                ..Default::default()
            },
            ..Default::default()
        };
        let mbpp = Mbpp::train(&ds, &cfg);
        assert_eq!(mbpp.selected.len(), 5);
        // Selected layers should sit in the gainful region of the
        // simulated network.
        let gains = model.layer_gains();
        for &i in &mbpp.selected {
            assert!(gains[mbpp.sbpps[i].layer] > 0.2, "selected weak layer {i}");
        }
        assert!(
            mbpp.mean_selected_auc() > 0.9,
            "selected AUC {}",
            mbpp.mean_selected_auc()
        );
        assert!(mbpp.mean_selected_auc() > mbpp.mean_auc_all());
    }

    #[test]
    fn mbpp_detects_branches_on_dev() {
        let (bench, model, ds) = setup();
        let cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 12,
                ..Default::default()
            },
            ..Default::default()
        };
        let mbpp = Mbpp::train(&ds, &cfg);
        let mut rng = SplitMix64::new(99);
        let mut flags = Vec::new();
        for inst in bench.split.dev.iter().take(60) {
            let mut vocab = Vocab::new();
            let trace =
                model.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::TeacherForced);
            let predicted = mbpp.flag_trace(&trace, &mut rng);
            for (p, s) in predicted.iter().zip(&trace.steps) {
                flags.push((*p, s.is_branch));
            }
        }
        let m = crate::metrics::coverage_metrics(&flags);
        assert!(m.n_branches > 0, "no branches in dev sample");
        assert!(m.coverage >= 0.8, "coverage {}", m.coverage);
        assert!(m.ear <= 0.2, "EAR {}", m.ear);
    }

    #[test]
    fn alpha_recalibration_moves_coverage() {
        let (bench, model, ds) = setup();
        let cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let mbpp_tight = Mbpp::train(&ds, &cfg); // α = 0.1
        let mbpp_loose = mbpp_tight.with_alpha(0.4);
        let run = |mbpp: &Mbpp| {
            let mut rng = SplitMix64::new(7);
            let mut flags = Vec::new();
            for inst in bench.split.dev.iter().take(40) {
                let mut vocab = Vocab::new();
                let trace =
                    model.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::TeacherForced);
                for (p, s) in mbpp.flag_trace(&trace, &mut rng).iter().zip(&trace.steps) {
                    flags.push((*p, s.is_branch));
                }
            }
            crate::metrics::coverage_metrics(&flags)
        };
        let tight = run(&mbpp_tight);
        let loose = run(&mbpp_loose);
        // Larger α ⇒ tighter sets ⇒ lower EAR (and usually lower coverage).
        assert!(
            loose.ear <= tight.ear + 1e-9,
            "loose {} vs tight {}",
            loose.ear,
            tight.ear
        );
    }

    #[test]
    fn with_k_changes_selection_size() {
        let (_, _, ds) = setup();
        let cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        let mbpp = Mbpp::train(&ds, &cfg);
        assert_eq!(mbpp.with_k(1).selected.len(), 1);
        assert_eq!(mbpp.with_k(9).selected.len(), 9);
        // Top-1 is the best-AUC probe.
        let best = mbpp.with_k(1).selected[0];
        assert!(mbpp
            .sbpps
            .iter()
            .all(|s| s.auc <= mbpp.sbpps[best].auc + 1e-12));
    }

    #[test]
    fn batched_flags_match_per_token_exactly() {
        let (bench, model, ds) = setup();
        for method in [
            MergeMethod::RandomPermutation,
            MergeMethod::MajorityVote { theta: 0.5 },
        ] {
            let cfg = MbppConfig {
                method,
                probe: ProbeConfig {
                    epochs: 8,
                    ..Default::default()
                },
                ..Default::default()
            };
            let mbpp = Mbpp::train(&ds, &cfg);
            let mut scratch = BppScratch::default();
            let mut rng_batched = SplitMix64::new(41);
            let mut rng_serial = SplitMix64::new(41);
            for inst in bench.split.dev.iter().take(25) {
                let mut vocab = Vocab::new();
                let trace = model.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
                let batched = mbpp.flag_trace_with_scratch(&trace, &mut rng_batched, &mut scratch);
                let serial = mbpp.flag_trace_per_token(&trace, &mut rng_serial);
                assert_eq!(batched, serial, "flag divergence on instance {}", inst.id);
                // RNG streams must stay in lock-step too.
                assert_eq!(
                    rng_batched, rng_serial,
                    "rng divergence on instance {}",
                    inst.id
                );
            }
        }
    }

    #[test]
    fn batched_sets_match_per_token_for_knn_conformal() {
        let (bench, model, ds) = setup();
        let cfg = ProbeConfig {
            epochs: 6,
            conformal: ConformalKind::Knn { k: 40, tau: 50.0 },
            ..Default::default()
        };
        let sbpp = Sbpp::train(&ds, 21, 0.1, &cfg);
        let mut scratch = SbppScratch::default();
        let inst = &bench.split.dev[0];
        let mut vocab = Vocab::new();
        let trace = model.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
        let n = trace.steps.len();
        let mut packed = tinynn::Matrix::zeros(n, ds.hidden_dim);
        for (t, step) in trace.steps.iter().enumerate() {
            packed.row_mut(t).copy_from_slice(&step.hidden[sbpp.layer]);
        }
        let batched = sbpp.predict_sets_batch(&packed, &mut scratch);
        for (t, step) in trace.steps.iter().enumerate() {
            assert_eq!(
                batched[t],
                sbpp.predict_set(&step.hidden[sbpp.layer]),
                "token {t}"
            );
        }
    }

    #[test]
    fn knn_conformal_variant_trains() {
        let (_, _, ds) = setup();
        let cfg = ProbeConfig {
            epochs: 4,
            conformal: ConformalKind::Knn { k: 50, tau: 50.0 },
            ..Default::default()
        };
        let sbpp = Sbpp::train(&ds, 21, 0.1, &cfg);
        // Must produce valid sets.
        let h = vec![0.0_f32; ds.hidden_dim];
        let set = sbpp.predict_set(&h);
        assert!(!set.is_empty() || set == LabelSet::EMPTY);
    }
}

//! The surrogate relevance filter (§3.3).
//!
//! The paper fine-tunes a Deepseek-7B to answer *"Is `T_b` relevant to
//! the question: (A) True (B) False"* and uses it as a stand-in for a
//! human when a branching point fires. We simulate the fine-tuned
//! model's *semantic knowledge* with a noisy-oracle feature — the true
//! relevance bit flipped at a rate that grows with instance hardness —
//! and train a real `tinynn` classifier on that feature plus observable
//! structure (confusion weight, hardness, element kind, link
//! underspecification). The resulting accuracy lands at the paper's
//! Table 4 operating points (92–96%) and, crucially, errs exactly where
//! a real model errs: on hard, ambiguous instances.

use benchgen::{Benchmark, Instance};
use tinynn::rng::{stable_hash, SplitMix64};
use tinynn::{Dataset, Mlp, MlpConfig, StandardScaler};

/// Per-benchmark semantic-noise rate (the only free knob; see Table 4).
fn noise_rate(benchmark: &str) -> f64 {
    match benchmark {
        "bird" => 0.062,
        "spider" => 0.033,
        other => panic!("no surrogate noise profile for {other}"),
    }
}

/// The trained surrogate filter.
#[derive(Debug, Clone)]
pub struct SurrogateModel {
    mlp: Mlp,
    scaler: StandardScaler,
    noise: f64,
    seed: u64,
}

const N_FEATURES: usize = 6;

impl SurrogateModel {
    /// Assemble features for one (instance, element) relevance query.
    ///
    /// `truly_relevant` feeds the *noisy* semantic-oracle feature — the
    /// stand-in for what a fine-tuned LLM knows about the question; the
    /// flip noise is deterministic per (model, instance, element).
    fn features(
        &self,
        inst: &Instance,
        element: &str,
        is_table: bool,
        truly_relevant: bool,
    ) -> Vec<f32> {
        Self::features_with(
            self.noise,
            self.seed,
            inst,
            element,
            is_table,
            truly_relevant,
        )
    }

    fn features_with(
        noise: f64,
        seed: u64,
        inst: &Instance,
        element: &str,
        is_table: bool,
        truly_relevant: bool,
    ) -> Vec<f32> {
        let mut rng = SplitMix64::new(
            seed ^ stable_hash(element.as_bytes()) ^ inst.id.wrapping_mul(0xA3C5_9AC3),
        );
        // Hardness-modulated flip: hard instances confuse the surrogate
        // more, like they confuse the linker.
        let p_flip = (noise * (0.55 + 0.9 * inst.hardness)).min(0.5);
        let semantic = if rng.next_bool(p_flip) {
            !truly_relevant
        } else {
            truly_relevant
        };

        // How strongly the workload's confusion structure pulls toward
        // this element (max confusable weight across links).
        let pull = inst
            .links
            .iter()
            .flat_map(|l| l.confusables.iter())
            .filter(|c| c.alt.to_string() == element)
            .map(|c| c.weight)
            .fold(0.0_f64, f64::max);
        // Is the element one of the question's gold mentions' *lexical
        // neighbourhood* (gold or confusable)?
        let in_neighbourhood = truly_relevant
            || inst
                .links
                .iter()
                .any(|l| l.confusables.iter().any(|c| c.alt.to_string() == element));
        vec![
            semantic as u8 as f32,
            pull as f32,
            inst.hardness as f32,
            is_table as u8 as f32,
            in_neighbourhood as u8 as f32,
            inst.risk_count() as f32,
        ]
    }

    /// Fine-tune the surrogate on the benchmark's training split:
    /// positives are gold elements, negatives are their confusables.
    pub fn train(bench: &Benchmark, seed: u64) -> SurrogateModel {
        let noise = noise_rate(&bench.profile.name);
        let mut rows: Vec<Vec<f32>> = Vec::new();
        let mut labels: Vec<f32> = Vec::new();
        for inst in bench.split.train.iter().take(1200) {
            for link in &inst.links {
                let is_table = link.element.is_table();
                let gold = link.element.to_string();
                rows.push(Self::features_with(
                    noise, seed, inst, &gold, is_table, true,
                ));
                labels.push(1.0);
                for c in link.confusables.iter().take(2) {
                    let alt = c.alt.to_string();
                    // A confusable may coincidentally be another gold
                    // element; label truthfully.
                    let truly = if c.alt.is_table() {
                        inst.gold_tables.contains(&c.alt.table)
                    } else {
                        inst.gold_columns
                            .iter()
                            .any(|(t, col)| *t == c.alt.table && Some(col) == c.alt.column.as_ref())
                    };
                    rows.push(Self::features_with(
                        noise,
                        seed,
                        inst,
                        &alt,
                        c.alt.is_table(),
                        truly,
                    ));
                    labels.push(truly as u8 as f32);
                }
            }
        }
        assert!(rows.len() > 200, "too little surrogate training data");
        let row_refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let scaler = StandardScaler::fit(&row_refs);
        let scaled: Vec<Vec<f32>> = rows.iter().map(|r| scaler.transform(r)).collect();
        let ds = Dataset::from_rows(&scaled, &labels);
        let mut mlp = Mlp::new(MlpConfig {
            input_dim: N_FEATURES,
            hidden_dims: vec![16],
            lr: 5e-3,
            epochs: 12,
            batch_size: 64,
            seed: seed ^ 0x5A11,
            ..MlpConfig::default()
        });
        mlp.fit(&ds);
        SurrogateModel {
            mlp,
            scaler,
            noise,
            seed,
        }
    }

    /// Answer the §3.3 prompt: is `element` relevant to the question?
    pub fn is_relevant(&self, inst: &Instance, element: &str, is_table: bool) -> bool {
        let truly = if is_table {
            inst.gold_tables.iter().any(|t| t == element)
        } else {
            inst.gold_columns
                .iter()
                .any(|(t, c)| format!("{t}.{c}") == element)
        };
        let f = self.features(inst, element, is_table, truly);
        self.mlp.predict(&self.scaler.transform(&f))
    }

    /// Classification accuracy on an evaluation split (Table 4): for
    /// each link, one positive (gold) and up to two negative
    /// (confusable) queries, restricted to the requested element kind.
    pub fn accuracy(&self, instances: &[Instance], tables: bool) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for inst in instances {
            for link in &inst.links {
                if link.element.is_table() != tables {
                    continue;
                }
                let gold = link.element.to_string();
                if self.is_relevant(inst, &gold, tables) {
                    correct += 1;
                }
                total += 1;
                for c in link.confusables.iter().take(2) {
                    if c.alt.is_table() != tables {
                        continue;
                    }
                    let alt = c.alt.to_string();
                    let truly = if tables {
                        inst.gold_tables.contains(&c.alt.table)
                    } else {
                        inst.gold_columns
                            .iter()
                            .any(|(t, col)| *t == c.alt.table && Some(col) == c.alt.column.as_ref())
                    };
                    if self.is_relevant(inst, &alt, tables) == truly {
                        correct += 1;
                    }
                    total += 1;
                }
            }
        }
        if total == 0 {
            return 0.0;
        }
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::BenchmarkProfile;

    #[test]
    fn surrogate_accuracy_lands_near_table4() {
        let bench = BenchmarkProfile::bird_like().scaled(0.015).generate(50);
        let surrogate = SurrogateModel::train(&bench, 7);
        let acc_t = surrogate.accuracy(&bench.split.dev, true);
        let acc_c = surrogate.accuracy(&bench.split.dev, false);
        // Paper (BIRD): 92.37 tables / 94.06 columns. Allow ±5pp at this
        // reduced scale.
        assert!((0.86..=0.99).contains(&acc_t), "table accuracy {acc_t}");
        assert!((0.86..=0.99).contains(&acc_c), "column accuracy {acc_c}");
    }

    #[test]
    fn spider_surrogate_beats_bird() {
        // Averaged over both element kinds to tame small-sample noise.
        let bird = BenchmarkProfile::bird_like().scaled(0.03).generate(51);
        let spider = BenchmarkProfile::spider_like().scaled(0.03).generate(51);
        let sb = SurrogateModel::train(&bird, 3);
        let ss = SurrogateModel::train(&spider, 3);
        let acc_bird =
            (sb.accuracy(&bird.split.dev, true) + sb.accuracy(&bird.split.dev, false)) / 2.0;
        let acc_spider =
            (ss.accuracy(&spider.split.dev, true) + ss.accuracy(&spider.split.dev, false)) / 2.0;
        assert!(
            acc_spider > acc_bird - 0.03,
            "spider {acc_spider} should be ≥ bird {acc_bird}"
        );
    }

    #[test]
    fn answers_are_deterministic() {
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(52);
        let surrogate = SurrogateModel::train(&bench, 9);
        let inst = &bench.split.dev[0];
        let t = &inst.gold_tables[0];
        assert_eq!(
            surrogate.is_relevant(inst, t, true),
            surrogate.is_relevant(inst, t, true)
        );
    }

    #[test]
    fn gold_elements_usually_judged_relevant() {
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(53);
        let surrogate = SurrogateModel::train(&bench, 11);
        let mut yes = 0usize;
        let mut total = 0usize;
        for inst in &bench.split.dev {
            for t in &inst.gold_tables {
                yes += surrogate.is_relevant(inst, t, true) as usize;
                total += 1;
            }
        }
        let rate = yes as f64 / total as f64;
        assert!(rate > 0.85, "gold affirmation rate {rate}");
    }
}

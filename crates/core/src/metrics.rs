//! Evaluation metrics, exactly as defined in §4.2 of the paper.
//!
//! Note on TAR/FAR: the paper's prose defines TAR as "abstains … and is
//! not capable of making the correct \[prediction\]" and FAR as "abstains
//! … despite being capable of making a correct one", while the displayed
//! formulas have the conditions swapped (`T_i = T̂_i` under TAR). The
//! prose (and the magnitudes in Tables 5–6) are only consistent with
//! TAR = P(abstain ∧ would-be-wrong) and FAR = P(abstain ∧
//! would-be-right); we implement the prose semantics and record the
//! discrepancy here and in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// Exact-set-match / precision / recall for schema linking (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkingMetrics {
    pub exact_match: f64,
    pub precision: f64,
    pub recall: f64,
    pub n: usize,
}

/// Compute linking metrics over per-instance gold/predicted element
/// sets. Sets are compared as sorted deduplicated string lists.
pub fn linking_metrics(golds: &[Vec<String>], preds: &[Vec<String>]) -> LinkingMetrics {
    assert_eq!(golds.len(), preds.len(), "gold/pred length mismatch");
    assert!(!golds.is_empty(), "empty evaluation set");
    let mut em = 0.0;
    let mut precision = 0.0;
    let mut recall = 0.0;
    for (g, p) in golds.iter().zip(preds) {
        let gs: std::collections::HashSet<&String> = g.iter().collect();
        let ps: std::collections::HashSet<&String> = p.iter().collect();
        // rts-allow(iter-order): only the intersection *count* is
        // used; set cardinality is independent of iteration order.
        let inter = gs.intersection(&ps).count() as f64;
        em += (gs == ps) as usize as f64;
        precision += if ps.is_empty() {
            0.0
        } else {
            inter / ps.len() as f64
        };
        recall += if gs.is_empty() {
            1.0
        } else {
            inter / gs.len() as f64
        };
    }
    let n = golds.len() as f64;
    LinkingMetrics {
        exact_match: em / n,
        precision: precision / n,
        recall: recall / n,
        n: golds.len(),
    }
}

/// Coverage / extra-abstention-rate for branching-point detection
/// (§4.2, "Branching Points").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageMetrics {
    /// Detected branching points / all branching points.
    pub coverage: f64,
    /// Falsely flagged non-branching tokens / all tokens.
    pub ear: f64,
    pub n_tokens: usize,
    pub n_branches: usize,
}

/// Tally coverage/EAR from per-token `(predicted, actual)` flags.
pub fn coverage_metrics(flags: &[(bool, bool)]) -> CoverageMetrics {
    let n_tokens = flags.len();
    let n_branches = flags.iter().filter(|(_, a)| *a).count();
    let detected = flags.iter().filter(|(p, a)| *p && *a).count();
    let false_flags = flags.iter().filter(|(p, a)| *p && !*a).count();
    CoverageMetrics {
        coverage: if n_branches == 0 {
            1.0
        } else {
            detected as f64 / n_branches as f64
        },
        ear: if n_tokens == 0 {
            0.0
        } else {
            false_flags as f64 / n_tokens as f64
        },
        n_tokens,
        n_branches,
    }
}

/// Abstention-aware schema-linking metrics (§4.2, Tables 5–6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbstentionMetrics {
    /// EM among instances where the model did *not* abstain.
    pub exact_match: f64,
    /// P(abstain ∧ prediction would have been wrong).
    pub tar: f64,
    /// P(abstain ∧ prediction would have been right).
    pub far: f64,
    pub n: usize,
    pub n_abstained: usize,
}

/// One instance's outcome for abstention accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbstentionOutcome {
    pub abstained: bool,
    /// Is the final (non-abstained) prediction exactly right?
    pub correct: bool,
    /// Would the unmonitored free-running prediction have been right?
    pub would_be_correct: bool,
}

/// Aggregate abstention outcomes.
pub fn abstention_metrics(outcomes: &[AbstentionOutcome]) -> AbstentionMetrics {
    assert!(!outcomes.is_empty(), "empty evaluation set");
    let n = outcomes.len() as f64;
    let abstained: Vec<_> = outcomes.iter().filter(|o| o.abstained).collect();
    let answered: Vec<_> = outcomes.iter().filter(|o| !o.abstained).collect();
    let em = if answered.is_empty() {
        0.0
    } else {
        answered.iter().filter(|o| o.correct).count() as f64 / answered.len() as f64
    };
    let tar = abstained.iter().filter(|o| !o.would_be_correct).count() as f64 / n;
    let far = abstained.iter().filter(|o| o.would_be_correct).count() as f64 / n;
    AbstentionMetrics {
        exact_match: em,
        tar,
        far,
        n: outcomes.len(),
        n_abstained: abstained.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn linking_metrics_perfect() {
        let gold = vec![s(&["a", "b"]), s(&["c"])];
        let m = linking_metrics(&gold, &gold.clone());
        assert_eq!(m.exact_match, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn linking_metrics_partial() {
        let gold = vec![s(&["a", "b"])];
        let pred = vec![s(&["a", "c"])];
        let m = linking_metrics(&gold, &pred);
        assert_eq!(m.exact_match, 0.0);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn linking_metrics_superset_prediction() {
        // Predicting extra elements keeps recall at 1 but hurts precision
        // and EM.
        let gold = vec![s(&["a"])];
        let pred = vec![s(&["a", "b"])];
        let m = linking_metrics(&gold, &pred);
        assert_eq!(m.exact_match, 0.0);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn linking_metrics_empty_prediction() {
        let gold = vec![s(&["a"])];
        let pred = vec![s(&[])];
        let m = linking_metrics(&gold, &pred);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn coverage_metrics_tally() {
        // (predicted, actual)
        let flags = [
            (true, true),   // detected branch
            (false, true),  // missed branch
            (true, false),  // false flag
            (false, false), // clean
        ];
        let m = coverage_metrics(&flags);
        assert!((m.coverage - 0.5).abs() < 1e-12);
        assert!((m.ear - 0.25).abs() < 1e-12);
        assert_eq!(m.n_branches, 2);
    }

    #[test]
    fn coverage_with_no_branches_is_one() {
        let m = coverage_metrics(&[(false, false), (true, false)]);
        assert_eq!(m.coverage, 1.0);
        assert!((m.ear - 0.5).abs() < 1e-12);
    }

    #[test]
    fn abstention_metrics_semantics() {
        let outcomes = [
            // answered correctly
            AbstentionOutcome {
                abstained: false,
                correct: true,
                would_be_correct: true,
            },
            // answered wrongly
            AbstentionOutcome {
                abstained: false,
                correct: false,
                would_be_correct: false,
            },
            // true abstention (would have been wrong)
            AbstentionOutcome {
                abstained: true,
                correct: false,
                would_be_correct: false,
            },
            // false abstention (would have been right)
            AbstentionOutcome {
                abstained: true,
                correct: false,
                would_be_correct: true,
            },
        ];
        let m = abstention_metrics(&outcomes);
        assert!((m.exact_match - 0.5).abs() < 1e-12);
        assert!((m.tar - 0.25).abs() < 1e-12);
        assert!((m.far - 0.25).abs() < 1e-12);
        assert_eq!(m.n_abstained, 2);
    }

    #[test]
    fn abstention_all_abstained_em_is_zero() {
        let outcomes = [AbstentionOutcome {
            abstained: true,
            correct: false,
            would_be_correct: false,
        }];
        let m = abstention_metrics(&outcomes);
        assert_eq!(m.exact_match, 0.0);
        assert_eq!(m.tar, 1.0);
    }
}

//! The resumable monitored-linking state machine.
//!
//! [`crate::abstention::run_rts_linking`] is interactive by
//! construction — the adaptive-abstention loop pauses on every mBPP
//! flag until a human (or surrogate) answers — yet as a blocking
//! function it can only run as a closed batch job holding a thread
//! hostage for the whole interaction. [`LinkSession`] turns the loop
//! inside out: [`LinkSession::step`] advances generation + monitoring
//! until the run either finishes ([`SessionState::Done`]) or suspends
//! on a branching flag ([`SessionState::NeedsFeedback`]), at which
//! point the session can be parked, shipped elsewhere, and resumed
//! with [`LinkSession::resolve`] once feedback arrives. An online
//! serving engine (`rts-serve`) parks thousands of such sessions
//! without pinning workers; the classic blocking entry points are now
//! thin drivers looping `step()`/`resolve()` against a policy.
//!
//! Bit-identity contract: driving a session with
//! [`resolve_flag`]/[`drive_session`] reproduces the pre-session
//! monolithic loop *exactly* — same flags, same merge-RNG stream, same
//! interventions, same outcomes (the monolith is kept as
//! [`crate::abstention::run_rts_linking_monolithic`] and pinned by the
//! `session_linking_matches_monolithic_loop` parity proptest), so
//! every committed `results/*.json` is unchanged by the refactor.

use crate::abstention::{LinkScratch, MitigationPolicy, Round0, RtsConfig, RtsOutcome};
use crate::bpp::Mbpp;
use crate::context::LinkContext;
use benchgen::schemagen::DbMeta;
use benchgen::Instance;
use serde::{Deserialize, Serialize};
use simlm::{Decision, GenMode, GenerationTrace, LinkTarget, SchemaLinker, Vocab};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How a session holds a model artefact: borrowed from the caller's
/// stack (the batch drivers — zero-cost sharing within one scoped
/// fan-out) or sharing ownership through an [`Arc`] (the serving
/// engine, whose sessions outlive any one stack frame: a parked
/// session may be resumed by a different worker thread long after the
/// submitting scope returned).
///
/// `Handle<'static, T>` is the ownership shape the `Engine` trait
/// runs on: every artefact behind an `Arc`, no scoped borrows.
#[derive(Debug)]
pub enum Handle<'a, T> {
    Borrowed(&'a T),
    Shared(Arc<T>),
}

impl<T> Clone for Handle<'_, T> {
    fn clone(&self) -> Self {
        match self {
            Handle::Borrowed(t) => Handle::Borrowed(t),
            Handle::Shared(t) => Handle::Shared(Arc::clone(t)),
        }
    }
}

impl<T> std::ops::Deref for Handle<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match self {
            Handle::Borrowed(t) => t,
            Handle::Shared(t) => t,
        }
    }
}

impl<'a, T> From<&'a T> for Handle<'a, T> {
    fn from(t: &'a T) -> Self {
        Handle::Borrowed(t)
    }
}

impl<T> From<Arc<T>> for Handle<'static, T> {
    fn from(t: Arc<T>) -> Self {
        Handle::Shared(t)
    }
}

/// How a session holds its [`LinkContext`] (the original use of
/// [`Handle`], kept under its established name).
pub type CtxHandle<'a> = Handle<'a, LinkContext>;

/// A branching flag the session suspended on: everything a feedback
/// provider (human UI, surrogate service, test oracle) needs to act,
/// self-contained and serializable so it can cross a process boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlagQuery {
    /// Instance the session is linking.
    pub instance: u64,
    /// `true` = table linking, `false` = column linking.
    pub is_table: bool,
    /// Zero-based correction round the flag was raised in.
    pub round: usize,
    /// Position of the flagged token in the round's stream.
    pub branch_pos: usize,
    /// Index of the gold element the flagged token belongs to.
    pub element_idx: usize,
    /// The gold element under interaction (§3.3 pins decisions per
    /// gold element).
    pub gold_element: String,
    /// Algorithm 2's implicated candidate elements for the flag.
    pub implicated: Vec<String>,
    /// The round's predicted elements so far (stream order, with
    /// duplicates — the §3.3 protocol skips candidates already linked
    /// elsewhere in the answer).
    pub predicted: Vec<String>,
}

impl FlagQuery {
    /// The link target this flag belongs to.
    pub fn target(&self) -> LinkTarget {
        if self.is_table {
            LinkTarget::Tables
        } else {
            LinkTarget::Columns
        }
    }
}

/// The feedback that resumes a suspended session — the three ways the
/// monolithic loop's policy arms reacted to a flag. Serializable so a
/// remote feedback provider can ship its verdict across the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlagResolution {
    /// Halt and abstain. `consulted` records whether an actual
    /// consultation produced the verdict (the surrogate filter) or the
    /// policy abstained by fiat (abstain-only) — it is what the
    /// intervention count bills.
    Abstain { consulted: bool },
    /// Generation continues unchanged; the flagged element is not
    /// re-consulted (the surrogate's "not irrelevant" answer).
    Continue,
    /// Pin a decision for the flagged gold element and regenerate with
    /// it forced (the human protocol's confirmed/corrected element).
    Pin(Decision),
}

/// The serializable state of a suspended [`LinkSession`] — everything a
/// parked session owns that cannot be rebuilt from its construction
/// arguments, *minus* the current round's trace and vocabulary.
///
/// The trace is the whole point of checkpointing: its synthesized
/// hidden-state stacks dominate a parked session's memory
/// ([`LinkSession::held_bytes`]), yet generation is a pure function of
/// `(instance, overrides, layer set)` — so the checkpoint records the
/// *recipe* (the override map it was generated under) instead of the
/// data, and [`LinkSession::restore`] re-synthesizes a bit-identical
/// round. What must survive verbatim is everything generation does NOT
/// determine: the merge-RNG state (flags already consumed draws from
/// it), the flag/intervention counters, the handled-element set, and
/// the pending query. Pinned end to end by the
/// `checkpoint_roundtrip_matches_monolithic_loop` parity proptest.
///
/// Invariant this leans on: while a session is suspended, the current
/// round's trace is exactly `generate_with_overrides(inst, overrides)`
/// for the *current* override map — `resolve(Pin)` is the only
/// mutation of `overrides`, it clears the suspension, and the next
/// `step` regenerates before it can suspend again.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// Instance id the session links (restore refuses a mismatch).
    pub instance: u64,
    /// `true` = table linking, `false` = column linking.
    pub is_table: bool,
    /// Synthesis corpus the suspended round was generated under.
    /// Restore re-synthesizes the round from the override recipe, so a
    /// checkpoint replayed against a model on the *other* corpus would
    /// silently rebuild different hidden states mid-session; recording
    /// the version makes the mismatch detectable (restore asserts it,
    /// the serving engine degrades on it).
    pub corpus: simlm::CorpusVersion,
    /// Raw merge-RNG state (`SplitMix64` is one `u64` of state).
    pub rng_state: u64,
    /// TAR/FAR counterfactual verdict, if already computed.
    pub would_be_correct: Option<bool>,
    /// Pinned per-element decisions, sorted by element for
    /// deterministic bytes.
    pub overrides: Vec<(String, Decision)>,
    /// Gold-element indices already handled, sorted.
    pub handled: Vec<usize>,
    pub n_interventions: usize,
    pub n_flags: usize,
    pub rounds_done: usize,
    /// Always `false` while suspended (a `Pin` marks the stream stale
    /// but also un-suspends); kept explicit so the invariant is
    /// checked, not assumed, across serialization boundaries.
    pub stale: bool,
    /// Did the session hold a current round? (Always true at a
    /// suspension; restore re-synthesizes it.)
    pub has_round: bool,
    /// The flag the session is suspended on.
    pub pending: Option<FlagQuery>,
}

impl SessionCheckpoint {
    /// Does this checkpoint belong to `(inst, target)`?
    /// [`LinkSession::restore`] asserts exactly this; an engine
    /// restoring possibly-corrupt decoded bytes checks it first so a
    /// mismatch can degrade to abstention instead of panicking a
    /// worker.
    pub fn matches(&self, inst: &Instance, target: LinkTarget) -> bool {
        self.instance == inst.id && self.is_table == (target == LinkTarget::Tables)
    }
}

/// What [`LinkSession::step`] returns.
#[derive(Debug, Clone)]
pub enum SessionState {
    /// Linking is suspended on a branching flag; park the session and
    /// call [`LinkSession::resolve`] when feedback arrives.
    NeedsFeedback(FlagQuery),
    /// The run finished; the session stays in this state forever.
    Done(RtsOutcome),
}

/// The flag a session is currently suspended on (the query carries
/// everything `resolve` needs: the element index and gold element).
#[derive(Debug, Clone)]
struct PendingFlag {
    query: FlagQuery,
}

/// The round state: round 0 may be borrowed from the caller
/// ([`Round0`]); regenerated rounds are owned by the session (a parked
/// session must not borrow its own history).
#[derive(Debug)]
enum SessionRound<'a> {
    Borrowed(Round0<'a>),
    Owned(GenerationTrace, Vocab),
}

impl SessionRound<'_> {
    fn trace(&self) -> &GenerationTrace {
        match self {
            SessionRound::Borrowed(r) => r.trace,
            SessionRound::Owned(t, _) => t,
        }
    }

    fn vocab(&self) -> &Vocab {
        match self {
            SessionRound::Borrowed(r) => r.vocab,
            SessionRound::Owned(_, v) => v,
        }
    }
}

/// One monitored linking run as an explicit resumable state machine.
///
/// Construction mirrors the entry points of
/// [`crate::abstention::run_rts_linking`]: a context-backed session
/// (optionally consuming a pre-generated [`Round0`]) or — when
/// `config.reference_linking` is set — the pre-context reference path,
/// which ignores any provided context exactly like the monolith does.
///
/// The session owns everything the loop accumulated (current round's
/// trace + vocabulary, overrides, handled set, merge RNG, flag/
/// intervention counters); scratch buffers stay caller-owned and are
/// passed into [`LinkSession::step`], so a parked session holds only
/// state, not scratch.
#[derive(Debug)]
pub struct LinkSession<'a> {
    model: Handle<'a, SchemaLinker>,
    mbpp: Handle<'a, Mbpp>,
    inst: Handle<'a, Instance>,
    meta: Handle<'a, DbMeta>,
    target: LinkTarget,
    ctx: Option<CtxHandle<'a>>,
    config: RtsConfig,
    gold: Vec<String>,
    gold_set: Vec<String>,
    rng: tinynn::rng::SplitMix64,
    monitor_layers: simlm::LayerSet,
    max_rounds: usize,
    would_be_correct: Option<bool>,
    overrides: HashMap<String, Decision>,
    handled: HashSet<usize>,
    n_interventions: usize,
    n_flags: usize,
    cur: Option<SessionRound<'a>>,
    stale: bool,
    rounds_done: usize,
    pending: Option<PendingFlag>,
    finished: Option<RtsOutcome>,
}

impl<'a> LinkSession<'a> {
    /// Open a session. `ctx` is ignored when `config.reference_linking`
    /// is set (the reference path must pay the clone-per-flag trie
    /// rebuild even if a caller handed a context alongside the knob —
    /// same rule as the blocking runtime). `round0` follows the
    /// [`Round0`] contract.
    #[allow(clippy::too_many_arguments)] // mirrors the blocking entry points
    pub fn new(
        model: &'a SchemaLinker,
        mbpp: &'a Mbpp,
        inst: &'a Instance,
        meta: &'a DbMeta,
        target: LinkTarget,
        ctx: Option<CtxHandle<'a>>,
        round0: Option<Round0<'a>>,
        config: &RtsConfig,
    ) -> Self {
        Self::new_in(
            Handle::Borrowed(model),
            Handle::Borrowed(mbpp),
            Handle::Borrowed(inst),
            Handle::Borrowed(meta),
            target,
            ctx,
            round0,
            config,
        )
    }

    /// [`LinkSession::new`] over explicit artefact [`Handle`]s — the
    /// constructor the serving engine uses with `Handle::Shared` so the
    /// resulting session is `LinkSession<'static>` and can be parked
    /// past any submitting scope.
    #[allow(clippy::too_many_arguments)] // mirrors LinkSession::new
    pub fn new_in(
        model: Handle<'a, SchemaLinker>,
        mbpp: Handle<'a, Mbpp>,
        inst: Handle<'a, Instance>,
        meta: Handle<'a, DbMeta>,
        target: LinkTarget,
        ctx: Option<CtxHandle<'a>>,
        round0: Option<Round0<'a>>,
        config: &RtsConfig,
    ) -> Self {
        let ctx = if config.reference_linking { None } else { ctx };
        debug_assert_eq!(
            config.corpus,
            model.corpus(),
            "RtsConfig::corpus disagrees with the model's synthesis corpus — \
             the run would record one version and generate the other"
        );
        let gold = SchemaLinker::gold_elements(&inst, target);
        let gold_set = {
            let mut g = gold.clone();
            g.sort();
            g
        };
        let rng = crate::par::instance_rng(config.seed, inst.id);
        let monitor_layers = if config.eager_synthesis {
            simlm::LayerSet::all()
        } else {
            mbpp.layer_set()
        };
        let max_rounds = if config.max_rounds == 0 {
            gold.len() + 2
        } else {
            config.max_rounds
        };
        Self {
            model,
            mbpp,
            inst,
            meta,
            target,
            ctx,
            config: config.clone(),
            gold,
            gold_set,
            rng,
            monitor_layers,
            max_rounds,
            would_be_correct: None,
            overrides: HashMap::new(),
            handled: HashSet::new(),
            n_interventions: 0,
            n_flags: 0,
            cur: round0.map(SessionRound::Borrowed),
            stale: false,
            rounds_done: 0,
            pending: None,
            finished: None,
        }
    }

    /// The instance this session is linking.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// The link target this session resolves.
    pub fn target(&self) -> LinkTarget {
        self.target
    }

    /// Has the run finished?
    pub fn is_done(&self) -> bool {
        self.finished.is_some()
    }

    /// The flag the session is currently suspended on, if any.
    pub fn pending_query(&self) -> Option<&FlagQuery> {
        self.pending.as_ref().map(|p| &p.query)
    }

    /// Bytes of generation state the session holds while parked —
    /// dominated by the current round's synthesized hidden-state
    /// stacks. What a serving engine bills a suspended request for.
    pub fn held_bytes(&self) -> usize {
        self.cur
            .as_ref()
            .map(|r| {
                let t = r.trace();
                t.hidden_bytes() + std::mem::size_of_val(t.tokens.as_slice())
            })
            .unwrap_or(0)
    }

    /// Snapshot a *suspended* session into its serializable state (see
    /// [`SessionCheckpoint`] for what is stored vs re-synthesized).
    /// Panics when the session is not suspended: running and finished
    /// sessions have a worker or nobody attached — only a parked one is
    /// worth shipping out of memory.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        assert!(
            self.pending.is_some(),
            "only a suspended session can checkpoint"
        );
        let mut overrides: Vec<(String, Decision)> = self
            .overrides
            // rts-allow(iter-order): sorted right after collecting, so
            // the encoded checkpoint is order-stable.
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        overrides.sort_by(|a, b| a.0.cmp(&b.0));
        // rts-allow(iter-order): sorted right after collecting.
        let mut handled: Vec<usize> = self.handled.iter().copied().collect();
        handled.sort_unstable();
        SessionCheckpoint {
            instance: self.inst.id,
            is_table: self.target == LinkTarget::Tables,
            corpus: self.model.corpus(),
            rng_state: self.rng.state(),
            would_be_correct: self.would_be_correct,
            overrides,
            handled,
            n_interventions: self.n_interventions,
            n_flags: self.n_flags,
            rounds_done: self.rounds_done,
            stale: self.stale,
            has_round: self.cur.is_some(),
            pending: self.pending.as_ref().map(|p| p.query.clone()),
        }
    }

    /// Rebuild a suspended session from a [`SessionCheckpoint`]: the
    /// construction arguments come back from the caller (the serving
    /// engine keeps them per ticket), the recorded state is restored
    /// verbatim, and the current round — evicted at checkpoint time —
    /// is re-synthesized from the restored override map. Bit-identical
    /// to a session that was never checkpointed: same pending query,
    /// same `held_bytes`, same flags/RNG/outcomes downstream (pinned by
    /// the checkpoint-roundtrip parity proptest).
    ///
    /// Panics when the checkpoint does not belong to `(inst, target)`.
    #[allow(clippy::too_many_arguments)] // mirrors LinkSession::new
    pub fn restore(
        model: &'a SchemaLinker,
        mbpp: &'a Mbpp,
        inst: &'a Instance,
        meta: &'a DbMeta,
        target: LinkTarget,
        ctx: Option<CtxHandle<'a>>,
        config: &RtsConfig,
        cp: &SessionCheckpoint,
        synth: &mut simlm::SynthScratch,
    ) -> Self {
        Self::restore_in(
            Handle::Borrowed(model),
            Handle::Borrowed(mbpp),
            Handle::Borrowed(inst),
            Handle::Borrowed(meta),
            target,
            ctx,
            config,
            cp,
            synth,
        )
    }

    /// [`LinkSession::restore`] over explicit artefact [`Handle`]s —
    /// the serving engine's restore path (`Handle::Shared`, so the
    /// restored session is `'static`).
    #[allow(clippy::too_many_arguments)] // mirrors LinkSession::restore
    pub fn restore_in(
        model: Handle<'a, SchemaLinker>,
        mbpp: Handle<'a, Mbpp>,
        inst: Handle<'a, Instance>,
        meta: Handle<'a, DbMeta>,
        target: LinkTarget,
        ctx: Option<CtxHandle<'a>>,
        config: &RtsConfig,
        cp: &SessionCheckpoint,
        synth: &mut simlm::SynthScratch,
    ) -> Self {
        assert_eq!(
            cp.instance, inst.id,
            "checkpoint belongs to another instance"
        );
        assert_eq!(
            cp.is_table,
            target == LinkTarget::Tables,
            "checkpoint belongs to the other link target"
        );
        assert_eq!(
            cp.corpus,
            model.corpus(),
            "checkpoint was taken under the other synthesis corpus"
        );
        let mut session = Self::new_in(model, mbpp, inst, meta, target, ctx, None, config);
        session.rng = tinynn::rng::SplitMix64::new(cp.rng_state);
        session.would_be_correct = cp.would_be_correct;
        // rts-allow(iter-order): `cp.overrides` is the checkpoint's
        // sorted Vec (a field-name collision with the session's map);
        // collecting into a map is insertion-order independent anyway.
        session.overrides = cp.overrides.iter().cloned().collect();
        // rts-allow(iter-order): `cp.handled` is the checkpoint's
        // sorted Vec, same name collision as above.
        session.handled = cp.handled.iter().copied().collect();
        session.n_interventions = cp.n_interventions;
        session.n_flags = cp.n_flags;
        session.rounds_done = cp.rounds_done;
        session.stale = cp.stale;
        if cp.has_round {
            // Re-synthesize the evicted round: generation is
            // deterministic in (instance, overrides, layer set), so the
            // trace and vocabulary come back bit-identical.
            let mut vocab = Vocab::new();
            let trace = session.model.generate_with_overrides_and_layers(
                &session.inst,
                &mut vocab,
                target,
                GenMode::Free,
                &session.overrides,
                &session.monitor_layers,
                synth,
            );
            session.cur = Some(SessionRound::Owned(trace, vocab));
        }
        session.pending = cp.pending.clone().map(|query| PendingFlag { query });
        session
    }

    fn abstained_outcome(&self) -> RtsOutcome {
        RtsOutcome {
            abstained: true,
            predicted: Vec::new(),
            correct: false,
            would_be_correct: self.would_be_correct.unwrap_or(false),
            n_interventions: self.n_interventions,
            n_flags: self.n_flags,
        }
    }

    fn finish(&mut self, outcome: RtsOutcome) -> SessionState {
        // A finished session is pure result: release the round state
        // (trace + hidden stacks) eagerly instead of holding it until
        // the session object drops — a serving engine may keep finished
        // tickets around until clients collect them.
        self.cur = None;
        self.finished = Some(outcome.clone());
        SessionState::Done(outcome)
    }

    /// Advance the run: generate/monitor rounds until the next
    /// branching flag that needs feedback, or completion. Idempotent
    /// while suspended (re-polling returns the same query) and after
    /// completion (returns the same outcome).
    ///
    /// Every generation/monitoring call and its ordering mirrors the
    /// monolithic loop exactly; see the module docs for the parity
    /// contract.
    pub fn step(&mut self, scratch: &mut LinkScratch) -> SessionState {
        if let Some(outcome) = &self.finished {
            return SessionState::Done(outcome.clone());
        }
        if let Some(pending) = &self.pending {
            return SessionState::NeedsFeedback(pending.query.clone());
        }
        // Reference path: TAR/FAR accounting generates the unmonitored
        // counterfactual explicitly, before round 0 (the context path
        // derives it from round 0's stream below instead).
        if self.config.reference_linking && self.would_be_correct.is_none() {
            let baseline_layers = if self.config.eager_synthesis {
                simlm::LayerSet::all()
            } else {
                simlm::LayerSet::none()
            };
            let mut vocab = Vocab::new();
            let baseline = self.model.generate_with_layers(
                &self.inst,
                &mut vocab,
                self.target,
                GenMode::Free,
                &baseline_layers,
                &mut scratch.synth,
            );
            self.would_be_correct = Some(baseline.predicted_set() == self.gold_set);
        }
        // One monitor cycle per step: every cycle either completes the
        // run or suspends on a flag (the monolith's loop continued here
        // only after its inline policy handling — which now lives in
        // `resolve`, between steps).
        if self.rounds_done >= self.max_rounds {
            // Round cap exceeded: give up and abstain (defensive;
            // unreachable in practice because every round handles
            // one element).
            let outcome = self.abstained_outcome();
            return self.finish(outcome);
        }
        self.rounds_done += 1;
        let regenerate = match &self.cur {
            None => true,
            Some(_) => self.stale || self.config.reference_linking,
        };
        let round = if regenerate {
            // Free the superseded round before synthesizing its
            // replacement; otherwise both traces are live at once.
            self.cur = None;
            let mut vocab = Vocab::new();
            let trace = self.model.generate_with_overrides_and_layers(
                &self.inst,
                &mut vocab,
                self.target,
                GenMode::Free,
                &self.overrides,
                &self.monitor_layers,
                &mut scratch.synth,
            );
            self.stale = false;
            SessionRound::Owned(trace, vocab)
        } else {
            self.cur.take().expect("round state populated")
        };
        let trace = round.trace();
        if self.would_be_correct.is_none() {
            // Round 0, no overrides: this stream is the counterfactual.
            self.would_be_correct = Some(trace.predicted_set() == self.gold_set);
        }
        let flags = if self.config.per_token_monitoring {
            self.mbpp.flag_trace_per_token(trace, &mut self.rng)
        } else {
            self.mbpp
                .flag_trace_with_scratch(trace, &mut self.rng, &mut scratch.bpp)
        };

        // First actionable flag: one raised on a not-yet-handled
        // element.
        let mut actionable: Option<(usize, usize)> = None; // (position, element_idx)
        for (pos, &flagged) in flags.iter().enumerate() {
            if !flagged {
                continue;
            }
            self.n_flags += 1;
            if actionable.is_none() {
                if let Some(ei) = trace.steps[pos].element_idx {
                    if !self.handled.contains(&ei) {
                        actionable = Some((pos, ei));
                    }
                }
            }
        }

        let Some((branch_pos, element_idx)) = actionable else {
            // Clean run (or only spurious separator flags): accept.
            let predicted = trace.predicted_set();
            let correct = predicted == self.gold_set;
            let outcome = RtsOutcome {
                abstained: false,
                predicted,
                correct,
                would_be_correct: self.would_be_correct.unwrap_or(false),
                n_interventions: self.n_interventions,
                n_flags: self.n_flags,
            };
            drop(round); // accepted: the stream's job is done
            return self.finish(outcome);
        };

        // Suspend: trace the flag back (Algorithm 2) and hand the
        // self-contained query to whoever provides feedback. The
        // monolith computed the implicated set inside the policy
        // arms; hoisting it here is outcome-neutral (it is a pure
        // function of the stream and consumes no RNG).
        let implicated = crate::abstention::implicated(
            self.ctx.as_deref(),
            round.vocab(),
            &self.meta,
            self.target,
            &trace.tokens,
            branch_pos,
        );
        let query = FlagQuery {
            instance: self.inst.id,
            is_table: self.target == LinkTarget::Tables,
            round: self.rounds_done - 1,
            branch_pos,
            element_idx,
            gold_element: self.gold[element_idx].clone(),
            implicated,
            predicted: trace.predicted.clone(),
        };
        self.cur = Some(round);
        self.pending = Some(PendingFlag {
            query: query.clone(),
        });
        SessionState::NeedsFeedback(query)
    }

    /// Apply feedback to the suspended flag and un-suspend. The next
    /// [`LinkSession::step`] continues the run (or reports the
    /// abstention this resolution decided).
    ///
    /// Panics if the session is not suspended — resolving a session
    /// that never asked is a protocol error, not a recoverable state.
    pub fn resolve(&mut self, resolution: FlagResolution) {
        let pending = self
            .pending
            .take()
            .expect("resolve called with no pending flag");
        match resolution {
            FlagResolution::Abstain { consulted } => {
                if consulted {
                    self.n_interventions += 1;
                }
                self.finished = Some(self.abstained_outcome());
                // The run is over; the parked round will never be read.
                self.cur = None;
            }
            FlagResolution::Continue => {
                // Generation continues unchanged; don't re-consult for
                // the same element. The stream is not stale — the next
                // round reuses it.
                self.n_interventions += 1;
                self.handled.insert(pending.query.element_idx);
            }
            FlagResolution::Pin(decision) => {
                self.n_interventions += 1;
                self.handled.insert(pending.query.element_idx);
                self.overrides.insert(pending.query.gold_element, decision);
                // The pinned decision changes the stream: regenerate.
                // The now-stale round is dead weight — free its hidden
                // stacks here rather than carrying them to the next
                // `step` (a resolved-but-not-yet-scheduled serving
                // ticket would otherwise park megabytes for nothing).
                self.stale = true;
                self.cur = None;
            }
        }
    }
}

/// Answer a [`FlagQuery`] the way the monolithic loop's policy arms
/// did — the policy side of the session split. Pure: consults only the
/// policy's own (deterministic) models, never the session.
pub fn resolve_flag(
    policy: &MitigationPolicy<'_>,
    inst: &Instance,
    query: &FlagQuery,
) -> FlagResolution {
    match policy {
        MitigationPolicy::AbstainOnly => FlagResolution::Abstain { consulted: false },
        MitigationPolicy::Surrogate(surrogate) => {
            // §3.3: halt only if the surrogate explicitly confirms
            // irrelevance of the implicated elements.
            let all_irrelevant = !query.implicated.is_empty()
                && query
                    .implicated
                    .iter()
                    .all(|e| !surrogate.is_relevant(inst, e, query.is_table));
            if all_irrelevant {
                FlagResolution::Abstain { consulted: true }
            } else {
                FlagResolution::Continue
            }
        }
        MitigationPolicy::Human(oracle) => {
            let gold_set = {
                let mut g = SchemaLinker::gold_elements(inst, query.target());
                g.sort();
                g
            };
            let gold_element = &query.gold_element;
            // Confirm candidates in turn (§3.3): an affirmed candidate
            // is pinned and generation proceeds with it. A candidate
            // already linked elsewhere in the answer cannot fill this
            // slot (affirming it would just duplicate the element), so
            // it is skipped and the interaction falls through to the
            // "name the correct element" request.
            let mut resolved: Option<String> = None;
            for cand in &query.implicated {
                let already_linked = cand != gold_element && query.predicted.contains(cand);
                if already_linked {
                    continue;
                }
                let truly = gold_set.binary_search(cand).is_ok();
                if oracle.judge_relevance(inst, cand, query.is_table, truly) {
                    resolved = Some(cand.clone());
                    break;
                }
            }
            // All rejected: the user names the correct element.
            let chosen = resolved.unwrap_or_else(|| {
                let distractors: Vec<String> = inst
                    .links
                    .iter()
                    .filter(|l| l.element.to_string() == *gold_element)
                    .flat_map(|l| l.confusables.iter())
                    .filter(|c| c.alt.is_table() == query.is_table)
                    .map(|c| c.alt.to_string())
                    .collect();
                oracle.provide_element(inst, gold_element, &distractors, query.is_table)
            });
            if &chosen == gold_element {
                FlagResolution::Pin(Decision::Correct)
            } else {
                FlagResolution::Pin(Decision::Substitute(chosen))
            }
        }
    }
}

/// Drive a session to completion against a policy — the blocking shape
/// every classic entry point reduces to.
pub fn drive_session(
    session: &mut LinkSession<'_>,
    policy: &MitigationPolicy<'_>,
    scratch: &mut LinkScratch,
) -> RtsOutcome {
    loop {
        match session.step(scratch) {
            SessionState::Done(outcome) => return outcome,
            SessionState::NeedsFeedback(query) => {
                let resolution = resolve_flag(policy, session.instance(), &query);
                session.resolve(resolution);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstention::run_rts_linking_monolithic;
    use crate::bpp::{MbppConfig, ProbeConfig};
    use crate::branching::BranchDataset;
    use crate::context::LinkContexts;
    use crate::human::{Expertise, HumanOracle};
    use crate::surrogate::SurrogateModel;
    use benchgen::{Benchmark, BenchmarkProfile};

    struct Fx {
        bench: Benchmark,
        model: SchemaLinker,
        mbpp: Mbpp,
        contexts: LinkContexts,
    }

    fn fixture() -> Fx {
        let bench = BenchmarkProfile::bird_like().scaled(0.04).generate(64);
        let model = SchemaLinker::new("bird", 13);
        let ds = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 350);
        let mbpp = Mbpp::train(
            &ds,
            &MbppConfig {
                probe: ProbeConfig {
                    epochs: 6,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let contexts = LinkContexts::build(&bench);
        Fx {
            bench,
            model,
            mbpp,
            contexts,
        }
    }

    #[test]
    fn driven_session_matches_monolithic_loop_for_all_policies() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 5);
        let surrogate = SurrogateModel::train(&fx.bench, 3);
        let config = RtsConfig::default();
        let mut scratch = LinkScratch::default();
        for policy in [
            MitigationPolicy::AbstainOnly,
            MitigationPolicy::Surrogate(&surrogate),
            MitigationPolicy::Human(&oracle),
        ] {
            for inst in fx.bench.split.dev.iter().take(50) {
                let meta = fx.bench.meta(&inst.db_name).unwrap();
                let ctx = fx.contexts.get(&inst.db_name, LinkTarget::Tables);
                let mut session = LinkSession::new(
                    &fx.model,
                    &fx.mbpp,
                    inst,
                    meta,
                    LinkTarget::Tables,
                    Some(CtxHandle::Borrowed(ctx)),
                    None,
                    &config,
                );
                let stepped = drive_session(&mut session, &policy, &mut scratch);
                let monolithic = run_rts_linking_monolithic(
                    &fx.model,
                    &fx.mbpp,
                    inst,
                    meta,
                    LinkTarget::Tables,
                    Some(ctx),
                    None,
                    &policy,
                    &config,
                    &mut scratch,
                );
                assert_eq!(
                    format!("{stepped:?}"),
                    format!("{monolithic:?}"),
                    "inst {}",
                    inst.id
                );
            }
        }
    }

    #[test]
    fn step_is_idempotent_while_suspended_and_after_done() {
        let fx = fixture();
        let config = RtsConfig::default();
        let mut scratch = LinkScratch::default();
        let oracle = HumanOracle::new(Expertise::Expert, 5);
        let policy = MitigationPolicy::Human(&oracle);
        let mut exercised_suspend = false;
        for inst in fx.bench.split.dev.iter().take(60) {
            let meta = fx.bench.meta(&inst.db_name).unwrap();
            let ctx = fx.contexts.get(&inst.db_name, LinkTarget::Tables);
            let mut session = LinkSession::new(
                &fx.model,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                Some(CtxHandle::Borrowed(ctx)),
                None,
                &config,
            );
            loop {
                match session.step(&mut scratch) {
                    SessionState::Done(a) => {
                        let SessionState::Done(b) = session.step(&mut scratch) else {
                            panic!("done session stepped back to life");
                        };
                        assert_eq!(format!("{a:?}"), format!("{b:?}"));
                        break;
                    }
                    SessionState::NeedsFeedback(q) => {
                        exercised_suspend = true;
                        // A suspended session holds its round state.
                        assert!(session.held_bytes() > 0);
                        assert_eq!(session.pending_query(), Some(&q));
                        let SessionState::NeedsFeedback(q2) = session.step(&mut scratch) else {
                            panic!("suspended session advanced without feedback");
                        };
                        assert_eq!(q, q2, "re-poll must return the same query");
                        let r = resolve_flag(&policy, inst, &q);
                        session.resolve(r);
                    }
                }
            }
        }
        assert!(exercised_suspend, "no session ever suspended");
    }

    #[test]
    fn checkpoint_roundtrip_restores_bit_identical_sessions() {
        let fx = fixture();
        let config = RtsConfig::default();
        let mut scratch = LinkScratch::default();
        let oracle = HumanOracle::new(Expertise::Expert, 5);
        let policy = MitigationPolicy::Human(&oracle);
        let mut exercised = 0usize;
        for inst in fx.bench.split.dev.iter().take(60) {
            let meta = fx.bench.meta(&inst.db_name).unwrap();
            let ctx = fx.contexts.get(&inst.db_name, LinkTarget::Tables);
            // Reference drive: never checkpointed.
            let mut plain = LinkSession::new(
                &fx.model,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                Some(CtxHandle::Borrowed(ctx)),
                None,
                &config,
            );
            let expected = drive_session(&mut plain, &policy, &mut scratch);
            // Checkpointing drive: serialize + drop + restore at every
            // suspension.
            let mut session = LinkSession::new(
                &fx.model,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                Some(CtxHandle::Borrowed(ctx)),
                None,
                &config,
            );
            let outcome = loop {
                match session.step(&mut scratch) {
                    SessionState::Done(o) => break o,
                    SessionState::NeedsFeedback(q) => {
                        exercised += 1;
                        let held_before = session.held_bytes();
                        let cp = session.checkpoint();
                        let json = serde_json::to_string(&cp).expect("checkpoint serializes");
                        let back: SessionCheckpoint =
                            serde_json::from_str(&json).expect("checkpoint parses");
                        assert_eq!(cp, back, "checkpoint must survive the serde shim");
                        // Drop the live session (hidden stacks freed)…
                        session = LinkSession::restore(
                            &fx.model,
                            &fx.mbpp,
                            inst,
                            meta,
                            LinkTarget::Tables,
                            Some(CtxHandle::Borrowed(ctx)),
                            &config,
                            &back,
                            &mut scratch.synth,
                        );
                        // …and the restored one is indistinguishable.
                        assert_eq!(session.pending_query(), Some(&q));
                        assert_eq!(session.held_bytes(), held_before);
                        session.resolve(resolve_flag(&policy, inst, &q));
                    }
                }
            };
            assert_eq!(
                format!("{outcome:?}"),
                format!("{expected:?}"),
                "checkpointed drive diverged on instance {}",
                inst.id
            );
        }
        assert!(exercised > 0, "no session ever suspended at this scale");
    }

    #[test]
    #[should_panic(expected = "only a suspended session")]
    fn checkpoint_of_unsuspended_session_panics() {
        let fx = fixture();
        let inst = &fx.bench.split.dev[0];
        let meta = fx.bench.meta(&inst.db_name).unwrap();
        let session = LinkSession::new(
            &fx.model,
            &fx.mbpp,
            inst,
            meta,
            LinkTarget::Tables,
            None,
            None,
            &RtsConfig::default(),
        );
        let _ = session.checkpoint();
    }

    #[test]
    fn finished_sessions_release_their_round_state() {
        let fx = fixture();
        let config = RtsConfig::default();
        let mut scratch = LinkScratch::default();
        let oracle = HumanOracle::new(Expertise::Expert, 5);
        let policy = MitigationPolicy::Human(&oracle);
        for inst in fx.bench.split.dev.iter().take(20) {
            let meta = fx.bench.meta(&inst.db_name).unwrap();
            let ctx = fx.contexts.get(&inst.db_name, LinkTarget::Tables);
            let mut session = LinkSession::new(
                &fx.model,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                Some(CtxHandle::Borrowed(ctx)),
                None,
                &config,
            );
            drive_session(&mut session, &policy, &mut scratch);
            assert_eq!(
                session.held_bytes(),
                0,
                "a done session must not park trace memory (instance {})",
                inst.id
            );
        }
    }

    #[test]
    fn abstain_resolution_bills_only_consultations() {
        let fx = fixture();
        let config = RtsConfig::default();
        let mut scratch = LinkScratch::default();
        // Find a flagged instance and abstain both ways.
        for inst in fx.bench.split.dev.iter().take(60) {
            let meta = fx.bench.meta(&inst.db_name).unwrap();
            let ctx = fx.contexts.get(&inst.db_name, LinkTarget::Tables);
            let mk = || {
                LinkSession::new(
                    &fx.model,
                    &fx.mbpp,
                    inst,
                    meta,
                    LinkTarget::Tables,
                    Some(CtxHandle::Borrowed(ctx)),
                    None,
                    &config,
                )
            };
            let mut silent = mk();
            if let SessionState::NeedsFeedback(_) = silent.step(&mut scratch) {
                silent.resolve(FlagResolution::Abstain { consulted: false });
                let SessionState::Done(o) = silent.step(&mut scratch) else {
                    panic!("abstain must finish the session");
                };
                assert!(o.abstained);
                assert_eq!(o.n_interventions, 0);

                let mut consulted = mk();
                let _ = consulted.step(&mut scratch);
                consulted.resolve(FlagResolution::Abstain { consulted: true });
                let SessionState::Done(o) = consulted.step(&mut scratch) else {
                    panic!("abstain must finish the session");
                };
                assert_eq!(o.n_interventions, 1);
                return;
            }
        }
        panic!("no instance flagged at this scale");
    }
}

//! Human-in-the-loop oracles.
//!
//! §3.3's interaction protocol asks a user two kinds of questions:
//! *"is table/column X relevant to this question?"* (confirmation) and
//! *"which element did you mean?"* (correction). §4.3's user study
//! measures how accurately people answer by expertise and question
//! difficulty (Table 9). The oracle here reproduces those answer
//! distributions; everything downstream of the answers (trace-back,
//! overrides, regeneration) is the real algorithm.

use benchgen::{Difficulty, Instance};
use serde::{Deserialize, Serialize};
use tinynn::rng::{stable_hash, SplitMix64};

/// Participant expertise (§4.3: beginners had no SQL experience).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expertise {
    Beginner,
    Expert,
}

/// A simulated study participant.
#[derive(Debug, Clone, Copy)]
pub struct HumanOracle {
    pub expertise: Expertise,
    pub seed: u64,
}

impl HumanOracle {
    pub fn new(expertise: Expertise, seed: u64) -> Self {
        Self { expertise, seed }
    }

    /// Probability of answering a *table* relevance question correctly
    /// (Table 9 operating points).
    pub fn table_accuracy(&self, difficulty: Difficulty) -> f64 {
        match (self.expertise, difficulty) {
            (Expertise::Beginner, Difficulty::Simple) => 1.00,
            (Expertise::Beginner, Difficulty::Moderate) => 0.96,
            (Expertise::Beginner, Difficulty::Challenging) => 0.93,
            (Expertise::Expert, Difficulty::Simple) => 1.00,
            (Expertise::Expert, Difficulty::Moderate) => 1.00,
            (Expertise::Expert, Difficulty::Challenging) => 0.99,
        }
    }

    /// Probability for *column* questions (columns are harder: schemas
    /// are wide and abbreviations opaque — the `T-BIL` discussion).
    pub fn column_accuracy(&self, difficulty: Difficulty) -> f64 {
        match (self.expertise, difficulty) {
            (Expertise::Beginner, Difficulty::Simple) => 1.00,
            (Expertise::Beginner, Difficulty::Moderate) => 0.92,
            (Expertise::Beginner, Difficulty::Challenging) => 0.89,
            (Expertise::Expert, Difficulty::Simple) => 1.00,
            (Expertise::Expert, Difficulty::Moderate) => 0.97,
            (Expertise::Expert, Difficulty::Challenging) => 0.94,
        }
    }

    fn rng_for(&self, inst: &Instance, element: &str, salt: u64) -> SplitMix64 {
        SplitMix64::new(
            self.seed
                ^ stable_hash(element.as_bytes()).rotate_left(11)
                ^ inst.id.wrapping_mul(0xD134_2543_DE82_EF95)
                ^ salt.wrapping_mul(0x9E6D),
        )
    }

    /// Answer "is `element` relevant to this question?". The true answer
    /// is supplied by the caller; the oracle corrupts it at the Table 9
    /// error rate. Deterministic per (participant, instance, element).
    pub fn judge_relevance(
        &self,
        inst: &Instance,
        element: &str,
        is_table: bool,
        truly_relevant: bool,
    ) -> bool {
        let acc = if is_table {
            self.table_accuracy(inst.difficulty)
        } else {
            self.column_accuracy(inst.difficulty)
        };
        let mut rng = self.rng_for(inst, element, 1);
        if rng.next_bool(acc) {
            truly_relevant
        } else {
            !truly_relevant
        }
    }

    /// Asked for the *correct* element after rejecting every candidate.
    /// Returns the gold element at the expertise accuracy; a wrong
    /// answer picks one of the distractors instead (or sticks with gold
    /// when there are none — you cannot name a wrong table that does
    /// not exist).
    pub fn provide_element(
        &self,
        inst: &Instance,
        gold_element: &str,
        distractors: &[String],
        is_table: bool,
    ) -> String {
        let acc = if is_table {
            self.table_accuracy(inst.difficulty)
        } else {
            self.column_accuracy(inst.difficulty)
        };
        let mut rng = self.rng_for(inst, gold_element, 2);
        if rng.next_bool(acc) || distractors.is_empty() {
            gold_element.to_string()
        } else {
            distractors[rng.next_below(distractors.len())].clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::BenchmarkProfile;

    fn any_instance() -> Instance {
        BenchmarkProfile::bird_like()
            .scaled(0.005)
            .generate(3)
            .split
            .dev[0]
            .clone()
    }

    #[test]
    fn experts_dominate_beginners() {
        let b = HumanOracle::new(Expertise::Beginner, 1);
        let e = HumanOracle::new(Expertise::Expert, 1);
        for d in Difficulty::ALL {
            assert!(e.table_accuracy(d) >= b.table_accuracy(d));
            assert!(e.column_accuracy(d) >= b.column_accuracy(d));
        }
    }

    #[test]
    fn accuracy_decreases_with_difficulty() {
        let b = HumanOracle::new(Expertise::Beginner, 1);
        assert!(b.column_accuracy(Difficulty::Simple) > b.column_accuracy(Difficulty::Challenging));
        assert!(b.table_accuracy(Difficulty::Simple) > b.table_accuracy(Difficulty::Challenging));
    }

    #[test]
    fn answers_are_deterministic() {
        let inst = any_instance();
        let o = HumanOracle::new(Expertise::Beginner, 9);
        let a = o.judge_relevance(&inst, "races", true, true);
        let b = o.judge_relevance(&inst, "races", true, true);
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_answer_accuracy_matches_rate() {
        // Over many (instance, element) pairs the beginner's column
        // accuracy at Challenging must track 0.89.
        let bench = BenchmarkProfile::bird_like().scaled(0.06).generate(5);
        let oracle = HumanOracle::new(Expertise::Beginner, 42);
        let mut correct = 0usize;
        let mut total = 0usize;
        let probes = bench.split.dev.iter().chain(bench.split.train.iter());
        for inst in probes.filter(|i| i.difficulty == Difficulty::Challenging) {
            for (j, (t, c)) in inst.gold_columns.iter().enumerate() {
                let element = format!("{t}.{c}");
                let truth = j % 2 == 0; // arbitrary mix of true/false questions
                if oracle.judge_relevance(inst, &element, false, truth) == truth {
                    correct += 1;
                }
                total += 1;
            }
        }
        assert!(total > 100, "not enough probes ({total})");
        let acc = correct as f64 / total as f64;
        assert!((acc - 0.89).abs() < 0.04, "empirical accuracy {acc}");
    }

    #[test]
    fn provide_element_falls_back_to_gold_without_distractors() {
        let inst = any_instance();
        let o = HumanOracle::new(Expertise::Beginner, 3);
        assert_eq!(o.provide_element(&inst, "races", &[], true), "races");
    }

    #[test]
    fn expert_simple_questions_are_perfect() {
        let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(6);
        let oracle = HumanOracle::new(Expertise::Expert, 7);
        for inst in bench
            .split
            .dev
            .iter()
            .filter(|i| i.difficulty == Difficulty::Simple)
        {
            for t in &inst.gold_tables {
                assert!(oracle.judge_relevance(inst, t, true, true));
            }
        }
    }
}

//! # rts-core — Reliable Text-to-SQL with Adaptive Abstention
//!
//! The paper's contribution, end to end:
//!
//! * [`branching`] — build the branching-point dataset `D_branch` from
//!   teacher-forced generations (§3.1);
//! * [`bpp`] — the Branching Point Predictor: per-layer MLP probes
//!   wrapped in conformal prediction (**sBPP**, §3.2.2) and their
//!   multi-layer aggregation (**mBPP**, §3.2.3) via majority vote
//!   (Theorem 1) or the random-permutation merge (Algorithm 1);
//! * [`traceback`] — Algorithm 2: map a flagged token back to the
//!   schema elements it implicates;
//! * [`context`] — the shared per-database [`context::LinkContext`]:
//!   pre-interned vocabulary + precompiled constrained-decoding trie,
//!   built once and borrowed read-only by every instance, round and
//!   worker thread;
//! * [`surrogate`] — the fine-tuned relevance-classifier stand-in that
//!   can auto-resolve abstentions (§3.3 "Surrogate Filter");
//! * [`human`] — human-in-the-loop oracles with expertise profiles
//!   (§3.3 "Soliciting Human Feedback", §4.3 user study);
//! * [`abstention`] — the runtime: free generation monitored token by
//!   token by the mBPP, with abstain / surrogate / human policies;
//! * [`session`] — the same runtime as a resumable state machine
//!   ([`session::LinkSession`]): linking suspends on each branching
//!   flag ([`session::SessionState::NeedsFeedback`]) so an online
//!   serving engine can park the request until feedback arrives; the
//!   blocking entry points are thin drivers over it;
//! * [`sqlgen`] — simulated downstream SQL generators (Deepseek-7B,
//!   CodeS-15B class) whose corruption process is schema-conditioned,
//!   executed for real on `nanosql` to measure execution accuracy;
//! * [`pipeline`] — the full text-to-SQL pipeline gluing it together;
//! * [`metrics`] — EM / precision / recall, coverage, EAR, TAR, FAR.

pub mod abstention;
pub mod bpp;
pub mod branching;
pub mod context;
pub mod human;
pub mod metrics;
pub mod par;
pub mod pipeline;
pub mod session;
pub mod sqlgen;
pub mod surrogate;
pub mod traceback;

pub use abstention::{LinkScratch, MitigationPolicy, Round0, RtsConfig, RtsOutcome};
pub use bpp::{Mbpp, MergeMethod, Sbpp};
pub use branching::BranchDataset;
pub use context::{ContextCache, LinkContext, LinkContexts};
pub use human::{Expertise, HumanOracle};
pub use metrics::{AbstentionMetrics, CoverageMetrics, LinkingMetrics};
pub use par::par_map;
pub use session::{CtxHandle, FlagQuery, FlagResolution, LinkSession, SessionState};
pub use sqlgen::{ProvidedSchema, SqlGenModel};
pub use surrogate::SurrogateModel;

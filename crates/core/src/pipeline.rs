//! End-to-end RTS text-to-SQL pipeline.
//!
//! Glues the stages together the way §4.3's "Text-to-SQL" experiment
//! does: RTS schema linking (tables then columns, human feedback
//! resolving every branching flag) produces a linked schema per
//! instance; an orthogonal SQL generator consumes it; EX is measured by
//! real execution. Also hosts the joint table+column evaluation behind
//! Table 6.

use crate::abstention::{
    run_rts_linking, run_rts_linking_in, LinkScratch, MitigationPolicy, RtsConfig, RtsOutcome,
};
use crate::bpp::Mbpp;
use crate::context::LinkContexts;
use crate::human::HumanOracle;
use crate::par::{par_map, par_map_with};
use crate::sqlgen::{ProvidedSchema, SqlGenModel};
use benchgen::{Benchmark, Instance};
use simlm::{LinkTarget, SchemaLinker};

/// Outcome of joint (table + column) RTS linking for one instance.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct JointOutcome {
    pub tables: RtsOutcome,
    pub columns: RtsOutcome,
}

impl JointOutcome {
    /// Either stage abstained.
    pub fn abstained(&self) -> bool {
        self.tables.abstained || self.columns.abstained
    }

    /// Any human/surrogate involvement across both stages.
    pub fn intervened(&self) -> bool {
        self.tables.n_interventions + self.columns.n_interventions > 0
    }

    /// Would the unmonitored run have been jointly correct?
    pub fn would_be_correct(&self) -> bool {
        self.tables.would_be_correct && self.columns.would_be_correct
    }

    /// Column prediction conditioned on table linking: a column set only
    /// counts if the table set is right too (the paper's joint process
    /// feeds predicted tables into column linking).
    pub fn columns_correct_conditioned(&self) -> bool {
        self.tables.correct && self.columns.correct
    }

    /// The linked schema for the SQL generator. Falls back to the gold
    /// structure only via what linking actually produced.
    pub fn provided_schema(&self) -> ProvidedSchema {
        let tables = self.tables.predicted.clone();
        let columns: Vec<(String, String)> = self
            .columns
            .predicted
            .iter()
            .filter_map(|e| {
                e.split_once('.')
                    .map(|(t, c)| (t.to_string(), c.to_string()))
            })
            // A column prediction is only usable if its table survived
            // table linking.
            .filter(|(t, _)| tables.contains(t))
            .collect();
        ProvidedSchema::from_linking(tables, columns)
    }
}

/// Run joint RTS linking (tables, then columns) for one instance.
///
/// Convenience wrapper that precompiles the instance's contexts per
/// call; loops over many instances should build a [`LinkContexts`]
/// registry once and use [`run_joint_linking_in`].
pub fn run_joint_linking(
    model: &SchemaLinker,
    mbpp_tables: &Mbpp,
    mbpp_columns: &Mbpp,
    inst: &Instance,
    bench: &Benchmark,
    policy: &MitigationPolicy<'_>,
    config: &RtsConfig,
) -> JointOutcome {
    let meta = bench.meta(&inst.db_name).expect("instance database exists");
    let tables = run_rts_linking(
        model,
        mbpp_tables,
        inst,
        meta,
        LinkTarget::Tables,
        policy,
        config,
    );
    let columns = run_rts_linking(
        model,
        mbpp_columns,
        inst,
        meta,
        LinkTarget::Columns,
        policy,
        config,
    );
    JointOutcome { tables, columns }
}

/// [`run_joint_linking`] against a shared [`LinkContexts`] registry and
/// caller-owned scratch — the hot-loop form every experiment driver and
/// [`run_full_pipeline`] use. Outcomes are bit-identical to the
/// per-call wrapper (same runtime, shared read-only state).
#[allow(clippy::too_many_arguments)] // mirrors run_joint_linking + contexts
pub fn run_joint_linking_in(
    model: &SchemaLinker,
    mbpp_tables: &Mbpp,
    mbpp_columns: &Mbpp,
    inst: &Instance,
    bench: &Benchmark,
    contexts: &LinkContexts,
    policy: &MitigationPolicy<'_>,
    config: &RtsConfig,
    scratch: &mut LinkScratch,
) -> JointOutcome {
    let meta = bench.meta(&inst.db_name).expect("instance database exists");
    let tables = run_rts_linking_in(
        model,
        mbpp_tables,
        inst,
        meta,
        contexts.get(&inst.db_name, LinkTarget::Tables),
        policy,
        config,
        scratch,
    );
    let columns = run_rts_linking_in(
        model,
        mbpp_columns,
        inst,
        meta,
        contexts.get(&inst.db_name, LinkTarget::Columns),
        policy,
        config,
        scratch,
    );
    JointOutcome { tables, columns }
}

/// Schema sources for the EX experiments (Tables 1 and 7).
pub enum SchemaSource<'a> {
    /// Correct tables + correct columns.
    Golden,
    /// Correct tables + full columns.
    CorrectTablesFullColumns,
    /// Full tables + full columns (what schema-linking-free baselines see).
    Full,
    /// The schema RTS linking produced per instance. `Sync` because
    /// [`measure_ex`] evaluates instances across threads.
    Rts(&'a (dyn Fn(&Instance) -> ProvidedSchema + Sync)),
}

/// Measure EX for a generator over instances under a schema source.
///
/// Instances fan out across threads ([`par_map`]); generation and
/// execution are deterministic per instance, so the parallel measurement
/// equals the serial one exactly.
pub fn measure_ex(
    bench: &Benchmark,
    instances: &[Instance],
    generator: &SqlGenModel,
    source: &SchemaSource<'_>,
) -> f64 {
    if instances.is_empty() {
        return 0.0;
    }
    let correct = par_map(instances, |inst| {
        let meta = bench.meta(&inst.db_name).expect("meta exists");
        let db = bench.database(&inst.db_name).expect("database exists");
        let schema = match source {
            SchemaSource::Golden => ProvidedSchema::golden(inst),
            SchemaSource::CorrectTablesFullColumns => {
                ProvidedSchema::correct_tables_full_columns(inst, meta)
            }
            SchemaSource::Full => ProvidedSchema::full(meta),
            SchemaSource::Rts(f) => f(inst),
        };
        generator.ex_correct(inst, db, meta, &schema)
    });
    correct.iter().filter(|&&c| c).count() as f64 / instances.len() as f64
}

/// Run the full RTS pipeline (human-in-the-loop linking → SQL → EX)
/// over instances, returning (EX, joint outcomes).
///
/// The instance level is parallel: outcomes are indexed by instance and
/// every run seeds its RNG from `RtsConfig::seed` and the instance id,
/// so this returns exactly what the serial loop would (pinned by the
/// `parallel_pipeline_matches_serial` proptest). Within each instance,
/// monitored linking synthesizes only the hidden layers the mBPPs read
/// (`RtsConfig::eager_synthesis` restores the full-stack reference
/// path; outcomes are identical either way) and borrows the benchmark's
/// precompiled [`LinkContexts`] — built here once, shared read-only by
/// every worker (`RtsConfig::reference_linking` restores the
/// rebuild-per-flag reference path).
#[allow(clippy::too_many_arguments)] // mirrors the paper's pipeline stages
pub fn run_full_pipeline(
    bench: &Benchmark,
    instances: &[Instance],
    model: &SchemaLinker,
    mbpp_tables: &Mbpp,
    mbpp_columns: &Mbpp,
    oracle: &HumanOracle,
    generator: &SqlGenModel,
    config: &RtsConfig,
) -> (f64, Vec<JointOutcome>) {
    let policy = MitigationPolicy::Human(oracle);
    let contexts = LinkContexts::build(bench);
    let outcomes: Vec<JointOutcome> =
        par_map_with(instances, LinkScratch::default, |scratch, inst| {
            run_joint_linking_in(
                model,
                mbpp_tables,
                mbpp_columns,
                inst,
                bench,
                &contexts,
                &policy,
                config,
                scratch,
            )
        });
    let schemas: Vec<ProvidedSchema> = outcomes.iter().map(|o| o.provided_schema()).collect();
    let idx_of: std::collections::HashMap<u64, usize> = instances
        .iter()
        .enumerate()
        .map(|(i, inst)| (inst.id, i))
        .collect();
    let ex = measure_ex(
        bench,
        instances,
        generator,
        &SchemaSource::Rts(&|inst| schemas[idx_of[&inst.id]].clone()),
    );
    (ex, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpp::{Mbpp, MbppConfig, ProbeConfig};
    use crate::branching::BranchDataset;
    use crate::human::Expertise;
    use benchgen::BenchmarkProfile;

    struct Fx {
        bench: Benchmark,
        model: SchemaLinker,
        mbpp_t: Mbpp,
        mbpp_c: Mbpp,
    }

    fn fixture() -> Fx {
        let bench = BenchmarkProfile::bird_like().scaled(0.05).generate(120);
        let model = SchemaLinker::new("bird", 17);
        let cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 6,
                ..Default::default()
            },
            ..Default::default()
        };
        let ds_t = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 400);
        let ds_c = BranchDataset::build(&model, &bench.split.train, LinkTarget::Columns, 400);
        let mbpp_t = Mbpp::train(&ds_t, &cfg);
        let mbpp_c = Mbpp::train(&ds_c, &cfg);
        Fx {
            bench,
            model,
            mbpp_t,
            mbpp_c,
        }
    }

    #[test]
    fn joint_linking_couples_abstentions() {
        let fx = fixture();
        let policy = MitigationPolicy::AbstainOnly;
        let config = RtsConfig::default();
        let outcomes: Vec<JointOutcome> = fx
            .bench
            .split
            .dev
            .iter()
            .take(80)
            .map(|i| {
                run_joint_linking(
                    &fx.model, &fx.mbpp_t, &fx.mbpp_c, i, &fx.bench, &policy, &config,
                )
            })
            .collect();
        // The paper observes heavy overlap: joint abstention rate is far
        // below the sum of the two marginal rates.
        let t_abst = outcomes.iter().filter(|o| o.tables.abstained).count();
        let c_abst = outcomes.iter().filter(|o| o.columns.abstained).count();
        let joint = outcomes.iter().filter(|o| o.abstained()).count();
        assert!(joint <= t_abst + c_abst);
        if t_abst > 0 && c_abst > 0 {
            assert!(joint < t_abst + c_abst, "no overlap at all is implausible");
        }
    }

    #[test]
    fn full_pipeline_ex_close_to_golden() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let generator = SqlGenModel::deepseek_7b("bird", 33);
        let instances: Vec<Instance> = fx.bench.split.dev.iter().take(150).cloned().collect();
        let (ex_rts, outcomes) = run_full_pipeline(
            &fx.bench,
            &instances,
            &fx.model,
            &fx.mbpp_t,
            &fx.mbpp_c,
            &oracle,
            &generator,
            &RtsConfig::default(),
        );
        let ex_golden = measure_ex(&fx.bench, &instances, &generator, &SchemaSource::Golden);
        let ex_full = measure_ex(&fx.bench, &instances, &generator, &SchemaSource::Full);
        // Table 7 ordering: golden ≥ RTS > full.
        assert!(
            ex_golden + 1e-9 >= ex_rts - 0.05,
            "golden {ex_golden} vs rts {ex_rts}"
        );
        assert!(
            ex_rts >= ex_full,
            "rts {ex_rts} must not lose to full-schema {ex_full}"
        );
        assert!(
            outcomes.iter().all(|o| !o.abstained()),
            "human policy resolves everything"
        );
    }

    #[test]
    fn provided_schema_drops_orphan_columns() {
        let outcome = JointOutcome {
            tables: RtsOutcome {
                abstained: false,
                predicted: vec!["races".into()],
                correct: true,
                would_be_correct: true,
                n_interventions: 0,
                n_flags: 0,
            },
            columns: RtsOutcome {
                abstained: false,
                predicted: vec!["races.name".into(), "lapTimes.time".into()],
                correct: false,
                would_be_correct: false,
                n_interventions: 0,
                n_flags: 0,
            },
        };
        let schema = outcome.provided_schema();
        assert_eq!(schema.tables, vec!["races".to_string()]);
        // lapTimes.time is orphaned (its table was not linked).
        assert_eq!(
            schema.columns,
            vec![("races".to_string(), "name".to_string())]
        );
    }
}

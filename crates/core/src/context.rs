//! Shared, immutable linking context: the per-`(database, target)`
//! constrained-decoding state the monitored-linking rounds used to
//! rebuild from scratch on every branching flag.
//!
//! A [`LinkContext`] holds a pre-interned [`Vocab`] covering every
//! candidate element of one database plus the precompiled
//! constrained-decoding [`Trie`] over those elements (built through
//! [`crate::traceback::table_trie_in`] /
//! [`crate::traceback::column_trie_in`]). It is constructed **once per
//! database**, then shared read-only across instances, correction
//! rounds and worker threads — `par_map` fan-outs borrow it without
//! locks.
//!
//! ## Why the context cannot re-key generation
//!
//! The context vocabulary deliberately does **not** replace the
//! per-round generation vocabulary. `simlm` seeds every token's
//! hidden-state gaussian streams from the *numeric token id* (see
//! `layer_key(tok, layer, inst, pos)` in `simlm::model`), and the
//! per-round `Vocab::new()` assigns ids in emission order — an
//! instance-dependent order no shared vocabulary can reproduce.
//! Re-keying generation onto the context's schema-order ids would
//! change hidden states, hence mBPP flags, hence every committed
//! `results/*.json`. The bit-identity contract (pinned by the
//! `context_linking_matches_reference` parity proptests) therefore
//! fixes the boundary: generation keeps its own id space; the context
//! owns everything downstream of the emitted *strings* — decode,
//! trace back, and trie completion — where only names matter.
//! [`LinkContext::implicated_elements`] bridges the two id spaces by
//! translating the (short) trailing partial through token text.

use crate::traceback::{column_trie_in, table_trie_in, trace_back_reference};
use benchgen::schemagen::DbMeta;
use benchgen::Benchmark;
use simlm::{LinkTarget, TokenId, Trie, Vocab};
use std::collections::HashMap;

/// Immutable per-`(DbMeta, LinkTarget)` linking state: pre-interned
/// vocabulary + precompiled candidate-element trie.
#[derive(Debug, Clone)]
pub struct LinkContext {
    target: LinkTarget,
    /// Candidate-element vocabulary in the context's own id space
    /// (schema interning order — *not* the generation id space).
    vocab: Vocab,
    /// Constrained-decoding trie over every candidate element, keyed in
    /// `self.vocab`'s id space.
    trie: Trie,
}

impl LinkContext {
    /// Precompile the context for one database and link target.
    pub fn new(meta: &DbMeta, target: LinkTarget) -> Self {
        let mut vocab = Vocab::new();
        let trie = match target {
            LinkTarget::Tables => table_trie_in(&mut vocab, meta),
            LinkTarget::Columns => column_trie_in(&mut vocab, meta),
        };
        Self {
            target,
            vocab,
            trie,
        }
    }

    pub fn target(&self) -> LinkTarget {
        self.target
    }

    /// The pre-interned candidate vocabulary (context id space).
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The precompiled candidate-element trie (context id space).
    pub fn trie(&self) -> &Trie {
        &self.trie
    }

    /// Number of candidate elements the trie stores.
    pub fn n_candidates(&self) -> usize {
        self.trie.len()
    }

    /// Algorithm 2 with the cached trie: implicated elements for a flag
    /// at `branch_pos` of `tokens`, where `tokens` live in the
    /// generation vocabulary `gen_vocab`.
    ///
    /// Identical to the clone-per-flag reference
    /// ([`implicated_elements_reference`]) on every complete stream:
    /// decoding compares element *names*, which are id-space agnostic.
    /// Only when a truncated stream ends mid-element does the trie act,
    /// and then the partial's tokens are translated into the context id
    /// space through their text (a handful of lookups — candidate
    /// elements only ever tokenize into schema subwords, which the
    /// context vocabulary covers by construction).
    pub fn implicated_elements(
        &self,
        gen_vocab: &Vocab,
        tokens: &[TokenId],
        branch_pos: usize,
    ) -> Vec<String> {
        crate::traceback::trace_back_with(gen_vocab, tokens, branch_pos, |partial| {
            let translated: Option<Vec<TokenId>> = partial
                .iter()
                .map(|&t| self.vocab.get(gen_vocab.text(t)))
                .collect();
            self.trie
                .cheapest_completion(&translated?)
                .map(|(_suffix, name)| name.to_string())
        })
    }
}

/// The clone-per-flag reference for [`LinkContext::implicated_elements`]:
/// clone the generation vocabulary, rebuild the candidate trie in its id
/// space, and trace back by re-decoding the full prefix each step —
/// exactly what every flag paid before the shared context existed. Kept
/// for `RtsConfig::reference_linking` A/B runs and the parity tests.
pub fn implicated_elements_reference(
    gen_vocab: &Vocab,
    meta: &DbMeta,
    target: LinkTarget,
    tokens: &[TokenId],
    branch_pos: usize,
) -> Vec<String> {
    let mut v = gen_vocab.clone();
    let trie = match target {
        LinkTarget::Tables => table_trie_in(&mut v, meta),
        LinkTarget::Columns => column_trie_in(&mut v, meta),
    };
    trace_back_reference(&v, &trie, tokens, branch_pos)
}

/// Registry of precompiled [`LinkContext`]s for a whole benchmark: one
/// per `(database, target)`, built once and shared by every instance
/// and worker thread.
#[derive(Debug)]
pub struct LinkContexts {
    tables: HashMap<String, LinkContext>,
    columns: HashMap<String, LinkContext>,
}

impl LinkContexts {
    /// Precompile contexts for every database of `bench`, both targets.
    pub fn build(bench: &Benchmark) -> Self {
        Self::from_metas(&bench.metas)
    }

    /// Precompile contexts from database metadata directly.
    pub fn from_metas(metas: &[DbMeta]) -> Self {
        let tables = metas
            .iter()
            .map(|m| (m.name.clone(), LinkContext::new(m, LinkTarget::Tables)))
            .collect();
        let columns = metas
            .iter()
            .map(|m| (m.name.clone(), LinkContext::new(m, LinkTarget::Columns)))
            .collect();
        Self { tables, columns }
    }

    /// The context for one database and target. Panics on an unknown
    /// database (instances always reference a database of their
    /// benchmark).
    pub fn get(&self, db_name: &str, target: LinkTarget) -> &LinkContext {
        let map = match target {
            LinkTarget::Tables => &self.tables,
            LinkTarget::Columns => &self.columns,
        };
        map.get(db_name)
            .unwrap_or_else(|| panic!("no LinkContext for database {db_name}"))
    }

    /// Number of databases covered.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::BenchmarkProfile;
    use simlm::{GenMode, SchemaLinker};

    #[test]
    fn context_trie_covers_every_candidate() {
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(91);
        for meta in &bench.metas {
            let ctx_t = LinkContext::new(meta, LinkTarget::Tables);
            assert_eq!(ctx_t.n_candidates(), meta.tables.len());
            let ctx_c = LinkContext::new(meta, LinkTarget::Columns);
            let n_cols: usize = meta.tables.iter().map(|t| t.columns.len()).sum();
            assert_eq!(ctx_c.n_candidates(), n_cols);
            // Every candidate tokenizes in the context vocab and
            // completes in the trie.
            for t in &meta.tables {
                let ids = ctx_t.vocab().try_encode_identifier(&t.name).unwrap();
                assert_eq!(ctx_t.trie().complete(&ids), Some(t.name.as_str()));
            }
        }
    }

    #[test]
    fn cached_trie_implicated_sets_match_clone_per_flag_reference() {
        // The tentpole parity bar: on flagged dev generations the
        // shared-context implicated set must equal the clone-per-flag
        // reference element for element — across both targets and every
        // branch position of the stream.
        let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(92);
        let model = SchemaLinker::new("bird", 24);
        let contexts = LinkContexts::build(&bench);
        let mut flagged = 0usize;
        for inst in bench.split.dev.iter() {
            let meta = bench.meta(&inst.db_name).unwrap();
            for target in [LinkTarget::Tables, LinkTarget::Columns] {
                let mut vocab = Vocab::new();
                let trace = model.generate(inst, &mut vocab, target, GenMode::Free);
                let ctx = contexts.get(&inst.db_name, target);
                for branch_pos in trace
                    .steps
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_branch)
                    .map(|(p, _)| p)
                {
                    let cached = ctx.implicated_elements(&vocab, &trace.tokens, branch_pos);
                    let reference = implicated_elements_reference(
                        &vocab,
                        meta,
                        target,
                        &trace.tokens,
                        branch_pos,
                    );
                    assert_eq!(
                        cached, reference,
                        "instance {} target {target:?} branch {branch_pos}",
                        inst.id
                    );
                    flagged += 1;
                }
            }
        }
        assert!(flagged > 20, "too few flagged positions: {flagged}");
    }

    #[test]
    fn contexts_are_shared_across_threads() {
        // Read-only after build: borrow one registry from a parallel
        // fan-out and check results equal the serial loop.
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(93);
        let model = SchemaLinker::new("bird", 25);
        let contexts = LinkContexts::build(&bench);
        let instances: Vec<benchgen::Instance> = bench.split.dev.to_vec();
        let run = |inst: &benchgen::Instance| {
            let mut vocab = Vocab::new();
            let trace = model.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            let ctx = contexts.get(&inst.db_name, LinkTarget::Tables);
            trace
                .steps
                .iter()
                .position(|s| s.is_branch)
                .map(|p| ctx.implicated_elements(&vocab, &trace.tokens, p))
        };
        let parallel = crate::par::par_map(&instances, run);
        let serial: Vec<_> = instances.iter().map(run).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn registry_covers_every_database_once() {
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(94);
        let contexts = LinkContexts::build(&bench);
        assert_eq!(contexts.len(), bench.metas.len());
        assert!(!contexts.is_empty());
        for meta in &bench.metas {
            assert_eq!(
                contexts.get(&meta.name, LinkTarget::Tables).n_candidates(),
                meta.tables.len()
            );
        }
    }
}

//! Shared, immutable linking context: the per-`(database, target)`
//! constrained-decoding state the monitored-linking rounds used to
//! rebuild from scratch on every branching flag.
//!
//! A [`LinkContext`] holds a pre-interned [`Vocab`] covering every
//! candidate element of one database plus the precompiled
//! constrained-decoding [`Trie`] over those elements (built through
//! [`crate::traceback::table_trie_in`] /
//! [`crate::traceback::column_trie_in`]). It is constructed **once per
//! database**, then shared read-only across instances, correction
//! rounds and worker threads — `par_map` fan-outs borrow it without
//! locks.
//!
//! ## Why the context cannot re-key generation
//!
//! The context vocabulary deliberately does **not** replace the
//! per-round generation vocabulary. `simlm` seeds every token's
//! hidden-state gaussian streams from the *numeric token id* (see
//! `layer_key(tok, layer, inst, pos)` in `simlm::model`), and the
//! per-round `Vocab::new()` assigns ids in emission order — an
//! instance-dependent order no shared vocabulary can reproduce.
//! Re-keying generation onto the context's schema-order ids would
//! change hidden states, hence mBPP flags, hence every committed
//! `results/*.json`. The bit-identity contract (pinned by the
//! `context_linking_matches_reference` parity proptests) therefore
//! fixes the boundary: generation keeps its own id space; the context
//! owns everything downstream of the emitted *strings* — decode,
//! trace back, and trie completion — where only names matter.
//! [`LinkContext::implicated_elements`] bridges the two id spaces by
//! translating the (short) trailing partial through token text.

use crate::traceback::{column_trie_in, table_trie_in, trace_back_reference};
use benchgen::schemagen::DbMeta;
use benchgen::Benchmark;
use simlm::{LinkTarget, TokenId, Trie, Vocab};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Immutable per-`(DbMeta, LinkTarget)` linking state: pre-interned
/// vocabulary + precompiled candidate-element trie.
#[derive(Debug, Clone)]
pub struct LinkContext {
    target: LinkTarget,
    /// Candidate-element vocabulary in the context's own id space
    /// (schema interning order — *not* the generation id space).
    vocab: Vocab,
    /// Constrained-decoding trie over every candidate element, keyed in
    /// `self.vocab`'s id space.
    trie: Trie,
}

impl LinkContext {
    /// Precompile the context for one database and link target.
    pub fn new(meta: &DbMeta, target: LinkTarget) -> Self {
        let mut vocab = Vocab::new();
        let trie = match target {
            LinkTarget::Tables => table_trie_in(&mut vocab, meta),
            LinkTarget::Columns => column_trie_in(&mut vocab, meta),
        };
        Self {
            target,
            vocab,
            trie,
        }
    }

    pub fn target(&self) -> LinkTarget {
        self.target
    }

    /// The pre-interned candidate vocabulary (context id space).
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The precompiled candidate-element trie (context id space).
    pub fn trie(&self) -> &Trie {
        &self.trie
    }

    /// Number of candidate elements the trie stores.
    pub fn n_candidates(&self) -> usize {
        self.trie.len()
    }

    /// Algorithm 2 with the cached trie: implicated elements for a flag
    /// at `branch_pos` of `tokens`, where `tokens` live in the
    /// generation vocabulary `gen_vocab`.
    ///
    /// Identical to the clone-per-flag reference
    /// ([`implicated_elements_reference`]) on every complete stream:
    /// decoding compares element *names*, which are id-space agnostic.
    /// Only when a truncated stream ends mid-element does the trie act,
    /// and then the partial's tokens are translated into the context id
    /// space through their text (a handful of lookups — candidate
    /// elements only ever tokenize into schema subwords, which the
    /// context vocabulary covers by construction).
    pub fn implicated_elements(
        &self,
        gen_vocab: &Vocab,
        tokens: &[TokenId],
        branch_pos: usize,
    ) -> Vec<String> {
        crate::traceback::trace_back_with(gen_vocab, tokens, branch_pos, |partial| {
            let translated: Option<Vec<TokenId>> = partial
                .iter()
                .map(|&t| self.vocab.get(gen_vocab.text(t)))
                .collect();
            self.trie
                .cheapest_completion(&translated?)
                .map(|(_suffix, name)| name.to_string())
        })
    }
}

/// The clone-per-flag reference for [`LinkContext::implicated_elements`]:
/// clone the generation vocabulary, rebuild the candidate trie in its id
/// space, and trace back by re-decoding the full prefix each step —
/// exactly what every flag paid before the shared context existed. Kept
/// for `RtsConfig::reference_linking` A/B runs and the parity tests.
pub fn implicated_elements_reference(
    gen_vocab: &Vocab,
    meta: &DbMeta,
    target: LinkTarget,
    tokens: &[TokenId],
    branch_pos: usize,
) -> Vec<String> {
    let mut v = gen_vocab.clone();
    let trie = match target {
        LinkTarget::Tables => table_trie_in(&mut v, meta),
        LinkTarget::Columns => column_trie_in(&mut v, meta),
    };
    trace_back_reference(&v, &trie, tokens, branch_pos)
}

/// Registry of precompiled [`LinkContext`]s for a whole benchmark: one
/// per `(database, target)`, built once and shared by every instance
/// and worker thread.
#[derive(Debug)]
pub struct LinkContexts {
    tables: HashMap<String, LinkContext>,
    columns: HashMap<String, LinkContext>,
}

impl LinkContexts {
    /// Precompile contexts for every database of `bench`, both targets.
    pub fn build(bench: &Benchmark) -> Self {
        Self::from_metas(&bench.metas)
    }

    /// Precompile contexts from database metadata directly.
    pub fn from_metas(metas: &[DbMeta]) -> Self {
        let tables = metas
            .iter()
            .map(|m| (m.name.clone(), LinkContext::new(m, LinkTarget::Tables)))
            .collect();
        let columns = metas
            .iter()
            .map(|m| (m.name.clone(), LinkContext::new(m, LinkTarget::Columns)))
            .collect();
        Self { tables, columns }
    }

    /// The context for one database and target. Panics on an unknown
    /// database (instances always reference a database of their
    /// benchmark).
    pub fn get(&self, db_name: &str, target: LinkTarget) -> &LinkContext {
        let map = match target {
            LinkTarget::Tables => &self.tables,
            LinkTarget::Columns => &self.columns,
        };
        map.get(db_name)
            .unwrap_or_else(|| panic!("no LinkContext for database {db_name}"))
    }

    /// Number of databases covered.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// Hit/miss/eviction counters of a [`ContextCache`] snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ContextCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl ContextCacheStats {
    /// Fraction of lookups served from cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another snapshot's counters into this one — how a sharded
    /// engine aggregates its per-shard caches into one fleet view.
    pub fn absorb(&mut self, other: ContextCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// Stable database→shard assignment: FNV-1a over the database name,
/// reduced modulo the shard count.
///
/// This is the routing function a sharded serving deployment keys its
/// per-database partitioning on (workers, [`ContextCache`] instances,
/// on-disk placement), so it must be a *revision-stable* pure function
/// of the name: the same database lands on the same shard across
/// processes, restarts, and releases. `std`'s `DefaultHasher` is
/// explicitly unsuitable (its output may change between Rust releases
/// and is randomly keyed per process); FNV-1a is fixed by its two
/// published constants, and a unit test pins concrete assignments so a
/// change here is a deliberate re-sharding, never an accident.
pub fn db_shard(db: &str, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for byte in db.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % n_shards as u64) as usize
}

/// One cached context plus its LRU recency stamp. The stamp is atomic
/// so cache *hits* — the steady state — update recency under the read
/// lock, keeping lookups reader-parallel.
#[derive(Debug)]
struct CacheEntry {
    ctx: Arc<LinkContext>,
    /// Schema-drift epoch the context was compiled against
    /// ([`DbMeta::revision`]); a lookup with a newer revision treats
    /// the entry as stale and rebuilds.
    revision: u64,
    last_used: AtomicU64,
}

/// Lazily-built, capacity-bounded cache of [`LinkContext`]s — the
/// online-serving counterpart of the eager [`LinkContexts`] registry.
///
/// Batch drivers know their whole benchmark up front, so
/// [`LinkContexts::build`] precompiles every `(database, target)`
/// context before the fan-out. A serving engine doesn't: tenants
/// arrive one request at a time, and paying every database's
/// vocabulary + trie compilation at boot is exactly the cold-start
/// cost multi-tenant serving cannot afford. [`ContextCache::get`]
/// builds a context the first time its `(database, target)` pair is
/// requested and shares it as an [`Arc`] from then on (sessions keep
/// their clone alive across eviction — an LRU drop never invalidates
/// an in-flight request).
///
/// Concurrency: lookups take the shard's read lock only (recency is an
/// atomic stamp), so the hot path is reader-parallel across workers;
/// builds happen outside any lock and the insert re-checks for a
/// concurrent winner. Eviction (least-recently-used within the
/// target's shard) only runs under the write lock of a miss.
#[derive(Debug)]
pub struct ContextCache {
    tables: parking_lot::RwLock<HashMap<String, CacheEntry>>,
    columns: parking_lot::RwLock<HashMap<String, CacheEntry>>,
    /// Max entries per target shard; 0 = unbounded (a pure lazy
    /// registry).
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ContextCache {
    /// An empty cache holding at most `capacity` databases per target
    /// (`0` = unbounded).
    pub fn new(capacity: usize) -> Self {
        Self {
            tables: parking_lot::RwLock::new(HashMap::new()),
            columns: parking_lot::RwLock::new(HashMap::new()),
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, target: LinkTarget) -> &parking_lot::RwLock<HashMap<String, CacheEntry>> {
        match target {
            LinkTarget::Tables => &self.tables,
            LinkTarget::Columns => &self.columns,
        }
    }

    /// The context for `(meta, target)`, built on first request. An
    /// entry compiled against an older [`DbMeta::revision`] is stale —
    /// schema drift — and is rebuilt in place; callers already holding
    /// the old `Arc` (in-flight sessions) are unaffected.
    pub fn get(&self, meta: &DbMeta, target: LinkTarget) -> Arc<LinkContext> {
        let shard = self.shard(target);
        {
            let map = shard.read();
            if let Some(entry) = map.get(&meta.name) {
                if entry.revision == meta.revision {
                    entry
                        .last_used
                        .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return entry.ctx.clone();
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compile outside any lock: building a context is the expensive
        // part and must not serialize unrelated lookups.
        let built = Arc::new(LinkContext::new(meta, target));
        let mut map = shard.write();
        if let Some(entry) = map.get(&meta.name) {
            if entry.revision == meta.revision {
                // A concurrent miss won the race; use its context and
                // drop ours.
                entry
                    .last_used
                    .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                return entry.ctx.clone();
            }
            // Stale revision: replacing in place below (no capacity
            // change), billed as an eviction.
            self.evictions.fetch_add(1, Ordering::Relaxed);
        } else if self.capacity > 0 && map.len() >= self.capacity {
            let victim = map
                // rts-allow(iter-order): LRU victim choice only
                // affects which entry is rebuilt later (cache hit/miss
                // counters), never the built context — outputs are
                // pinned by the parity matrix regardless of eviction
                // order.
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(
            meta.name.clone(),
            CacheEntry {
                ctx: built.clone(),
                revision: meta.revision,
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
            },
        );
        built
    }

    /// Drop every cached context of `db` (both targets) — the explicit
    /// schema-drift signal: the next lookup rebuilds against the
    /// current [`DbMeta`]. In-flight sessions keep their pinned
    /// `Arc<LinkContext>` alive; invalidation changes what *new*
    /// lookups see, never what running ones hold. Returns the number
    /// of entries dropped (billed as evictions).
    pub fn invalidate_db(&self, db: &str) -> usize {
        let mut dropped = 0;
        for shard in [&self.tables, &self.columns] {
            if shard.write().remove(db).is_some() {
                dropped += 1;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        dropped
    }

    /// Number of resident contexts across both targets.
    pub fn len(&self) -> usize {
        self.tables.read().len() + self.columns.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ContextCacheStats {
        ContextCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::BenchmarkProfile;
    use simlm::{GenMode, SchemaLinker};

    #[test]
    fn context_trie_covers_every_candidate() {
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(91);
        for meta in &bench.metas {
            let ctx_t = LinkContext::new(meta, LinkTarget::Tables);
            assert_eq!(ctx_t.n_candidates(), meta.tables.len());
            let ctx_c = LinkContext::new(meta, LinkTarget::Columns);
            let n_cols: usize = meta.tables.iter().map(|t| t.columns.len()).sum();
            assert_eq!(ctx_c.n_candidates(), n_cols);
            // Every candidate tokenizes in the context vocab and
            // completes in the trie.
            for t in &meta.tables {
                let ids = ctx_t.vocab().try_encode_identifier(&t.name).unwrap();
                assert_eq!(ctx_t.trie().complete(&ids), Some(t.name.as_str()));
            }
        }
    }

    #[test]
    fn cached_trie_implicated_sets_match_clone_per_flag_reference() {
        // The tentpole parity bar: on flagged dev generations the
        // shared-context implicated set must equal the clone-per-flag
        // reference element for element — across both targets and every
        // branch position of the stream.
        let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(92);
        let model = SchemaLinker::new("bird", 24);
        let contexts = LinkContexts::build(&bench);
        let mut flagged = 0usize;
        for inst in bench.split.dev.iter() {
            let meta = bench.meta(&inst.db_name).unwrap();
            for target in [LinkTarget::Tables, LinkTarget::Columns] {
                let mut vocab = Vocab::new();
                let trace = model.generate(inst, &mut vocab, target, GenMode::Free);
                let ctx = contexts.get(&inst.db_name, target);
                for branch_pos in trace
                    .steps
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_branch)
                    .map(|(p, _)| p)
                {
                    let cached = ctx.implicated_elements(&vocab, &trace.tokens, branch_pos);
                    let reference = implicated_elements_reference(
                        &vocab,
                        meta,
                        target,
                        &trace.tokens,
                        branch_pos,
                    );
                    assert_eq!(
                        cached, reference,
                        "instance {} target {target:?} branch {branch_pos}",
                        inst.id
                    );
                    flagged += 1;
                }
            }
        }
        assert!(flagged > 20, "too few flagged positions: {flagged}");
    }

    #[test]
    fn contexts_are_shared_across_threads() {
        // Read-only after build: borrow one registry from a parallel
        // fan-out and check results equal the serial loop.
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(93);
        let model = SchemaLinker::new("bird", 25);
        let contexts = LinkContexts::build(&bench);
        let instances: Vec<benchgen::Instance> = bench.split.dev.to_vec();
        let run = |inst: &benchgen::Instance| {
            let mut vocab = Vocab::new();
            let trace = model.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            let ctx = contexts.get(&inst.db_name, LinkTarget::Tables);
            trace
                .steps
                .iter()
                .position(|s| s.is_branch)
                .map(|p| ctx.implicated_elements(&vocab, &trace.tokens, p))
        };
        let parallel = crate::par::par_map(&instances, run);
        let serial: Vec<_> = instances.iter().map(run).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn registry_covers_every_database_once() {
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(94);
        let contexts = LinkContexts::build(&bench);
        assert_eq!(contexts.len(), bench.metas.len());
        assert!(!contexts.is_empty());
        for meta in &bench.metas {
            assert_eq!(
                contexts.get(&meta.name, LinkTarget::Tables).n_candidates(),
                meta.tables.len()
            );
        }
    }

    #[test]
    fn cache_builds_lazily_and_counts_hits() {
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(95);
        let cache = ContextCache::new(0);
        assert!(cache.is_empty());
        let meta = &bench.metas[0];
        let a = cache.get(meta, LinkTarget::Tables);
        let b = cache.get(meta, LinkTarget::Tables);
        assert!(Arc::ptr_eq(&a, &b), "hit must share the built context");
        assert_eq!(cache.len(), 1, "only the requested pair is built");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // The cached context equals a freshly built one.
        let fresh = LinkContext::new(meta, LinkTarget::Tables);
        assert_eq!(a.n_candidates(), fresh.n_candidates());
    }

    #[test]
    fn cache_evicts_least_recently_used_per_target() {
        let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(96);
        assert!(bench.metas.len() >= 3, "need ≥3 databases for eviction");
        let cache = ContextCache::new(2);
        let (a, b, c) = (&bench.metas[0], &bench.metas[1], &bench.metas[2]);
        let ctx_a = cache.get(a, LinkTarget::Tables);
        let _ = cache.get(b, LinkTarget::Tables);
        let _ = cache.get(a, LinkTarget::Tables); // refresh a: b is now LRU
        let _ = cache.get(c, LinkTarget::Tables); // evicts b
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        // An evicted-and-refetched entry rebuilds (miss), a kept one hits.
        let before = cache.stats().misses;
        let _ = cache.get(a, LinkTarget::Tables);
        assert_eq!(cache.stats().misses, before, "a must still be resident");
        let _ = cache.get(b, LinkTarget::Tables);
        assert_eq!(cache.stats().misses, before + 1, "b was evicted");
        // The Arc held across eviction stays usable.
        assert_eq!(ctx_a.n_candidates(), a.tables.len());
    }

    #[test]
    fn cache_rebuilds_on_revision_bump_and_invalidate() {
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(98);
        let cache = ContextCache::new(0);
        let meta = &bench.metas[0];
        let old = cache.get(meta, LinkTarget::Tables);

        // Schema drift: the same database at a newer revision must not
        // be served the stale compile.
        let mut drifted = meta.clone();
        drifted.revision += 1;
        let new = cache.get(&drifted, LinkTarget::Tables);
        assert!(!Arc::ptr_eq(&old, &new), "revision bump must rebuild");
        assert_eq!(cache.len(), 1, "stale entry replaced, not duplicated");
        assert_eq!(cache.stats().evictions, 1, "replacement billed");
        // The current revision now hits.
        assert!(Arc::ptr_eq(&new, &cache.get(&drifted, LinkTarget::Tables)));

        // Explicit invalidation detaches future lookups too.
        let before = cache.stats();
        assert_eq!(cache.invalidate_db(&meta.name), 1, "one target cached");
        assert_eq!(cache.stats().evictions, before.evictions + 1);
        let rebuilt = cache.get(&drifted, LinkTarget::Tables);
        assert!(!Arc::ptr_eq(&new, &rebuilt), "invalidate must rebuild");
        // Arcs pinned before the drift stay fully usable (an in-flight
        // session finishes on the context it started with).
        assert_eq!(old.n_candidates(), meta.tables.len());
        // Unknown databases are a no-op, not a panic.
        assert_eq!(cache.invalidate_db("no_such_db"), 0);
    }

    #[test]
    fn db_shard_assignments_are_pinned_across_revisions() {
        // These are FNV-1a(name) mod n — recorded constants, not
        // derived in-test, so any change to the hash constants or the
        // reduction shows up as a failed pin (a deliberate re-sharding
        // must update this test *knowingly*).
        assert_eq!(db_shard("schools_0", 2), 1);
        assert_eq!(db_shard("finance_1", 2), 1);
        assert_eq!(db_shard("medical_3", 2), 0);
        assert_eq!(db_shard("schools_0", 4), 1);
        assert_eq!(db_shard("retail_2", 4), 3);
        assert_eq!(db_shard("medical_3", 4), 2);
        assert_eq!(db_shard("", 4), 1, "empty name is the FNV offset basis");
        // Degenerate shard counts collapse to shard 0.
        assert_eq!(db_shard("anything", 1), 0);
        assert_eq!(db_shard("anything", 0), 0);
        // Stability across repeated calls (pure function of the name).
        for n in 1..8 {
            assert_eq!(db_shard("schools_0", n), db_shard("schools_0", n));
            assert!(n <= 1 || db_shard("schools_0", n) < n);
        }
    }

    #[test]
    fn db_shard_spreads_generated_databases() {
        let bench = BenchmarkProfile::bird_like().scaled(0.03).generate(77);
        let n = 4;
        let mut counts = vec![0usize; n];
        for meta in &bench.metas {
            counts[db_shard(&meta.name, n)] += 1;
        }
        let populated = counts.iter().filter(|&&c| c > 0).count();
        assert!(
            populated >= 2,
            "a realistic database population must span shards: {counts:?}"
        );
    }

    #[test]
    fn cache_stats_absorb_sums_counters() {
        let mut a = ContextCacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        a.absorb(ContextCacheStats {
            hits: 1,
            misses: 3,
            evictions: 2,
        });
        assert_eq!((a.hits, a.misses, a.evictions), (4, 4, 2));
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_is_shared_across_threads() {
        let bench = BenchmarkProfile::bird_like().scaled(0.01).generate(97);
        let cache = ContextCache::new(0);
        let instances: Vec<benchgen::Instance> = bench.split.dev.to_vec();
        let n: usize = crate::par::par_map(&instances, |inst| {
            let meta = bench.meta(&inst.db_name).unwrap();
            cache.get(meta, LinkTarget::Tables).n_candidates()
        })
        .into_iter()
        .sum();
        assert!(n > 0);
        let stats = cache.stats();
        // The resident set must match the distinct databases requested
        // (racing misses may both bill a miss but insert only once).
        let distinct: std::collections::HashSet<&str> =
            instances.iter().map(|i| i.db_name.as_str()).collect();
        assert_eq!(cache.len(), distinct.len());
        assert_eq!(stats.hits + stats.misses, instances.len() as u64);
    }
}

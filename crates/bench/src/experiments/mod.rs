//! Experiment implementations, one per paper table/figure. Shared
//! evaluation helpers live here; each submodule builds one [`Report`].

pub mod ablation;
pub mod abstain;
pub mod ex;
pub mod figure3;
pub mod linking;
pub mod sweeps;
pub mod userstudy;

use crate::context::BenchArtifacts;
use rts_core::bpp::Mbpp;
use rts_core::metrics::{coverage_metrics, CoverageMetrics, LinkingMetrics};
use simlm::{GenMode, LinkTarget, Vocab};
use tinynn::rng::SplitMix64;

/// Free-run schema linking metrics (EM/P/R) over a split.
pub fn free_linking_metrics(
    arts: &BenchArtifacts,
    split: &[benchgen::Instance],
    target: LinkTarget,
) -> LinkingMetrics {
    let mut golds = Vec::with_capacity(split.len());
    let mut preds = Vec::with_capacity(split.len());
    for inst in split {
        let mut vocab = Vocab::new();
        let trace = arts.linker.generate(inst, &mut vocab, target, GenMode::Free);
        let mut gold = simlm::SchemaLinker::gold_elements(inst, target);
        gold.sort();
        golds.push(gold);
        preds.push(trace.predicted_set());
    }
    rts_core::metrics::linking_metrics(&golds, &preds)
}

/// Coverage/EAR of an mBPP over teacher-forced traces of a split.
pub fn coverage_over_split(
    arts: &BenchArtifacts,
    mbpp: &Mbpp,
    split: &[benchgen::Instance],
    target: LinkTarget,
    seed: u64,
) -> CoverageMetrics {
    let mut rng = SplitMix64::new(seed);
    let mut flags = Vec::new();
    for inst in split {
        let mut vocab = Vocab::new();
        let trace = arts.linker.generate(inst, &mut vocab, target, GenMode::TeacherForced);
        for (p, s) in mbpp.flag_trace(&trace, &mut rng).iter().zip(&trace.steps) {
            flags.push((*p, s.is_branch));
        }
    }
    coverage_metrics(&flags)
}

/// Mean AUC of the selected probes evaluated on an arbitrary split
/// (probe scores vs teacher-forced branch labels).
pub fn selected_auc_on_split(
    arts: &BenchArtifacts,
    mbpp: &Mbpp,
    split: &[benchgen::Instance],
    target: LinkTarget,
) -> f64 {
    let mut per_layer_scores: Vec<Vec<f64>> = vec![Vec::new(); mbpp.selected.len()];
    let mut labels: Vec<bool> = Vec::new();
    for inst in split {
        let mut vocab = Vocab::new();
        let trace = arts.linker.generate(inst, &mut vocab, target, GenMode::TeacherForced);
        for step in &trace.steps {
            labels.push(step.is_branch);
            for (slot, &i) in mbpp.selected.iter().enumerate() {
                let sbpp = &mbpp.sbpps[i];
                per_layer_scores[slot].push(sbpp.score(&step.hidden[sbpp.layer]));
            }
        }
    }
    let mut total = 0.0;
    for scores in &per_layer_scores {
        total += tinynn::metrics::auc(scores, &labels);
    }
    total / per_layer_scores.len() as f64
}

//! Experiment implementations, one per paper table/figure. Shared
//! evaluation helpers live here; each submodule builds one [`crate::report::Report`].
//!
//! All helpers fan instances out across threads via
//! [`rts_core::par::par_map`]. Determinism is preserved by seeding any
//! per-instance randomness from the experiment seed and the instance id
//! (never from a generator shared across instances), so the tables are
//! identical however many workers run.

pub mod ablation;
pub mod abstain;
pub mod ex;
pub mod figure3;
pub mod linking;
pub mod sweeps;
pub mod userstudy;

use crate::context::BenchArtifacts;
use rts_core::bpp::{BppScratch, Mbpp, SbppScratch};
use rts_core::metrics::{coverage_metrics, CoverageMetrics, LinkingMetrics};
use rts_core::par::par_map_with;
use simlm::{GenMode, LayerSet, LinkTarget, SynthScratch, Vocab};
use tinynn::Matrix;

/// Per-instance RNG for experiment-side randomness (the permutation
/// merge): the runtime's own mixing helper, keeping parallel == serial
/// and experiment seeding in lock-step with monitored linking.
pub(crate) use rts_core::par::instance_rng;

/// Free-run schema linking metrics (EM/P/R) over a split. Only the
/// predicted element sets are read, so hidden-state synthesis is
/// skipped entirely ([`LayerSet::none`]).
pub fn free_linking_metrics(
    arts: &BenchArtifacts,
    split: &[benchgen::Instance],
    target: LinkTarget,
) -> LinkingMetrics {
    let layers = LayerSet::none();
    let pairs: Vec<(Vec<String>, Vec<String>)> =
        par_map_with(split, SynthScratch::default, |synth, inst| {
            let mut vocab = Vocab::new();
            let trace = arts.linker.generate_with_layers(
                inst,
                &mut vocab,
                target,
                GenMode::Free,
                &layers,
                synth,
            );
            let mut gold = simlm::SchemaLinker::gold_elements(inst, target);
            gold.sort();
            (gold, trace.predicted_set())
        });
    let (golds, preds): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
    rts_core::metrics::linking_metrics(&golds, &preds)
}

/// Coverage/EAR of an mBPP over teacher-forced traces of a split.
/// Traces are synthesized lazily with exactly the layers the mBPP's
/// selected probes read — flags are bit-identical to the eager
/// full-stack path.
pub fn coverage_over_split(
    arts: &BenchArtifacts,
    mbpp: &Mbpp,
    split: &[benchgen::Instance],
    target: LinkTarget,
    seed: u64,
) -> CoverageMetrics {
    let layers = mbpp.layer_set();
    let scratches = || (BppScratch::default(), SynthScratch::default());
    let per_instance: Vec<Vec<(bool, bool)>> = par_map_with(split, scratches, |state, inst| {
        let (scratch, synth) = state;
        let mut rng = instance_rng(seed, inst.id);
        let mut vocab = Vocab::new();
        let trace = arts.linker.generate_with_layers(
            inst,
            &mut vocab,
            target,
            GenMode::TeacherForced,
            &layers,
            synth,
        );
        mbpp.flag_trace_with_scratch(&trace, &mut rng, scratch)
            .iter()
            .zip(&trace.steps)
            .map(|(p, s)| (*p, s.is_branch))
            .collect()
    });
    let flags: Vec<(bool, bool)> = per_instance.into_iter().flatten().collect();
    coverage_metrics(&flags)
}

/// Mean AUC of the selected probes evaluated on an arbitrary split
/// (probe scores vs teacher-forced branch labels). Scoring is batched
/// per (instance, probe): the trace's hidden states are packed once per
/// selected layer and pushed through one MLP forward.
pub fn selected_auc_on_split(
    arts: &BenchArtifacts,
    mbpp: &Mbpp,
    split: &[benchgen::Instance],
    target: LinkTarget,
) -> f64 {
    type InstanceScores = (Vec<Vec<f64>>, Vec<bool>);
    let layers = mbpp.layer_set();
    let scores_scratch = || {
        (
            SbppScratch::default(),
            Matrix::default(),
            SynthScratch::default(),
        )
    };
    let per_instance: Vec<InstanceScores> = par_map_with(split, scores_scratch, |state, inst| {
        let (scratch, packed, synth) = state;
        let mut vocab = Vocab::new();
        let trace = arts.linker.generate_with_layers(
            inst,
            &mut vocab,
            target,
            GenMode::TeacherForced,
            &layers,
            synth,
        );
        let labels: Vec<bool> = trace.steps.iter().map(|s| s.is_branch).collect();
        let scores: Vec<Vec<f64>> = mbpp
            .selected
            .iter()
            .map(|&i| {
                let sbpp = &mbpp.sbpps[i];
                trace.pack_layer_into(sbpp.layer, packed);
                sbpp.scores_batch(packed, scratch)
            })
            .collect();
        (scores, labels)
    });
    let mut per_layer_scores: Vec<Vec<f64>> = vec![Vec::new(); mbpp.selected.len()];
    let mut labels: Vec<bool> = Vec::new();
    for (scores, inst_labels) in per_instance {
        for (slot, s) in scores.into_iter().enumerate() {
            per_layer_scores[slot].extend(s);
        }
        labels.extend(inst_labels);
    }
    let mut total = 0.0;
    for scores in &per_layer_scores {
        total += tinynn::metrics::auc(scores, &labels);
    }
    total / per_layer_scores.len() as f64
}

//! Tables 5 and 6: RTS schema linking with abstention, the surrogate
//! filter, and human feedback.

use crate::context::{BenchArtifacts, Context};
use crate::report::Report;
use rts_core::abstention::{
    run_rts_linking_in, LinkScratch, MitigationPolicy, RtsConfig, RtsOutcome,
};
use rts_core::human::{Expertise, HumanOracle};
use rts_core::metrics::{abstention_metrics, AbstentionMetrics, AbstentionOutcome};
use rts_core::par::par_map_with;
use rts_core::pipeline::{run_joint_linking_in, JointOutcome};
use simlm::LinkTarget;

fn eval_policy(
    arts: &BenchArtifacts,
    split: &[benchgen::Instance],
    target: LinkTarget,
    policy: &MitigationPolicy<'_>,
    seed: u64,
) -> AbstentionMetrics {
    let config = RtsConfig {
        seed,
        corpus: arts.linker.corpus(),
        ..RtsConfig::default()
    };
    let mbpp = match target {
        LinkTarget::Tables => &arts.mbpp_tables,
        LinkTarget::Columns => &arts.mbpp_columns,
    };
    let outcomes: Vec<AbstentionOutcome> = par_map_with(split, LinkScratch::default, |sc, inst| {
        let meta = arts.bench.meta(&inst.db_name).expect("meta");
        let ctx = arts.contexts.get(&inst.db_name, target);
        let o = run_rts_linking_in(&arts.linker, mbpp, inst, meta, ctx, policy, &config, sc);
        AbstentionOutcome {
            abstained: o.abstained,
            correct: o.correct,
            would_be_correct: o.would_be_correct,
        }
    });
    abstention_metrics(&outcomes)
}

/// Table 5: mBPP-Abstention and Surrogate-filter rows, table & column
/// linking evaluated independently, on all three dataset splits.
pub fn table5(ctx: &Context) -> Report {
    let mut r = Report::new(
        "table5",
        "RTS Schema Linking (EM / TAR / FAR, %)",
        ctx.scale,
        ctx.seed,
    );
    // Paper values: method → dataset → (type → (EM, TAR, FAR)).
    #[allow(clippy::approx_constant)] // 6.28 is the paper's TAR, not τ
    let paper_abst = [
        [(98.89, 19.10, 12.77), (97.38, 22.01, 13.53)], // bird: table, column
        [(99.86, 6.51, 5.27), (97.73, 8.75, 7.46)],     // spider-dev
        [(99.67, 6.28, 4.98), (97.52, 9.25, 8.32)],     // spider-test
    ];
    let paper_surr = [
        [(90.80, 10.90, 2.2), (89.76, 14.34, 5.98)],
        [(96.77, 3.05, 1.70), (92.71, 3.70, 3.35)],
        [(95.47, 4.10, 2.03), (90.18, 4.63, 4.12)],
    ];
    let cases: [(&str, &BenchArtifacts, &[benchgen::Instance]); 3] = [
        ("Bird", ctx.bird(), &ctx.bird().bench.split.dev),
        ("Spider-dev", ctx.spider(), &ctx.spider().bench.split.dev),
        ("Spider-test", ctx.spider(), &ctx.spider().bench.split.test),
    ];
    for (ci, (name, arts, split)) in cases.into_iter().enumerate() {
        for (ti, target) in [LinkTarget::Tables, LinkTarget::Columns]
            .into_iter()
            .enumerate()
        {
            let kind = if ti == 0 { "Table" } else { "Column" };
            let m = eval_policy(
                arts,
                split,
                target,
                &MitigationPolicy::AbstainOnly,
                ctx.seed,
            );
            let (pe, pt, pf) = paper_abst[ci][ti];
            r.push(
                format!("mBPP-Abst {kind} {name} EM"),
                Some(pe),
                Some(m.exact_match * 100.0),
                "%",
            );
            r.push(
                format!("mBPP-Abst {kind} {name} TAR"),
                Some(pt),
                Some(m.tar * 100.0),
                "%",
            );
            r.push(
                format!("mBPP-Abst {kind} {name} FAR"),
                Some(pf),
                Some(m.far * 100.0),
                "%",
            );

            let policy = MitigationPolicy::Surrogate(&arts.surrogate);
            let m = eval_policy(arts, split, target, &policy, ctx.seed);
            let (pe, pt, pf) = paper_surr[ci][ti];
            r.push(
                format!("Surrogate {kind} {name} EM"),
                Some(pe),
                Some(m.exact_match * 100.0),
                "%",
            );
            r.push(
                format!("Surrogate {kind} {name} TAR"),
                Some(pt),
                Some(m.tar * 100.0),
                "%",
            );
            r.push(
                format!("Surrogate {kind} {name} FAR"),
                Some(pf),
                Some(m.far * 100.0),
                "%",
            );
        }
    }
    r.note("TAR/FAR follow the paper's prose semantics (displayed formulas are swapped; see metrics.rs).");
    r.note("Shape checks: EM(abstain) > EM(surrogate); FAR(surrogate) ≪ FAR(abstain); BIRD rates > Spider rates.");
    r
}

/// Joint-linking outcomes for a split under a human oracle.
pub fn joint_outcomes(
    arts: &BenchArtifacts,
    split: &[benchgen::Instance],
    oracle: &HumanOracle,
    seed: u64,
) -> Vec<JointOutcome> {
    let policy = MitigationPolicy::Human(oracle);
    let config = RtsConfig {
        seed,
        corpus: arts.linker.corpus(),
        ..RtsConfig::default()
    };
    par_map_with(split, LinkScratch::default, |scratch, inst| {
        run_joint_linking_in(
            &arts.linker,
            &arts.mbpp_tables,
            &arts.mbpp_columns,
            inst,
            &arts.bench,
            &arts.contexts,
            &policy,
            &config,
            scratch,
        )
    })
}

/// Summary statistics for Table 6 from joint outcomes.
pub struct JointSummary {
    pub em_tables: f64,
    pub em_columns: f64,
    pub tar: f64,
    pub far: f64,
}

pub fn summarise_joint(outcomes: &[JointOutcome]) -> JointSummary {
    let n = outcomes.len() as f64;
    let em_tables = outcomes.iter().filter(|o| o.tables.correct).count() as f64 / n;
    let em_columns = outcomes
        .iter()
        .filter(|o| o.columns_correct_conditioned())
        .count() as f64
        / n;
    // With human feedback nothing abstains; TAR/FAR account for *human
    // involvement* (the paper's reading: FAR = human involved though the
    // model could have answered alone).
    let tar = outcomes
        .iter()
        .filter(|o| o.intervened() && !o.would_be_correct())
        .count() as f64
        / n;
    let far = outcomes
        .iter()
        .filter(|o| o.intervened() && o.would_be_correct())
        .count() as f64
        / n;
    JointSummary {
        em_tables,
        em_columns,
        tar,
        far,
    }
}

/// Table 6: schema linking with (expert) human feedback, joint process.
pub fn table6(ctx: &Context) -> Report {
    let mut r = Report::new(
        "table6",
        "Schema Linking with Human Feedback (EM / TAR / FAR, %)",
        ctx.scale,
        ctx.seed,
    );
    let paper = [
        (96.90, 96.02, 18.95, 13.65),
        (98.93, 96.71, 6.46, 8.15),
        (99.02, 96.11, 6.61, 8.20),
    ];
    let oracle = HumanOracle::new(Expertise::Expert, ctx.seed ^ 0x11);
    let cases: [(&str, &BenchArtifacts, &[benchgen::Instance]); 3] = [
        ("Bird", ctx.bird(), &ctx.bird().bench.split.dev),
        ("Spider-dev", ctx.spider(), &ctx.spider().bench.split.dev),
        ("Spider-test", ctx.spider(), &ctx.spider().bench.split.test),
    ];
    for (ci, (name, arts, split)) in cases.into_iter().enumerate() {
        let outcomes = joint_outcomes(arts, split, &oracle, ctx.seed);
        let s = summarise_joint(&outcomes);
        let (pt, pc, ptar, pfar) = paper[ci];
        r.push(
            format!("{name} Table EM"),
            Some(pt),
            Some(s.em_tables * 100.0),
            "%",
        );
        r.push(
            format!("{name} Column EM"),
            Some(pc),
            Some(s.em_columns * 100.0),
            "%",
        );
        r.push(format!("{name} TAR"), Some(ptar), Some(s.tar * 100.0), "%");
        r.push(format!("{name} FAR"), Some(pfar), Some(s.far * 100.0), "%");
    }
    r.note("Joint TAR/FAR well below the sum of Table 5's per-stage rates — abstentions overlap (paper §4.3).");
    r
}

/// Per-policy abstention outcome dump used by exp_ablation and tests.
pub fn outcomes_for(
    arts: &BenchArtifacts,
    split: &[benchgen::Instance],
    target: LinkTarget,
    policy: &MitigationPolicy<'_>,
    seed: u64,
) -> Vec<RtsOutcome> {
    let config = RtsConfig {
        seed,
        corpus: arts.linker.corpus(),
        ..RtsConfig::default()
    };
    let mbpp = match target {
        LinkTarget::Tables => &arts.mbpp_tables,
        LinkTarget::Columns => &arts.mbpp_columns,
    };
    par_map_with(split, LinkScratch::default, |scratch, inst| {
        let meta = arts.bench.meta(&inst.db_name).expect("meta");
        let ctx = arts.contexts.get(&inst.db_name, target);
        run_rts_linking_in(
            &arts.linker,
            mbpp,
            inst,
            meta,
            ctx,
            policy,
            &config,
            scratch,
        )
    })
}

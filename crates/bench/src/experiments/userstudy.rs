//! Tables 8 and 9: the user study — schema-linking EM by participant
//! expertise, and raw answer accuracy by expertise × difficulty.
//!
//! Protocol per §4.3: 100 questions sampled across the three difficulty
//! levels, two groups of 10 participants (beginners: no SQL experience;
//! experts: SQL-proficient), each participant drives the RTS
//! human-feedback loop on every question.

use super::abstain::{joint_outcomes, summarise_joint};
use crate::context::Context;
use crate::report::Report;
use benchgen::{Difficulty, Instance};
use rts_core::human::{Expertise, HumanOracle};

/// Deterministically sample ~100 questions stratified by difficulty.
pub fn sample_questions(instances: &[Instance], per_level: usize) -> Vec<Instance> {
    let mut out = Vec::with_capacity(per_level * 3);
    for d in Difficulty::ALL {
        out.extend(
            instances
                .iter()
                .filter(|i| i.difficulty == d)
                .take(per_level)
                .cloned(),
        );
    }
    out
}

/// Table 8: final schema-linking EM by expertise group.
pub fn table8(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "table8",
        "Schema Linking Performance by Expertise (BIRD, 100 questions × 10 participants)",
        ctx.scale,
        ctx.seed,
    );
    let questions = sample_questions(&arts.bench.split.dev, 34);
    let paper = [(96.2, 93.3), (98.3, 95.8)]; // (table EM, column EM)
    for (gi, expertise) in [Expertise::Beginner, Expertise::Expert]
        .into_iter()
        .enumerate()
    {
        let mut em_t = 0.0;
        let mut em_c = 0.0;
        const N_PARTICIPANTS: u64 = 10;
        for participant in 0..N_PARTICIPANTS {
            let oracle = HumanOracle::new(expertise, ctx.seed ^ (participant * 7919 + 13));
            let outcomes = joint_outcomes(arts, &questions, &oracle, ctx.seed ^ participant);
            let s = summarise_joint(&outcomes);
            em_t += s.em_tables;
            em_c += s.em_columns;
        }
        em_t /= N_PARTICIPANTS as f64;
        em_c /= N_PARTICIPANTS as f64;
        let label = if gi == 0 { "Beginner" } else { "Expert" };
        r.push(
            format!("{label} Table EM"),
            Some(paper[gi].0),
            Some(em_t * 100.0),
            "%",
        );
        r.push(
            format!("{label} Column EM"),
            Some(paper[gi].1),
            Some(em_c * 100.0),
            "%",
        );
    }
    r.note("Each participant is an independent oracle seed; EM averaged over the 10 participants per group.");
    r
}

/// Table 9: accuracy answering RTS-generated relevance questions by
/// expertise and difficulty.
pub fn table9(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "table9",
        "Accuracy on RTS questions by expertise × difficulty (%)",
        ctx.scale,
        ctx.seed,
    );
    let questions = sample_questions(&arts.bench.split.dev, 34);
    // Paper: (table acc, column acc) per difficulty, beginner then expert.
    let paper_beginner = [(100.0, 100.0), (96.0, 92.0), (93.0, 89.0)];
    let paper_expert = [(100.0, 100.0), (100.0, 97.0), (99.0, 94.0)];
    for (expertise, label, paper) in [
        (Expertise::Beginner, "Beginner", paper_beginner),
        (Expertise::Expert, "Expert", paper_expert),
    ] {
        for (di, difficulty) in Difficulty::ALL.into_iter().enumerate() {
            let mut table_correct = 0usize;
            let mut table_total = 0usize;
            let mut col_correct = 0usize;
            let mut col_total = 0usize;
            for participant in 0..10u64 {
                let oracle = HumanOracle::new(expertise, ctx.seed ^ (participant * 7919 + 13));
                for inst in questions.iter().filter(|q| q.difficulty == difficulty) {
                    // Relevance probes exactly as the study posed them:
                    // a gold element (true answer: relevant) and one
                    // confusable (true answer: irrelevant) per link.
                    for link in &inst.links {
                        let is_table = link.element.is_table();
                        let gold = link.element.to_string();
                        let ok = oracle.judge_relevance(inst, &gold, is_table, true);
                        if is_table {
                            table_total += 1;
                            table_correct += ok as usize;
                        } else {
                            col_total += 1;
                            col_correct += ok as usize;
                        }
                        if let Some(c) = link.confusables.first() {
                            let truly = if c.alt.is_table() {
                                inst.gold_tables.contains(&c.alt.table)
                            } else {
                                inst.gold_columns.iter().any(|(t, col)| {
                                    *t == c.alt.table && Some(col) == c.alt.column.as_ref()
                                })
                            };
                            let answer = oracle.judge_relevance(
                                inst,
                                &c.alt.to_string(),
                                c.alt.is_table(),
                                truly,
                            );
                            let ok = answer == truly;
                            if c.alt.is_table() {
                                table_total += 1;
                                table_correct += ok as usize;
                            } else {
                                col_total += 1;
                                col_correct += ok as usize;
                            }
                        }
                    }
                }
            }
            let acc_t = table_correct as f64 / table_total.max(1) as f64 * 100.0;
            let acc_c = col_correct as f64 / col_total.max(1) as f64 * 100.0;
            let d = difficulty.label();
            r.push(
                format!("{label} Table {d}"),
                Some(paper[di].0),
                Some(acc_t),
                "%",
            );
            r.push(
                format!("{label} Column {d}"),
                Some(paper[di].1),
                Some(acc_c),
                "%",
            );
        }
    }
    r.note("Answer accuracy gap between groups widens with difficulty, and columns are harder than tables.");
    r
}

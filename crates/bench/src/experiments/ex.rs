//! Tables 1 and 7: execution accuracy of downstream SQL generation
//! under different schema-linking regimes.

use super::abstain::joint_outcomes;
use crate::context::Context;
use crate::report::Report;
use rts_core::human::{Expertise, HumanOracle};
use rts_core::pipeline::{measure_ex, SchemaSource};
use rts_core::sqlgen::{ProvidedSchema, SqlGenModel};
use std::collections::HashMap;

/// Table 1: the motivating experiment — EX as a function of schema
/// configuration on BIRD dev.
pub fn table1(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "table1",
        "Text-to-SQL EX by schema configuration (BIRD dev)",
        ctx.scale,
        ctx.seed,
    );
    let generator = SqlGenModel::deepseek_7b("bird", ctx.seed ^ 0xEE);
    let dev = &arts.bench.split.dev;
    let golden = measure_ex(&arts.bench, dev, &generator, &SchemaSource::Golden);
    let mid = measure_ex(
        &arts.bench,
        dev,
        &generator,
        &SchemaSource::CorrectTablesFullColumns,
    );
    let full = measure_ex(&arts.bench, dev, &generator, &SchemaSource::Full);
    r.push(
        "Correct tables + Correct columns",
        Some(72.4),
        Some(golden * 100.0),
        "EX%",
    );
    r.push(
        "Correct tables + Full columns",
        None,
        Some(mid * 100.0),
        "EX%",
    );
    r.push(
        "Full tables + Full columns",
        Some(64.52),
        Some(full * 100.0),
        "EX%",
    );
    r.push(
        "Best reported method (leaderboard cite)",
        Some(73.01),
        None,
        "EX%",
    );
    r.note("Paper's Table 1 uses CHESS + a 34B model; ours is the Deepseek-7B-class simulator, so absolute levels sit near Table 7's 66.21 instead — the golden ≫ full gap is the reproduced shape.");
    r
}

/// Table 7: EX for Deepseek-7B and CodeS-15B under golden / RTS /
/// baseline schemas, across all three dataset splits.
pub fn table7(ctx: &Context) -> Report {
    let mut r = Report::new(
        "table7",
        "Downstream Text-to-SQL EX by schema source (%)",
        ctx.scale,
        ctx.seed,
    );
    let oracle = HumanOracle::new(Expertise::Expert, ctx.seed ^ 0x11);
    // (model ctor, paper EX rows) — paper: bird/spider-dev/spider-test ×
    // golden/rts/baseline.
    type Ctor = fn(&str, u64) -> SqlGenModel;
    let models: [(&str, Ctor, [[f64; 3]; 3], &str); 2] = [
        (
            "Deepseek-7B",
            SqlGenModel::deepseek_7b as Ctor,
            [
                [66.21, 64.72, 55.8],
                [90.13, 88.90, 85.50],
                [90.02, 88.20, 84.4],
            ],
            "DTS-SQL",
        ),
        (
            "CodeS-15B",
            SqlGenModel::codes_15b as Ctor,
            [
                [66.27, 65.19, 58.47],
                [90.02, 89.10, 84.90],
                [90.10, 88.68, 85.01],
            ],
            "CodeS",
        ),
    ];
    let cases: [(
        &str,
        &str,
        &crate::context::BenchArtifacts,
        &[benchgen::Instance],
    ); 3] = [
        ("Bird", "bird", ctx.bird(), &ctx.bird().bench.split.dev),
        (
            "Spider-dev",
            "spider",
            ctx.spider(),
            &ctx.spider().bench.split.dev,
        ),
        (
            "Spider-test",
            "spider",
            ctx.spider(),
            &ctx.spider().bench.split.test,
        ),
    ];
    for (model_name, ctor, paper, baseline_name) in models {
        for (ci, (split_name, bench_tag, arts, split)) in cases.iter().enumerate() {
            let generator = ctor(bench_tag, ctx.seed ^ 0xEE);
            // RTS schemas from human-feedback joint linking.
            let outcomes = joint_outcomes(arts, split, &oracle, ctx.seed);
            let schemas: HashMap<u64, ProvidedSchema> = split
                .iter()
                .zip(&outcomes)
                .map(|(inst, o)| (inst.id, o.provided_schema()))
                .collect();
            let golden = measure_ex(&arts.bench, split, &generator, &SchemaSource::Golden);
            let rts = measure_ex(
                &arts.bench,
                split,
                &generator,
                &SchemaSource::Rts(&|inst| schemas[&inst.id].clone()),
            );
            let full = measure_ex(&arts.bench, split, &generator, &SchemaSource::Full);
            r.push(
                format!("{model_name} Golden {split_name}"),
                Some(paper[ci][0]),
                Some(golden * 100.0),
                "EX%",
            );
            r.push(
                format!("{model_name} RTS {split_name}"),
                Some(paper[ci][1]),
                Some(rts * 100.0),
                "EX%",
            );
            r.push(
                format!("{model_name} {baseline_name} (full schema) {split_name}"),
                Some(paper[ci][2]),
                Some(full * 100.0),
                "EX%",
            );
        }
    }
    r.note("Shape: Golden ≥ RTS ≫ full-schema baseline on every split and both models (Table 7's message).");
    r.note("Baselines DTS-SQL / CodeS are the same simulated generators given the full schema, mirroring no-linking pipelines.");
    r
}

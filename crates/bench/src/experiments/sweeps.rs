//! Figures 6 and 7: coverage / EAR sweeps over the error level α, the
//! probe count k, and the merge method.

use super::coverage_over_split;
use crate::context::Context;
use crate::report::Report;
use rts_core::bpp::MergeMethod;
use simlm::LinkTarget;

/// Figure 6: coverage vs EAR across error levels, for table and column
/// mBPPs (BIRD dev, as in the paper's ablation).
pub fn figure6(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "figure6",
        "Coverage vs EAR per error level α (BIRD dev)",
        ctx.scale,
        ctx.seed,
    );
    let alphas = [0.02, 0.05, 0.10, 0.15];
    for (target, mbpp, kind) in [
        (LinkTarget::Tables, &arts.mbpp_tables, "table"),
        (LinkTarget::Columns, &arts.mbpp_columns, "column"),
    ] {
        for &alpha in &alphas {
            let m = mbpp.with_alpha(alpha);
            let cov = coverage_over_split(arts, &m, &arts.bench.split.dev, target, ctx.seed ^ 0xF6);
            // The paper's guarantee line: coverage must dominate 1 − α.
            r.push(
                format!(
                    "{kind} α={alpha:.2} coverage (≥ {:.0})",
                    (1.0 - alpha) * 100.0
                ),
                Some((1.0 - alpha) * 100.0),
                Some(cov.coverage * 100.0),
                "%",
            );
            r.push(
                format!("{kind} α={alpha:.2} EAR"),
                None,
                Some(cov.ear * 100.0),
                "%",
            );
        }
    }
    r.note("Paper check (Fig 6): empirical coverage envelopes the theoretical 1−α line and flattens for small α.");
    r.note("Beyond α≈0.15 coverage drops under the line (column probes saturate; the calibration quantile degenerates) — the paper likewise reports reliability specifically for small α (<0.15).");
    r
}

/// Figure 7: coverage vs EAR across k for the two aggregation methods
/// (table linking, α = 0.1).
pub fn figure7(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "figure7",
        "Coverage vs EAR per k: random permutation vs majority vote (BIRD dev, tables)",
        ctx.scale,
        ctx.seed,
    );
    let n_layers = arts.mbpp_tables.sbpps.len();
    let ks: Vec<usize> = [1usize, 3, 5, 7, 9, 12, 15, 20, 25, 30]
        .iter()
        .copied()
        .filter(|&k| k <= n_layers)
        .collect();
    for (method, tag) in [
        (MergeMethod::RandomPermutation, "perm"),
        (MergeMethod::MajorityVote { theta: 0.5 }, "vote"),
    ] {
        for &k in &ks {
            let m = arts.mbpp_tables.with_k(k).with_method(method);
            let cov = coverage_over_split(
                arts,
                &m,
                &arts.bench.split.dev,
                LinkTarget::Tables,
                ctx.seed ^ 0xF7,
            );
            r.push(
                format!("{tag} k={k} coverage"),
                None,
                Some(cov.coverage * 100.0),
                "%",
            );
            r.push(format!("{tag} k={k} EAR"), None, Some(cov.ear * 100.0), "%");
        }
    }
    r.note("Paper check (Fig 7): permutation keeps coverage/EAR nearly flat in k; the majority vote degrades once weak (low-AUC) layers join at large k.");
    r
}

//! Ablations beyond the paper's: probe depth, conformal variant, layer
//! selection policy, and merge-method prediction-set sizes. These cover
//! the design choices DESIGN.md calls out.

use super::coverage_over_split;
use crate::context::Context;
use crate::report::Report;
use conformal::LabelSet;
use rts_core::bpp::{ConformalKind, Mbpp, MbppConfig, MergeMethod, ProbeConfig, SbppScratch};
use rts_core::par::par_map_with;
use simlm::{GenMode, LinkTarget, SynthScratch, Vocab};
use tinynn::Matrix;

/// Probe-depth ablation: logistic vs 1-hidden vs 2-hidden probes.
pub fn ablation_probe_depth(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "ablation_probe_depth",
        "Probe depth ablation (BIRD tables, α=0.1)",
        ctx.scale,
        ctx.seed,
    );
    for (hidden, label) in [
        (vec![], "logistic (0 hidden)"),
        (vec![16], "1 hidden layer (paper)"),
        (vec![32, 16], "2 hidden layers"),
    ] {
        let cfg = MbppConfig {
            probe: ProbeConfig {
                hidden,
                seed: ctx.seed ^ 0xAB,
                ..ProbeConfig::default()
            },
            ..MbppConfig::default()
        };
        let mbpp = Mbpp::train(&arts.branch_tables, &cfg);
        let cov = coverage_over_split(
            arts,
            &mbpp,
            &arts.bench.split.dev,
            LinkTarget::Tables,
            ctx.seed ^ 0xA1,
        );
        r.push(
            format!("{label} AUC"),
            None,
            Some(mbpp.mean_selected_auc() * 100.0),
            "AUC%",
        );
        r.push(
            format!("{label} coverage"),
            None,
            Some(cov.coverage * 100.0),
            "%",
        );
        r.push(format!("{label} EAR"), None, Some(cov.ear * 100.0), "%");
    }
    r.note("The branching-risk direction is linear, so even a logistic probe is competitive; depth buys little.");
    r
}

/// Conformal-variant ablation: split CP vs KNN-weighted non-exchangeable.
pub fn ablation_conformal(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "ablation_conformal",
        "Exchangeable vs non-exchangeable conformal (BIRD tables, α=0.1)",
        ctx.scale,
        ctx.seed,
    );
    for (kind, label) in [
        (ConformalKind::Split, "split conformal"),
        (
            ConformalKind::Knn { k: 100, tau: 60.0 },
            "KNN-weighted (Barber et al.)",
        ),
    ] {
        let cfg = MbppConfig {
            probe: ProbeConfig {
                conformal: kind,
                seed: ctx.seed ^ 0xAC,
                ..ProbeConfig::default()
            },
            ..MbppConfig::default()
        };
        let mbpp = Mbpp::train(&arts.branch_tables, &cfg);
        let cov = coverage_over_split(
            arts,
            &mbpp,
            &arts.bench.split.dev,
            LinkTarget::Tables,
            ctx.seed ^ 0xA2,
        );
        r.push(
            format!("{label} coverage"),
            None,
            Some(cov.coverage * 100.0),
            "%",
        );
        r.push(format!("{label} EAR"), None, Some(cov.ear * 100.0), "%");
    }
    r.note("Calibration and dev are exchangeable here, so the localised variant mainly costs compute; it pays off only under drift.");
    r
}

/// Layer-selection ablation: top-k by AUC vs random-k.
pub fn ablation_layer_selection(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "ablation_layer_selection",
        "Top-k AUC layer selection vs random layers (BIRD tables, α=0.1, k=5)",
        ctx.scale,
        ctx.seed,
    );
    let top = &arts.mbpp_tables;
    let rand = top.with_random_layers(5, ctx.seed ^ 0xAD);
    for (mbpp, label) in [(top, "top-5 by AUC"), (&rand, "random 5 layers")] {
        let cov = coverage_over_split(
            arts,
            mbpp,
            &arts.bench.split.dev,
            LinkTarget::Tables,
            ctx.seed ^ 0xA3,
        );
        r.push(
            format!("{label} AUC"),
            None,
            Some(mbpp.mean_selected_auc() * 100.0),
            "AUC%",
        );
        r.push(
            format!("{label} coverage"),
            None,
            Some(cov.coverage * 100.0),
            "%",
        );
        r.push(format!("{label} EAR"), None, Some(cov.ear * 100.0), "%");
    }
    r.note("Random layers drag in uninformative early layers; AUC-ranked selection is what makes k=5 sufficient.");
    r
}

/// Merge-method set sizes: |C| distributions for permutation vs votes.
pub fn ablation_merge_sets(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "ablation_merge_sets",
        "Merged prediction-set sizes by method (BIRD tables, α=0.1, k=5)",
        ctx.scale,
        ctx.seed,
    );
    let methods: [(MergeMethod, &str); 4] = [
        (MergeMethod::RandomPermutation, "random permutation"),
        (MergeMethod::MajorityVote { theta: 0.3 }, "vote θ=0.3"),
        (MergeMethod::MajorityVote { theta: 0.5 }, "vote θ=0.5"),
        (MergeMethod::MajorityVote { theta: 0.7 }, "vote θ=0.7"),
    ];
    let take = arts.bench.split.dev.len().min(400);
    let sample = &arts.bench.split.dev[..take];
    for (method, label) in methods {
        let mbpp = arts.mbpp_tables.with_method(method);
        // Per-instance RNG (seed ⊕ id) keeps the permutation merge
        // deterministic under the instance-parallel fan-out; per-probe
        // batched scoring replaces the per-token predict_set calls, and
        // traces carry only the selected probes' layers.
        let layers = mbpp.layer_set();
        let stats = par_map_with(sample, SynthScratch::default, |synth, inst| {
            let mut rng = super::instance_rng(ctx.seed ^ 0xA4, inst.id);
            let mut scratch = SbppScratch::default();
            let mut packed = Matrix::default();
            let mut vocab = Vocab::new();
            let trace = arts.linker.generate_with_layers(
                inst,
                &mut vocab,
                LinkTarget::Tables,
                GenMode::TeacherForced,
                &layers,
                synth,
            );
            let n_tokens = trace.steps.len();
            let sets_per_probe: Vec<Vec<LabelSet>> = mbpp
                .selected
                .iter()
                .map(|&i| {
                    let sbpp = &mbpp.sbpps[i];
                    trace.pack_layer_into(sbpp.layer, &mut packed);
                    sbpp.predict_sets_batch(&packed, &mut scratch)
                })
                .collect();
            let mut total_size = 0usize;
            let mut flagged = 0usize;
            for t in 0..n_tokens {
                let sets: Vec<LabelSet> = sets_per_probe
                    .iter()
                    .map(|probe_sets| probe_sets[t])
                    .collect();
                let merged = match method {
                    MergeMethod::MajorityVote { theta } => {
                        conformal::majority_vote(&sets, theta, 2)
                    }
                    MergeMethod::RandomPermutation => {
                        conformal::random_permutation_merge(&sets, 2, &mut rng)
                    }
                };
                total_size += merged.len();
                flagged += merged.contains(1) as usize;
            }
            (total_size, flagged, n_tokens)
        });
        let total_size: usize = stats.iter().map(|s| s.0).sum();
        let flagged: usize = stats.iter().map(|s| s.1).sum();
        let n: usize = stats.iter().map(|s| s.2).sum();
        r.push(
            format!("{label} mean |C|"),
            None,
            Some(total_size as f64 / n as f64),
            "labels",
        );
        r.push(
            format!("{label} flag rate"),
            None,
            Some(flagged as f64 / n as f64 * 100.0),
            "%",
        );
    }
    r.note("Theorem 3 in practice: the permutation merge's sets are never larger than the θ=0.5 vote's.");
    r
}

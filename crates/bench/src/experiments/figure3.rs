//! Figure 3: (a) next-token softmax distribution for correct vs
//! incorrect generations; (b) number of branching points per erroneous
//! generation.

use crate::context::Context;
use crate::report::Report;
use rts_core::par::par_map_with;
use simlm::{GenMode, LayerSet, LinkTarget, SynthScratch, Vocab};

/// Figure 3a: the over-confidence histogram. Reported as the share of
/// tokens with softmax probability above 0.9 / 0.95 / 0.99, per class.
pub fn figure3a(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "figure3a",
        "Softmax probability concentration (BIRD dev, teacher forced)",
        ctx.scale,
        ctx.seed,
    );
    let mut branch = Vec::new();
    let mut clean = Vec::new();
    // Only softmax probabilities and branch labels are read — skip
    // hidden-state synthesis entirely.
    let layers = LayerSet::none();
    let per_instance = par_map_with(
        &arts.bench.split.dev,
        SynthScratch::default,
        |synth, inst| {
            let mut vocab = Vocab::new();
            let trace = arts.linker.generate_with_layers(
                inst,
                &mut vocab,
                LinkTarget::Tables,
                GenMode::TeacherForced,
                &layers,
                synth,
            );
            trace
                .steps
                .iter()
                .map(|s| (s.is_branch, s.softmax_prob))
                .collect::<Vec<_>>()
        },
    );
    for (is_branch, prob) in per_instance.into_iter().flatten() {
        if is_branch {
            branch.push(prob);
        } else {
            clean.push(prob);
        }
    }
    let share = |v: &[f64], cut: f64| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().filter(|&&p| p >= cut).count() as f64 / v.len() as f64 * 100.0
        }
    };
    // The paper's figure shows both classes piling up at 1; it prints no
    // numeric values, so the paper column is the qualitative claim
    // "≈100% above 0.9" encoded as 100.
    for (label, v) in [
        ("correct tokens", &clean),
        ("incorrect (branching) tokens", &branch),
    ] {
        r.push(
            format!("{label} ≥ 0.90"),
            Some(100.0),
            Some(share(v, 0.90)),
            "%",
        );
        r.push(format!("{label} ≥ 0.95"), None, Some(share(v, 0.95)), "%");
        r.push(format!("{label} ≥ 0.99"), None, Some(share(v, 0.99)), "%");
    }
    let mean_b = branch.iter().sum::<f64>() / branch.len().max(1) as f64;
    let mean_c = clean.iter().sum::<f64>() / clean.len().max(1) as f64;
    r.push("mean softmax, correct", None, Some(mean_c * 100.0), "×100");
    r.push(
        "mean softmax, incorrect",
        None,
        Some(mean_b * 100.0),
        "×100",
    );
    r.note("Shape check: both classes concentrate near 1, so logit thresholding cannot find branches (Fig 3a).");
    r
}

/// Figure 3b: branching points per erroneous generation.
pub fn figure3b(ctx: &Context) -> Report {
    let arts = ctx.bird();
    let mut r = Report::new(
        "figure3b",
        "Branching points per erroneous generation (BIRD dev)",
        ctx.scale,
        ctx.seed,
    );
    let mut histogram = [0usize; 5]; // 1, 2, 3, 4, 5+
    let mut erroneous = 0usize;
    // Count across both linking stages, as the paper traces full
    // schema-linking answers. Branch counts need no hidden state.
    let layers = LayerSet::none();
    let branch_counts = par_map_with(
        &arts.bench.split.dev,
        SynthScratch::default,
        |synth, inst| {
            let mut vocab = Vocab::new();
            let t = arts.linker.generate_with_layers(
                inst,
                &mut vocab,
                LinkTarget::Tables,
                GenMode::TeacherForced,
                &layers,
                synth,
            );
            let mut v2 = Vocab::new();
            let c = arts.linker.generate_with_layers(
                inst,
                &mut v2,
                LinkTarget::Columns,
                GenMode::TeacherForced,
                &layers,
                synth,
            );
            t.n_branches + c.n_branches
        },
    );
    for n in branch_counts {
        if n > 0 {
            erroneous += 1;
            histogram[(n - 1).min(4)] += 1;
        }
    }
    let pct = |k: usize| histogram[k] as f64 / erroneous.max(1) as f64 * 100.0;
    // Paper: >90% of erroneous generations have 1–2 branching points.
    r.push("1 branching point", None, Some(pct(0)), "%");
    r.push("2 branching points", None, Some(pct(1)), "%");
    r.push("3 branching points", None, Some(pct(2)), "%");
    r.push("4 branching points", None, Some(pct(3)), "%");
    r.push("5+ branching points", None, Some(pct(4)), "%");
    r.push(
        "share with ≤ 2 (paper: >90)",
        Some(90.0),
        Some(pct(0) + pct(1)),
        "%",
    );
    r.push(
        "erroneous generations",
        None,
        Some(erroneous as f64),
        "count",
    );
    r
}

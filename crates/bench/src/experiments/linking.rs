//! Tables 2, 3 and 4: baseline schema-linking quality, sBPP AUC, and
//! surrogate accuracy.

use super::{free_linking_metrics, selected_auc_on_split};
use crate::context::Context;
use crate::report::Report;
use simlm::LinkTarget;

/// Table 2: schema linking model EM / precision / recall.
pub fn table2(ctx: &Context) -> Report {
    let mut r = Report::new(
        "table2",
        "Schema Linking Model Performance",
        ctx.scale,
        ctx.seed,
    );
    let cases: [(&str, &crate::context::BenchArtifacts, &[benchgen::Instance]); 3] = [
        ("Bird", ctx.bird(), &ctx.bird().bench.split.dev),
        ("Spider-dev", ctx.spider(), &ctx.spider().bench.split.dev),
        ("Spider-test", ctx.spider(), &ctx.spider().bench.split.test),
    ];
    // Paper values: (table EM, P, R), (column EM, P, R) per dataset.
    let paper = [
        [(79.70, 92.85, 95.00), (75.32, 89.87, 88.79)],
        [(93.71, 98.17, 96.95), (88.98, 94.41, 94.09)],
        [(92.72, 97.64, 96.74), (87.99, 92.21, 93.02)],
    ];
    for (ci, (name, arts, split)) in cases.into_iter().enumerate() {
        for (ti, target) in [LinkTarget::Tables, LinkTarget::Columns]
            .into_iter()
            .enumerate()
        {
            let m = free_linking_metrics(arts, split, target);
            let kind = if ti == 0 { "Table" } else { "Column" };
            let (pe, pp, pr) = paper[ci][ti];
            r.push(
                format!("{kind} {name} EM"),
                Some(pe),
                Some(m.exact_match * 100.0),
                "%",
            );
            r.push(
                format!("{kind} {name} Precision"),
                Some(pp),
                Some(m.precision * 100.0),
                "%",
            );
            r.push(
                format!("{kind} {name} Recall"),
                Some(pr),
                Some(m.recall * 100.0),
                "%",
            );
        }
    }
    r.note("Workload substituted: synthetic BIRD/Spider-shaped benchmarks (see DESIGN.md §2).");
    r
}

/// Table 3: average sBPP AUC for the selected probes.
pub fn table3(ctx: &Context) -> Report {
    let mut r = Report::new("table3", "Average sBPP AUC (%)", ctx.scale, ctx.seed);
    let paper = [(97.16, 96.70), (98.43, 96.90), (97.90, 96.60)];
    let cases: [(&str, &crate::context::BenchArtifacts, &[benchgen::Instance]); 3] = [
        ("Bird", ctx.bird(), &ctx.bird().bench.split.dev),
        ("Spider-dev", ctx.spider(), &ctx.spider().bench.split.dev),
        ("Spider-test", ctx.spider(), &ctx.spider().bench.split.test),
    ];
    for (ci, (name, arts, split)) in cases.into_iter().enumerate() {
        let auc_t = selected_auc_on_split(arts, &arts.mbpp_tables, split, LinkTarget::Tables);
        let auc_c = selected_auc_on_split(arts, &arts.mbpp_columns, split, LinkTarget::Columns);
        r.push(
            format!("Table {name}"),
            Some(paper[ci].0),
            Some(auc_t * 100.0),
            "AUC%",
        );
        r.push(
            format!("Column {name}"),
            Some(paper[ci].1),
            Some(auc_c * 100.0),
            "AUC%",
        );
    }
    r.note("AUC of the k=5 selected probes evaluated on teacher-forced dev/test traces.");
    r
}

/// Table 4: surrogate model classification accuracy.
pub fn table4(ctx: &Context) -> Report {
    let mut r = Report::new(
        "table4",
        "Surrogate Model Accuracy (%)",
        ctx.scale,
        ctx.seed,
    );
    let paper = [(92.37, 94.06), (96.45, 96.30), (96.02, 96.00)];
    let cases: [(&str, &crate::context::BenchArtifacts, &[benchgen::Instance]); 3] = [
        ("Bird", ctx.bird(), &ctx.bird().bench.split.dev),
        ("Spider-dev", ctx.spider(), &ctx.spider().bench.split.dev),
        ("Spider-test", ctx.spider(), &ctx.spider().bench.split.test),
    ];
    for (ci, (name, arts, split)) in cases.into_iter().enumerate() {
        let acc_t = arts.surrogate.accuracy(split, true);
        let acc_c = arts.surrogate.accuracy(split, false);
        r.push(
            format!("Table {name}"),
            Some(paper[ci].0),
            Some(acc_t * 100.0),
            "%",
        );
        r.push(
            format!("Column {name}"),
            Some(paper[ci].1),
            Some(acc_c * 100.0),
            "%",
        );
    }
    r.note("Surrogate = simulated fine-tuned relevance classifier (noisy semantic oracle + trained MLP).");
    r
}

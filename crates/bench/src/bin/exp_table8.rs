//! Regenerates Table 8: schema linking EM by participant expertise.
use rts_bench::{experiments::userstudy::table8, Context, Which};

fn main() {
    let ctx = Context::load(Which::Bird, rts_bench::env_scale(), rts_bench::env_seed());
    let report = table8(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

//! Scratch diagnostics for BPP calibration (not an experiment binary).

use benchgen::BenchmarkProfile;
use rts_core::bpp::{Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use simlm::{GenMode, LinkTarget, SchemaLinker, Vocab};
use tinynn::rng::SplitMix64;

fn quantiles(label: &str, v: &mut [f64]) {
    if v.is_empty() {
        println!("{label}: (empty)");
        return;
    }
    v.sort_by(f64::total_cmp);
    let q = |p: f64| v[((v.len() - 1) as f64 * p) as usize];
    println!(
        "{label}: n={} q05={:.3} q25={:.3} q50={:.3} q75={:.3} q90={:.3} q99={:.3}",
        v.len(),
        q(0.05),
        q(0.25),
        q(0.50),
        q(0.75),
        q(0.90),
        q(0.99)
    );
}

fn main() {
    let target = match std::env::var("DIAG_TARGET").as_deref() {
        Ok("columns") => LinkTarget::Columns,
        _ => LinkTarget::Tables,
    };
    let bench = BenchmarkProfile::bird_like()
        .scaled(0.12)
        .generate(0xC0FFEE);
    let model = SchemaLinker::new("bird", 0xC0FFEE ^ 0x11CC);
    let cap = (bench.split.train.len() / 4).max(400);
    let ds = BranchDataset::build(&model, &bench.split.train, target, cap);
    println!(
        "tokens={} pos_rate={:.4}",
        ds.n_tokens(),
        ds.positive_rate()
    );
    let cfg = MbppConfig {
        probe: ProbeConfig {
            seed: 0xC0FFEE ^ 0xB0,
            ..Default::default()
        },
        ..Default::default()
    };
    let mbpp = Mbpp::train(&ds, &cfg);
    println!(
        "selected layers: {:?} (mean AUC {:.4})",
        mbpp.selected
            .iter()
            .map(|&i| mbpp.sbpps[i].layer)
            .collect::<Vec<_>>(),
        mbpp.mean_selected_auc()
    );

    // Class-wise probe score quantiles at the best and a weak layer.
    let strong = &mbpp.sbpps[mbpp.selected[0]];
    let weak = &mbpp.sbpps[0];
    for (name, sbpp) in [("strong", strong), ("weak", weak)] {
        let mut branch = Vec::new();
        let mut risky = Vec::new();
        let mut ordinary = Vec::new();
        let mut wide = 0usize;
        let mut n = 0usize;
        for inst in bench.split.dev.iter() {
            let mut vocab = Vocab::new();
            let trace = model.generate(inst, &mut vocab, target, GenMode::TeacherForced);
            let mut seen_elem: Option<usize> = None;
            for step in &trace.steps {
                let p = sbpp.score(&step.hidden[sbpp.layer]);
                let first_of_element = step.element_idx.is_some() && step.element_idx != seen_elem;
                if step.element_idx.is_some() {
                    seen_elem = step.element_idx;
                }
                if step.is_branch {
                    branch.push(p);
                } else if first_of_element {
                    risky.push(p);
                } else {
                    ordinary.push(p);
                }
                let set = sbpp.predict_set(&step.hidden[sbpp.layer]);
                wide += (set.len() == 2) as usize;
                n += 1;
            }
        }
        println!("--- layer {} ({name}), AUC {:.4}", sbpp.layer, sbpp.auc);
        quantiles("  branch p(1)", &mut branch);
        quantiles("  risky  p(1)", &mut risky);
        quantiles("  ordin. p(1)", &mut ordinary);
        println!("  wide-set share: {:.1}%", wide as f64 / n as f64 * 100.0);
        for alpha in [0.02, 0.1, 0.3] {
            let s2 = sbpp.with_alpha(alpha);
            let mut det = 0usize;
            let mut tot = 0usize;
            for inst in bench.split.dev.iter() {
                let mut vocab = Vocab::new();
                let trace = model.generate(inst, &mut vocab, target, GenMode::TeacherForced);
                for step in trace.steps.iter().filter(|s| s.is_branch) {
                    det += s2.predict_set(&step.hidden[s2.layer]).contains(1) as usize;
                    tot += 1;
                }
            }
            print!(
                "  α={alpha}: layer-cov {:.2} |",
                det as f64 / tot.max(1) as f64
            );
        }
        println!();
    }

    // Full mBPP coverage/EAR across α.
    for alpha in [0.02, 0.05, 0.1, 0.2, 0.3] {
        let m = mbpp.with_alpha(alpha);
        let mut rng = SplitMix64::new(1);
        let mut flags = Vec::new();
        for inst in bench.split.dev.iter() {
            let mut vocab = Vocab::new();
            let trace = model.generate(inst, &mut vocab, target, GenMode::TeacherForced);
            for (p, s) in m.flag_trace(&trace, &mut rng).iter().zip(&trace.steps) {
                flags.push((*p, s.is_branch));
            }
        }
        let cov = rts_core::metrics::coverage_metrics(&flags);
        println!(
            "mBPP α={alpha}: coverage {:.3} EAR {:.4} branches {}",
            cov.coverage, cov.ear, cov.n_branches
        );
    }
}

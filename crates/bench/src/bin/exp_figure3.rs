//! Regenerates Figure 3: softmax over-confidence (a) and branching-point
//! counts per erroneous generation (b).
use rts_bench::experiments::figure3::{figure3a, figure3b};
use rts_bench::{Context, Which};

fn main() {
    let ctx = Context::load(Which::Bird, rts_bench::env_scale(), rts_bench::env_seed());
    for report in [figure3a(&ctx), figure3b(&ctx)] {
        print!("{}", report.render());
        report
            .save(std::path::Path::new("results"))
            .expect("save report");
    }
}

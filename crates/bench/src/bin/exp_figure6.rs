//! Regenerates Figure 6: coverage vs EAR across error levels.
use rts_bench::{experiments::sweeps::figure6, Context, Which};

fn main() {
    let ctx = Context::load(Which::Bird, rts_bench::env_scale(), rts_bench::env_seed());
    let report = figure6(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

//! Open-loop load driver for the sharded `rts-serve` engine,
//! standalone.
//!
//! ```text
//! RTS_SCALE=0.03 RTS_OL_RATES=50,150 cargo run --release -p rts-bench --bin openloop_driver
//! ```
//!
//! Trains the usual artefacts, then sweeps a seeded Poisson arrival
//! schedule (Zipf user/database skew — see `rts_bench::openloop`)
//! across the configured offered rates against a
//! [`ShardedEngine`](rts_serve::ShardedEngine) and
//! prints the open-loop record. Knobs:
//!
//! * `RTS_OL_RATES` (default `400,1200,3600`) — comma-separated
//!   offered rates, req/s ascending;
//! * `RTS_OL_REQUESTS` (default 60) — arrivals per sweep point;
//! * `RTS_OL_USERS` (default 200) — simulated-user population;
//! * `RTS_OL_TENANTS` (default 4) — tenants the users map onto;
//! * `RTS_OL_ZIPF` (default 1.1) — popularity-skew exponent;
//! * `RTS_OL_SHARDS` (default 2) — shards of the engine under test;
//! * `RTS_OL_QUEUE` (default 32) / `RTS_OL_CACHE` (default 8) —
//!   per-shard admission-queue and context-cache bounds;
//! * `RTS_OL_COLLECTORS` (default 4) — completion-collector threads;
//! * `RTS_THREADS` — total engine workers, split across shards;
//! * `RTS_OL_PARITY=1` — rerun the first sweep point unsharded and
//!   assert per-arrival outcome keys are byte-identical;
//! * `RTS_OL_RECORD=1` — merge the record into `./BENCH_rts.json`.
//!
//! The harness itself asserts zero drops and drained gauges after
//! every point (see `openloop::run_point`); the driver adds the
//! sharded ≡ single-shard parity check on top, which is what the
//! `open-loop` CI smoke leg runs.

use rts_bench::openloop::{run_sweep, OpenLoopConfig};
use rts_bench::report::PerfReport;
use rts_core::abstention::RtsConfig;
use rts_core::bpp::{Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_core::human::{Expertise, HumanOracle};
use rts_serve::ServeConfig;
use simlm::{LinkTarget, SchemaLinker};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_rates() -> Vec<f64> {
    let rates: Vec<f64> = std::env::var("RTS_OL_RATES")
        .ok()
        .map(|v| {
            v.split(',')
                .map(|r| r.trim().parse().expect("RTS_OL_RATES: bad rate"))
                .collect()
        })
        .unwrap_or_else(|| vec![400.0, 1200.0, 3600.0]);
    assert!(
        !rates.is_empty(),
        "RTS_OL_RATES must name at least one rate"
    );
    assert!(
        rates.windows(2).all(|w| w[0] < w[1]),
        "RTS_OL_RATES must ascend (the knee search assumes it)"
    );
    rates
}

fn main() {
    let scale = env_f64("RTS_SCALE", 0.03);
    let seed = rts_bench::env_seed();

    let t0 = std::time::Instant::now();
    let bench = benchgen::BenchmarkProfile::bird_like()
        .scaled(scale)
        .generate(seed);
    let linker = SchemaLinker::new("bird", seed ^ 0x11CC);
    let probe_cfg = MbppConfig {
        probe: ProbeConfig {
            epochs: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let ds_t = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 400);
    let ds_c = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Columns, 400);
    let mbpp_t = Mbpp::train(&ds_t, &probe_cfg);
    let mbpp_c = Mbpp::train(&ds_c, &probe_cfg);
    eprintln!(
        "[openloop_driver] setup (benchmark + mBPPs) in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    let config = OpenLoopConfig {
        shards: env_usize("RTS_OL_SHARDS", 2),
        users: env_usize("RTS_OL_USERS", 200) as u32,
        tenants: env_usize("RTS_OL_TENANTS", 4) as u32,
        zipf_s: env_f64("RTS_OL_ZIPF", 1.1),
        requests_per_point: env_usize("RTS_OL_REQUESTS", 60),
        rates_rps: env_rates(),
        collectors: env_usize("RTS_OL_COLLECTORS", 4),
        serve: ServeConfig {
            queue_capacity: env_usize("RTS_OL_QUEUE", 32),
            cache_capacity: env_usize("RTS_OL_CACHE", 8),
            rts: RtsConfig {
                seed,
                ..RtsConfig::default()
            },
            ..ServeConfig::default()
        },
        oracle: HumanOracle::new(Expertise::Expert, seed ^ 0x0DDE),
        seed,
    };

    let instances = &bench.split.dev;
    let sweep = run_sweep(&linker, &mbpp_t, &mbpp_c, &bench.metas, instances, &config);
    print!("{}", sweep.record.render());

    // Sanity the harness's own zero-drop accounting end to end: every
    // point completed exactly its schedule (run_point hard-asserts the
    // per-point and per-shard invariants as it goes).
    for (point, keys) in sweep.record.points.iter().zip(&sweep.outcomes) {
        assert_eq!(point.completed as usize, config.requests_per_point);
        assert_eq!(keys.len(), config.requests_per_point);
    }

    // Parity: the sharded run must be byte-identical per request to an
    // unsharded run of the same schedule — worker placement and cache
    // partitioning may move latency, never answers.
    if std::env::var("RTS_OL_PARITY").is_ok_and(|v| v == "1") {
        let single = OpenLoopConfig {
            shards: 1,
            rates_rps: vec![config.rates_rps[0]],
            ..config.clone()
        };
        let baseline = run_sweep(&linker, &mbpp_t, &mbpp_c, &bench.metas, instances, &single);
        let sharded_keys = &sweep.outcomes[0];
        let single_keys = &baseline.outcomes[0];
        assert_eq!(sharded_keys.len(), single_keys.len());
        for (i, (a, b)) in sharded_keys.iter().zip(single_keys).enumerate() {
            assert_eq!(
                a, b,
                "sharded/single-shard outcome mismatch at arrival {i} \
                 (rate {} req/s)",
                config.rates_rps[0]
            );
        }
        eprintln!(
            "[openloop_driver] parity: {} shards ≡ 1 shard on {} arrivals at {} req/s",
            config.shards,
            single_keys.len(),
            config.rates_rps[0]
        );
    }

    if std::env::var("RTS_OL_RECORD").is_ok_and(|v| v == "1") {
        let path = std::path::Path::new("BENCH_rts.json");
        let text = std::fs::read_to_string(path).expect("BENCH_rts.json exists — run perf first");
        let mut perf: PerfReport = serde_json::from_str(&text).expect("parse BENCH_rts.json");
        perf.open_loop = Some(sweep.record);
        perf.save_bench_json(std::path::Path::new("."))
            .expect("write BENCH_rts.json");
        eprintln!("[openloop_driver] merged open_loop section into BENCH_rts.json");
    }
}

//! Regenerates Figure 7: coverage vs EAR across k for both merges.
use rts_bench::{experiments::sweeps::figure7, Context, Which};

fn main() {
    let ctx = Context::load(Which::Bird, rts_bench::env_scale(), rts_bench::env_seed());
    let report = figure7(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

//! Closed-loop workload driver for `rts-served`, over the wire.
//!
//! ```text
//! RTS_SCALE=0.03 cargo run --release -p rts-served &            # server
//! RTS_SCALE=0.03 cargo run --release -p rts-bench --bin wire_driver
//! ```
//!
//! The TCP twin of `serve_driver`: rebuilds the same deterministic
//! corpus from the same `RTS_SCALE`/`RTS_SEED` recipe (the wire
//! submits instance *ids*; the `HelloAck` fingerprint proves both
//! processes mean the same instances by them), connects an
//! [`rts_client::RtsClient`], and drives the identical closed-loop
//! multi-client workload through the [`rts_serve::Engine`] trait —
//! the exact code path `serve_driver` runs in-process, now crossing a
//! socket.
//!
//! Knobs: `RTS_WIRE_ADDR` (default `127.0.0.1:7878`) plus the
//! workload subset of the `RTS_SERVE_*` family (`CLIENTS`, `ROUNDS`,
//! `TENANTS`, `STALL_TENANT`) — engine-side knobs live on the server
//! process and must be set there. `RTS_WIRE_PARITY=1` additionally
//! replays every request through the local batch runtime and asserts
//! byte-identical outcomes (requires the server to run without
//! deadline/fault knobs, i.e. nothing wall-clock may degrade).
//!
//! Self-checks mirror `serve_driver`: zero drops, timed-out requests
//! abstain, and the server's gauges drain to zero — read over the
//! wire via `Stats`. On success the driver asks the server to shut
//! down, so a CI leg can wait on both processes.

use rts_bench::serving::{run_clients, WorkloadConfig};
use rts_client::RtsClient;
use rts_core::abstention::{LinkScratch, MitigationPolicy, RtsConfig};
use rts_core::bpp::{Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_core::context::LinkContexts;
use rts_core::human::{Expertise, HumanOracle};
use rts_core::pipeline::run_joint_linking_in;
use rts_serve::wire::corpus_fingerprint;
use rts_serve::{Engine, ServeConfig, TenantId};
use simlm::{LinkTarget, SchemaLinker};
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// How long the driver keeps redialing a server that is still
/// training its artefacts before giving up.
const CONNECT_BUDGET: Duration = Duration::from_secs(300);

fn main() {
    let scale: f64 = std::env::var("RTS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03);
    let seed = rts_bench::env_seed();
    let addr = std::env::var("RTS_WIRE_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());

    let t0 = Instant::now();
    let bench = benchgen::BenchmarkProfile::bird_like()
        .scaled(scale)
        .generate(seed);
    let linker = SchemaLinker::new("bird", seed ^ 0x11CC);
    let fingerprint = corpus_fingerprint("bird", scale, seed, linker.corpus());
    eprintln!(
        "[wire_driver] corpus ready in {:.1}s; fingerprint {fingerprint}",
        t0.elapsed().as_secs_f64()
    );

    // The server trains its artefacts after binding, so the handshake
    // can take a while to answer; keep redialing within the budget.
    let deadline = Instant::now() + CONNECT_BUDGET;
    let client = loop {
        match RtsClient::connect(&addr, Some(&fingerprint)) {
            Ok(c) => break c,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "server at {addr} never became ready: {e}"
                );
                eprintln!("[wire_driver] waiting for {addr}: {e}");
                std::thread::sleep(Duration::from_millis(500));
            }
        }
    };
    eprintln!(
        "[wire_driver] connected to {addr} as session {:?}",
        client.session_id()
    );

    let tenants = env_usize("RTS_SERVE_TENANTS", 1);
    let stall_tenant: Option<TenantId> = std::env::var("RTS_SERVE_STALL_TENANT")
        .ok()
        .and_then(|v| v.parse().ok());
    let config = WorkloadConfig {
        clients: env_usize("RTS_SERVE_CLIENTS", 4),
        rounds: env_usize("RTS_SERVE_ROUNDS", 2),
        tenants,
        stall_tenant,
        // Engine knobs live on the server; this copy only shapes the
        // client pool (and the stall check below tolerates both).
        serve: ServeConfig {
            feedback_timeout: stall_tenant.map(|_| Duration::from_millis(1)),
            ..ServeConfig::default()
        },
        oracle: HumanOracle::new(Expertise::Expert, seed ^ 0x0DDE),
    };

    let instances = &bench.split.dev;
    let t1 = Instant::now();
    let outcomes = run_clients(&client, instances, &config);
    let wall = t1.elapsed();
    let n_requests = instances.len() * config.rounds;

    // Self-check 1: degrade, never drop — every submitted request
    // came back with an outcome, across the socket.
    assert_eq!(
        outcomes.len(),
        n_requests,
        "every request must complete over the wire"
    );
    for r in &outcomes {
        if r.timed_out {
            assert!(
                r.outcome.abstained(),
                "timed-out request must abstain (instance {})",
                r.instance
            );
        }
    }

    // Self-check 2: the server's gauges drained to zero — read over
    // the wire, proving Stats round-trips and the engine holds no
    // session memory after the workload.
    let stats = client.stats();
    assert!(
        stats.completed as usize >= n_requests,
        "server completed {} < {n_requests} driven requests",
        stats.completed
    );
    assert_eq!(stats.parked_sessions_now, 0, "server still parks sessions");
    assert_eq!(stats.parked_bytes_now, 0, "server still bills parked bytes");
    assert_eq!(
        stats.checkpoint_bytes_now, 0,
        "server still holds checkpoint bytes"
    );
    eprintln!(
        "[wire_driver] {} requests in {:.1}s over the wire; server completed {}, gauges drained",
        n_requests,
        wall.as_secs_f64(),
        stats.completed
    );

    // Self-check 3 (opt-in): byte-identical outcome parity against the
    // local batch runtime — the wire must never change answers, only
    // where they are computed.
    if std::env::var("RTS_WIRE_PARITY").is_ok_and(|v| v == "1") {
        let probe_cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let ds_t = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 400);
        let ds_c = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Columns, 400);
        let mbpp_t = Mbpp::train(&ds_t, &probe_cfg);
        let mbpp_c = Mbpp::train(&ds_c, &probe_cfg);
        let contexts = LinkContexts::build(&bench);
        let policy = MitigationPolicy::Human(&config.oracle);
        let rts = RtsConfig {
            seed,
            ..RtsConfig::default()
        };
        let mut scratch = LinkScratch::default();
        let mut checked = 0usize;
        for r in &outcomes {
            if r.timed_out || r.faulted || r.shed {
                continue;
            }
            let Some(inst) = instances.iter().find(|i| i.id == r.instance) else {
                panic!("served an unknown instance id {}", r.instance);
            };
            let batch = run_joint_linking_in(
                &linker,
                &mbpp_t,
                &mbpp_c,
                inst,
                &bench,
                &contexts,
                &policy,
                &rts,
                &mut scratch,
            );
            assert_eq!(
                format!("{:?}", r.outcome),
                format!("{batch:?}"),
                "wire/batch outcome mismatch on instance {}",
                r.instance
            );
            checked += 1;
        }
        eprintln!(
            "[wire_driver] outcome parity: {checked}/{} wire requests ≡ batch runtime",
            outcomes.len()
        );
    }

    // Done: ask the server to drain and end the session cleanly.
    client.shutdown();
    client.bye();
    eprintln!("[wire_driver] server asked to shut down; bye");
}

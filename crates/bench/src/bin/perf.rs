//! Emit `BENCH_rts.json`: wall-time per pipeline stage (trace_gen,
//! linking, monitoring, sqlgen, execution) so every PR leaves a
//! comparable performance record.
//!
//! ```text
//! RTS_SCALE=0.05 cargo run --release -p rts-bench --bin perf
//! ```
//!
//! Scale defaults to 0.05 (a few hundred instances) — enough signal for
//! a trajectory point without paper-scale runtime. `RTS_THREADS=1`
//! forces the serial runtime for A/B comparisons.

use rts_bench::report::PerfReport;
use rts_core::abstention::{run_rts_linking, MitigationPolicy, RtsConfig};
use rts_core::bpp::{BppScratch, Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_core::par::{par_map, par_map_with, thread_count};
use rts_core::sqlgen::{ProvidedSchema, SqlGenModel};
use simlm::{GenMode, GenerationTrace, LinkTarget, SchemaLinker, SynthScratch, Vocab};
use std::time::Instant;
use tinynn::rng::SplitMix64;

fn main() {
    let scale = std::env::var("RTS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let seed = rts_bench::env_seed();
    let effective = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut perf = PerfReport::new(scale, seed, thread_count(), effective);

    let t0 = Instant::now();
    let bench = benchgen::BenchmarkProfile::bird_like()
        .scaled(scale)
        .generate(seed);
    let linker = SchemaLinker::new("bird", seed ^ 0x11CC);
    let probe_cfg = MbppConfig {
        probe: ProbeConfig {
            epochs: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let ds_t = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 400);
    let ds_c = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Columns, 400);
    let mbpp_t = Mbpp::train(&ds_t, &probe_cfg);
    let mbpp_c = Mbpp::train(&ds_c, &probe_cfg);
    eprintln!(
        "[perf] setup (benchmark + mBPPs) in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    let instances = &bench.split.dev;
    let n = instances.len();
    let config = RtsConfig {
        seed,
        ..RtsConfig::default()
    };

    // Stage 1 — trace_gen: free-running schema-linking generation for
    // both stages of the joint process (tables, then columns), lazily
    // synthesizing only the hidden layers the monitors read — the
    // production monitored path. (Previous records conflated this into
    // a stage labelled "linking"; the monitored-linking runtime is now
    // timed separately below.)
    let layers_t = mbpp_t.layer_set();
    let layers_c = mbpp_c.layer_set();
    let t0 = Instant::now();
    let traces: Vec<(GenerationTrace, GenerationTrace)> =
        par_map_with(instances, SynthScratch::default, |synth, inst| {
            let mut vocab = Vocab::new();
            let t = linker.generate_with_layers(
                inst,
                &mut vocab,
                LinkTarget::Tables,
                GenMode::Free,
                &layers_t,
                synth,
            );
            let mut v2 = Vocab::new();
            let c = linker.generate_with_layers(
                inst,
                &mut v2,
                LinkTarget::Columns,
                GenMode::Free,
                &layers_c,
                synth,
            );
            (t, c)
        });
    perf.push_stage("trace_gen", t0.elapsed(), n);

    // Diagnostic baseline: the eager full-stack generation every
    // consumer paid before lazy synthesis.
    let t0 = Instant::now();
    let traces_eager: Vec<(GenerationTrace, GenerationTrace)> = par_map(instances, |inst| {
        let mut vocab = Vocab::new();
        let t = linker.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
        let mut v2 = Vocab::new();
        let c = linker.generate(inst, &mut v2, LinkTarget::Columns, GenMode::Free);
        (t, c)
    });
    perf.push_stage("trace_gen_eager_baseline", t0.elapsed(), n);

    // Stage 2 — linking: the monitored-linking runtime end to end
    // (counterfactual baseline + monitored rounds + flag handling),
    // what `run_rts_linking` costs per instance under abstain-only.
    let t0 = Instant::now();
    let abstained: usize = par_map(instances, |inst| {
        let meta = bench.meta(&inst.db_name).expect("meta");
        let t = run_rts_linking(
            &linker,
            &mbpp_t,
            inst,
            meta,
            LinkTarget::Tables,
            &MitigationPolicy::AbstainOnly,
            &config,
        );
        let c = run_rts_linking(
            &linker,
            &mbpp_c,
            inst,
            meta,
            LinkTarget::Columns,
            &MitigationPolicy::AbstainOnly,
            &config,
        );
        t.abstained as usize + c.abstained as usize
    })
    .iter()
    .sum();
    perf.push_stage("linking", t0.elapsed(), n);

    // Untimed warm-up pass over the freshly materialised traces so the
    // two timed monitoring variants both read warm memory (the first
    // reader otherwise pays every page fault).
    let _warm: usize = traces
        .iter()
        .map(|(t, c)| {
            t.steps
                .iter()
                .chain(c.steps.iter())
                .map(|s| s.hidden.len())
                .sum::<usize>()
        })
        .sum();
    let mut warm_scratch = BppScratch::default();
    let mut warm_rng = SplitMix64::new(config.seed);
    let _ = mbpp_t.flag_trace_with_scratch(&traces[0].0, &mut warm_rng, &mut warm_scratch);
    let _ = mbpp_t.flag_trace_per_token(&traces[0].0, &mut warm_rng);

    // Stage 3 — monitoring: batched mBPP flagging of both traces (and
    // the per-token baseline as a diagnostic trajectory row). The
    // traces carry only the selected layers; flags must match the
    // eager full-stack traces exactly (asserted below).
    let t0 = Instant::now();
    let flags: Vec<usize> = par_map_with(&traces, BppScratch::default, |scratch, (t, c)| {
        let mut rng = SplitMix64::new(config.seed);
        let nt = mbpp_t.flag_trace_with_scratch(t, &mut rng, scratch);
        let nc = mbpp_c.flag_trace_with_scratch(c, &mut rng, scratch);
        nt.iter().chain(nc.iter()).filter(|&&f| f).count()
    });
    perf.push_stage("monitoring", t0.elapsed(), n);
    let t0 = Instant::now();
    let flags_pt: Vec<usize> = par_map(&traces, |(t, c)| {
        let mut rng = SplitMix64::new(config.seed);
        let nt = mbpp_t.flag_trace_per_token(t, &mut rng);
        let nc = mbpp_c.flag_trace_per_token(c, &mut rng);
        nt.iter().chain(nc.iter()).filter(|&&f| f).count()
    });
    perf.push_stage("monitoring_per_token_baseline", t0.elapsed(), n);
    assert_eq!(
        flags, flags_pt,
        "batched and per-token monitoring disagreed"
    );
    let flags_eager: Vec<usize> =
        par_map_with(&traces_eager, BppScratch::default, |scratch, (t, c)| {
            let mut rng = SplitMix64::new(config.seed);
            let nt = mbpp_t.flag_trace_with_scratch(t, &mut rng, scratch);
            let nc = mbpp_c.flag_trace_with_scratch(c, &mut rng, scratch);
            nt.iter().chain(nc.iter()).filter(|&&f| f).count()
        });
    assert_eq!(
        flags, flags_eager,
        "lazy and eager trace monitoring disagreed"
    );

    // Stage 4 — sqlgen: SQL generation under the full schema.
    let generator = SqlGenModel::deepseek_7b("bird", seed ^ 0xEE);
    let t0 = Instant::now();
    let stmts: Vec<nanosql::ast::SelectStmt> = par_map(instances, |inst| {
        let meta = bench.meta(&inst.db_name).expect("meta");
        generator.generate(inst, &ProvidedSchema::full(meta), meta)
    });
    perf.push_stage("sqlgen", t0.elapsed(), n);

    // Stage 5 — execution: run the generated SQL for real.
    let t0 = Instant::now();
    let executed = par_map(
        &instances.iter().zip(&stmts).collect::<Vec<_>>(),
        |(inst, stmt)| {
            let db = bench.database(&inst.db_name).expect("db");
            nanosql::exec::execute(db, stmt).is_ok()
        },
    );
    perf.push_stage("execution", t0.elapsed(), n);
    assert!(executed.iter().all(|&ok| ok), "generated SQL must execute");

    let trace_speedup = perf
        .stage_ms("trace_gen_eager_baseline")
        .zip(perf.stage_ms("trace_gen"))
        .map(|(eager, lazy)| eager / lazy)
        .unwrap_or(f64::NAN);
    perf.note(format!(
        "trace_gen lazy-vs-eager-full-stack speedup: {trace_speedup:.2}x \
         ({} of {} layers synthesized for tables, {} for columns)",
        layers_t.count(linker.n_layers),
        linker.n_layers,
        layers_c.count(linker.n_layers),
    ));
    let speedup = perf
        .stage_ms("monitoring_per_token_baseline")
        .zip(perf.stage_ms("monitoring"))
        .map(|(pt, b)| pt / b)
        .unwrap_or(f64::NAN);
    perf.note(format!(
        "monitoring batched-vs-per-token speedup: {speedup:.2}x"
    ));
    perf.note(format!(
        "total flags raised: {} over {n} instances",
        flags.iter().sum::<usize>()
    ));
    perf.note(format!(
        "monitored linking (abstain-only) abstained on {abstained} of {} runs",
        2 * n
    ));
    perf.note(
        "stage semantics changed in PR 2: records before it bundled trace \
         generation into a stage tagged 'linking'; that cost is now 'trace_gen' \
         and 'linking' times the monitored run_rts_linking runtime instead — \
         do not compare 'linking' across that boundary"
            .to_string(),
    );

    print!("{}", perf.render());
    perf.save_bench_json(std::path::Path::new("."))
        .expect("write BENCH_rts.json");
    eprintln!("[perf] wrote BENCH_rts.json");
}

//! Emit `BENCH_rts.json`: wall-time per pipeline stage (trace_gen,
//! linking, monitoring, traceback, sqlgen, execution) so every PR
//! leaves a comparable performance record.
//!
//! ```text
//! RTS_SCALE=0.05 cargo run --release -p rts-bench --bin perf
//! ```
//!
//! Scale defaults to 0.05 (a few hundred instances) — enough signal for
//! a trajectory point without paper-scale runtime. `RTS_THREADS=1`
//! forces the serial runtime for A/B comparisons, and `RTS_CORPUS=v1`
//! measures under the frozen v1 synthesis corpus (the record stamps the
//! corpus tag so the gate can refuse cross-corpus comparisons).
//!
//! Stage semantics (PR 3): the monitored stream is generated **once**
//! (`trace_gen`) and then *shared* — `linking` times
//! `run_rts_linking_from` consuming that round-0 trace through the
//! precompiled `LinkContext`s (the production dataflow). The cost of
//! the runtime when it must regenerate internally is kept as
//! `linking_regen_baseline`, and the pre-context reference path
//! (explicit counterfactual generation + clone-per-flag trie rebuild,
//! `RtsConfig::reference_linking`) as `linking_reference_baseline` —
//! the latter is the row comparable to the PR 2 "linking" record.

use rts_bench::report::PerfReport;
use rts_core::abstention::{
    run_rts_linking, run_rts_linking_from, run_rts_linking_in, LinkScratch, MitigationPolicy,
    Round0, RtsConfig,
};
use rts_core::bpp::{BppScratch, Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_core::context::{implicated_elements_reference, LinkContexts};
use rts_core::par::{par_map, par_map_with, thread_count};
use rts_core::sqlgen::{ProvidedSchema, SqlGenModel};
use simlm::{GenMode, GenerationTrace, LinkTarget, SchemaLinker, SynthScratch, Vocab};
use std::time::Instant;
use tinynn::rng::SplitMix64;

fn main() {
    let scale = std::env::var("RTS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let seed = rts_bench::env_seed();
    let corpus = rts_bench::env_corpus();
    let effective = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut perf = PerfReport::new(scale, seed, thread_count(), effective);
    perf.corpus = Some(corpus.tag().to_string());

    let t0 = Instant::now();
    let bench = benchgen::BenchmarkProfile::bird_like()
        .scaled(scale)
        .generate(seed);
    let linker = SchemaLinker::new("bird", seed ^ 0x11CC).with_corpus(corpus);
    let probe_cfg = MbppConfig {
        probe: ProbeConfig {
            epochs: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let ds_t = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 400);
    let ds_c = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Columns, 400);
    let mbpp_t = Mbpp::train(&ds_t, &probe_cfg);
    let mbpp_c = Mbpp::train(&ds_c, &probe_cfg);
    eprintln!(
        "[perf] setup (benchmark + mBPPs) in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    let instances = &bench.split.dev;
    let n = instances.len();
    let config = RtsConfig {
        seed,
        corpus,
        ..RtsConfig::default()
    };
    let reference_config = RtsConfig {
        seed,
        corpus,
        reference_linking: true,
        ..RtsConfig::default()
    };

    // Stage 0 — context_build: precompile every database's LinkContext
    // (pre-interned vocab + constrained-decoding trie, both targets).
    // Paid once per benchmark; recorded amortised per instance.
    let t0 = Instant::now();
    let contexts = LinkContexts::build(&bench);
    perf.push_stage("context_build", t0.elapsed(), n);

    // Stage 1 — trace_gen: free-running schema-linking generation for
    // both stages of the joint process (tables, then columns), lazily
    // synthesizing only the hidden layers the monitors read — the
    // production monitored path. The traces (and their generation
    // vocabularies) are kept: the linking stage consumes them instead
    // of regenerating.
    let layers_t = mbpp_t.layer_set();
    let layers_c = mbpp_c.layer_set();
    type Gen = (GenerationTrace, Vocab);
    let t0 = Instant::now();
    let traces: Vec<(Gen, Gen)> = par_map_with(instances, SynthScratch::default, |synth, inst| {
        let mut vocab = Vocab::new();
        let t = linker.generate_with_layers(
            inst,
            &mut vocab,
            LinkTarget::Tables,
            GenMode::Free,
            &layers_t,
            synth,
        );
        let mut v2 = Vocab::new();
        let c = linker.generate_with_layers(
            inst,
            &mut v2,
            LinkTarget::Columns,
            GenMode::Free,
            &layers_c,
            synth,
        );
        ((t, vocab), (c, v2))
    });
    perf.push_stage("trace_gen", t0.elapsed(), n);

    // Diagnostic baseline: the eager full-stack generation every
    // consumer paid before lazy synthesis.
    let t0 = Instant::now();
    let traces_eager: Vec<(GenerationTrace, GenerationTrace)> = par_map(instances, |inst| {
        let mut vocab = Vocab::new();
        let t = linker.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
        let mut v2 = Vocab::new();
        let c = linker.generate(inst, &mut v2, LinkTarget::Columns, GenMode::Free);
        (t, c)
    });
    perf.push_stage("trace_gen_eager_baseline", t0.elapsed(), n);

    // Stage 2 — linking: the monitored-linking runtime downstream of
    // trace generation (abstain-only, both targets): monitoring, flag
    // handling, outcome accounting — consuming the round-0 stream
    // produced above through the shared contexts. What production pays
    // per instance on top of trace_gen.
    let zipped: Vec<(&benchgen::Instance, &(Gen, Gen))> =
        instances.iter().zip(traces.iter()).collect();
    let t0 = Instant::now();
    let outcomes: Vec<(bool, bool)> =
        par_map_with(&zipped, LinkScratch::default, |scratch, (inst, gens)| {
            let meta = bench.meta(&inst.db_name).expect("meta");
            let ((trace_t, vocab_t), (trace_c, vocab_c)) = gens;
            let t = run_rts_linking_from(
                &linker,
                &mbpp_t,
                inst,
                meta,
                contexts.get(&inst.db_name, LinkTarget::Tables),
                Round0 {
                    trace: trace_t,
                    vocab: vocab_t,
                },
                &MitigationPolicy::AbstainOnly,
                &config,
                scratch,
            );
            let c = run_rts_linking_from(
                &linker,
                &mbpp_c,
                inst,
                meta,
                contexts.get(&inst.db_name, LinkTarget::Columns),
                Round0 {
                    trace: trace_c,
                    vocab: vocab_c,
                },
                &MitigationPolicy::AbstainOnly,
                &config,
                scratch,
            );
            (t.abstained, c.abstained)
        });
    perf.push_stage("linking", t0.elapsed(), n);
    let abstained: usize = outcomes.iter().map(|&(t, c)| t as usize + c as usize).sum();

    // Diagnostic: the same runtime when it generates round 0 itself
    // (context path, no pre-generated trace) …
    let t0 = Instant::now();
    let outcomes_regen: Vec<(bool, bool)> =
        par_map_with(instances, LinkScratch::default, |scratch, inst| {
            let meta = bench.meta(&inst.db_name).expect("meta");
            let t = run_rts_linking_in(
                &linker,
                &mbpp_t,
                inst,
                meta,
                contexts.get(&inst.db_name, LinkTarget::Tables),
                &MitigationPolicy::AbstainOnly,
                &config,
                scratch,
            );
            let c = run_rts_linking_in(
                &linker,
                &mbpp_c,
                inst,
                meta,
                contexts.get(&inst.db_name, LinkTarget::Columns),
                &MitigationPolicy::AbstainOnly,
                &config,
                scratch,
            );
            (t.abstained, c.abstained)
        });
    perf.push_stage("linking_regen_baseline", t0.elapsed(), n);

    // … and the pre-context reference path: explicit counterfactual
    // generation, fresh vocab + trie rebuild per flag. This row is the
    // one comparable to the PR 2 "linking" record.
    let t0 = Instant::now();
    let outcomes_reference: Vec<(bool, bool)> = par_map(instances, |inst| {
        let meta = bench.meta(&inst.db_name).expect("meta");
        let t = run_rts_linking(
            &linker,
            &mbpp_t,
            inst,
            meta,
            LinkTarget::Tables,
            &MitigationPolicy::AbstainOnly,
            &reference_config,
        );
        let c = run_rts_linking(
            &linker,
            &mbpp_c,
            inst,
            meta,
            LinkTarget::Columns,
            &MitigationPolicy::AbstainOnly,
            &reference_config,
        );
        (t.abstained, c.abstained)
    });
    perf.push_stage("linking_reference_baseline", t0.elapsed(), n);
    assert_eq!(outcomes, outcomes_regen, "from-trace vs regen disagreed");
    assert_eq!(
        outcomes, outcomes_reference,
        "context vs reference linking disagreed"
    );

    // Untimed warm-up pass over the freshly materialised traces so the
    // two timed monitoring variants both read warm memory (the first
    // reader otherwise pays every page fault).
    let _warm: usize = traces
        .iter()
        .map(|((t, _), (c, _))| {
            t.steps
                .iter()
                .chain(c.steps.iter())
                .map(|s| s.hidden.len())
                .sum::<usize>()
        })
        .sum();
    let mut warm_scratch = BppScratch::default();
    let mut warm_rng = SplitMix64::new(config.seed);
    let _ = mbpp_t.flag_trace_with_scratch(&traces[0].0 .0, &mut warm_rng, &mut warm_scratch);
    let _ = mbpp_t.flag_trace_per_token(&traces[0].0 .0, &mut warm_rng);

    // Stage 3 — monitoring: batched mBPP flagging of both traces (and
    // the per-token baseline as a diagnostic trajectory row). The
    // traces carry only the selected layers; flags must match the
    // eager full-stack traces exactly (asserted below).
    let t0 = Instant::now();
    let flags: Vec<usize> =
        par_map_with(&traces, BppScratch::default, |scratch, ((t, _), (c, _))| {
            let mut rng = SplitMix64::new(config.seed);
            let nt = mbpp_t.flag_trace_with_scratch(t, &mut rng, scratch);
            let nc = mbpp_c.flag_trace_with_scratch(c, &mut rng, scratch);
            nt.iter().chain(nc.iter()).filter(|&&f| f).count()
        });
    perf.push_stage("monitoring", t0.elapsed(), n);
    let t0 = Instant::now();
    let flags_pt: Vec<usize> = par_map(&traces, |((t, _), (c, _))| {
        let mut rng = SplitMix64::new(config.seed);
        let nt = mbpp_t.flag_trace_per_token(t, &mut rng);
        let nc = mbpp_c.flag_trace_per_token(c, &mut rng);
        nt.iter().chain(nc.iter()).filter(|&&f| f).count()
    });
    perf.push_stage("monitoring_per_token_baseline", t0.elapsed(), n);
    assert_eq!(
        flags, flags_pt,
        "batched and per-token monitoring disagreed"
    );
    let flags_eager: Vec<usize> =
        par_map_with(&traces_eager, BppScratch::default, |scratch, (t, c)| {
            let mut rng = SplitMix64::new(config.seed);
            let nt = mbpp_t.flag_trace_with_scratch(t, &mut rng, scratch);
            let nc = mbpp_c.flag_trace_with_scratch(c, &mut rng, scratch);
            nt.iter().chain(nc.iter()).filter(|&&f| f).count()
        });
    assert_eq!(
        flags, flags_eager,
        "lazy and eager trace monitoring disagreed"
    );

    // Stage 4 — traceback: Algorithm 2 on every mBPP-flagged position,
    // through the precompiled context tries vs the clone-per-flag
    // rebuild the runtime used to pay. Flag positions are collected
    // untimed; each set is traced `TRACEBACK_REPS` times so the stage
    // is long enough to measure stably (per-instance time is per single
    // trace back).
    const TRACEBACK_REPS: usize = 64;
    type Flagged<'a> = (
        &'a benchgen::Instance,
        &'a GenerationTrace,
        &'a Vocab,
        LinkTarget,
        usize,
    );
    let mut flagged: Vec<Flagged<'_>> = Vec::new();
    for (inst, ((trace_t, vocab_t), (trace_c, vocab_c))) in instances.iter().zip(traces.iter()) {
        let mut rng = SplitMix64::new(config.seed);
        for (mbpp, trace, vocab, target) in [
            (&mbpp_t, trace_t, vocab_t, LinkTarget::Tables),
            (&mbpp_c, trace_c, vocab_c, LinkTarget::Columns),
        ] {
            let f = mbpp.flag_trace_with_scratch(trace, &mut rng, &mut warm_scratch);
            for pos in f.iter().enumerate().filter(|(_, &x)| x).map(|(p, _)| p) {
                flagged.push((inst, trace, vocab, target, pos));
            }
        }
    }
    let n_flagged = flagged.len().max(1);
    let t0 = Instant::now();
    let mut implicated_cached: Vec<Vec<String>> = Vec::new();
    for _ in 0..TRACEBACK_REPS {
        implicated_cached = par_map(&flagged, |(inst, trace, vocab, target, pos)| {
            contexts
                .get(&inst.db_name, *target)
                .implicated_elements(vocab, &trace.tokens, *pos)
        });
    }
    perf.push_stage("traceback", t0.elapsed(), n_flagged * TRACEBACK_REPS);
    let t0 = Instant::now();
    let mut implicated_rebuilt: Vec<Vec<String>> = Vec::new();
    for _ in 0..TRACEBACK_REPS {
        implicated_rebuilt = par_map(&flagged, |(inst, trace, vocab, target, pos)| {
            let meta = bench.meta(&inst.db_name).expect("meta");
            implicated_elements_reference(vocab, meta, *target, &trace.tokens, *pos)
        });
    }
    perf.push_stage(
        "traceback_rebuild_baseline",
        t0.elapsed(),
        n_flagged * TRACEBACK_REPS,
    );
    assert_eq!(
        implicated_cached, implicated_rebuilt,
        "cached-trie and rebuild-per-flag trace back disagreed"
    );

    // Stage 5 — sqlgen: SQL generation under the full schema.
    let generator = SqlGenModel::deepseek_7b("bird", seed ^ 0xEE);
    let t0 = Instant::now();
    let stmts: Vec<nanosql::ast::SelectStmt> = par_map(instances, |inst| {
        let meta = bench.meta(&inst.db_name).expect("meta");
        generator.generate(inst, &ProvidedSchema::full(meta), meta)
    });
    perf.push_stage("sqlgen", t0.elapsed(), n);

    // Stage 6 — execution: run the generated SQL for real.
    let t0 = Instant::now();
    let executed = par_map(
        &instances.iter().zip(&stmts).collect::<Vec<_>>(),
        |(inst, stmt)| {
            let db = bench.database(&inst.db_name).expect("db");
            nanosql::exec::execute(db, stmt).is_ok()
        },
    );
    perf.push_stage("execution", t0.elapsed(), n);
    assert!(executed.iter().all(|&ok| ok), "generated SQL must execute");

    let trace_speedup = perf
        .stage_ms("trace_gen_eager_baseline")
        .zip(perf.stage_ms("trace_gen"))
        .map(|(eager, lazy)| eager / lazy)
        .unwrap_or(f64::NAN);
    perf.note(format!(
        "trace_gen lazy-vs-eager-full-stack speedup: {trace_speedup:.2}x \
         ({} of {} layers synthesized for tables, {} for columns)",
        layers_t.count(linker.n_layers),
        linker.n_layers,
        layers_c.count(linker.n_layers),
    ));
    let linking_speedup = perf
        .stage_ms("linking_reference_baseline")
        .zip(perf.stage_ms("linking"))
        .map(|(reference, shared)| reference / shared)
        .unwrap_or(f64::NAN);
    perf.note(format!(
        "linking shared-trace-vs-reference speedup: {linking_speedup:.2}x \
         (reference regenerates the stream and the counterfactual; outcomes identical)"
    ));
    let traceback_speedup = perf
        .stage_ms("traceback_rebuild_baseline")
        .zip(perf.stage_ms("traceback"))
        .map(|(rebuild, cached)| rebuild / cached)
        .unwrap_or(f64::NAN);
    perf.note(format!(
        "traceback cached-trie-vs-rebuild-per-flag speedup: {traceback_speedup:.2}x \
         over {} flagged positions",
        flagged.len()
    ));
    let speedup = perf
        .stage_ms("monitoring_per_token_baseline")
        .zip(perf.stage_ms("monitoring"))
        .map(|(pt, b)| pt / b)
        .unwrap_or(f64::NAN);
    perf.note(format!(
        "monitoring batched-vs-per-token speedup: {speedup:.2}x"
    ));
    perf.note(format!(
        "total flags raised: {} over {n} instances",
        flags.iter().sum::<usize>()
    ));
    perf.note(format!(
        "monitored linking (abstain-only) abstained on {abstained} of {} runs",
        2 * n
    ));
    perf.note(
        "stage semantics changed in PR 3: 'linking' now times run_rts_linking_from \
         consuming the trace_gen stream through shared LinkContexts (the production \
         dataflow — the stream is generated once, the counterfactual is derived from \
         it); the PR 2-comparable full-regeneration cost is 'linking_reference_baseline'"
            .to_string(),
    );

    // Serving section — the rts-serve engine under a closed-loop joint
    // linking workload (concurrent clients, sessions suspending on
    // human feedback, lazy context cache). Latencies here are
    // wall-clock under concurrency, not per-instance stage times; the
    // perf gate gates this section on p99 (its own generous tolerance)
    // and the cache hit rate, and REFUSES records whose workload shape
    // (clients/queue/deadline/tenancy knobs below) differs from the
    // committed baseline's — change them only together with a
    // regenerated BENCH_rts.json.
    let workload = rts_bench::serving::WorkloadConfig {
        clients: 4,
        rounds: 2,
        // Single-tenant, no quotas/timeouts: the recorded latencies
        // stay comparable across the PR 5 boundary (the multi-tenant
        // machinery is exercised by serve_driver's CI smoke leg).
        tenants: 1,
        stall_tenant: None,
        serve: rts_serve::ServeConfig {
            queue_capacity: 16,
            cache_capacity: 8,
            rts: RtsConfig {
                seed,
                corpus,
                ..RtsConfig::default()
            },
            ..rts_serve::ServeConfig::default()
        },
        oracle: rts_core::human::HumanOracle::new(
            rts_core::human::Expertise::Expert,
            seed ^ 0x0DDE,
        ),
    };
    let served = rts_bench::serving::run_workload(
        &linker,
        &mbpp_t,
        &mbpp_c,
        &bench.metas,
        instances,
        &workload,
    );
    assert_eq!(
        served.stats.completed as usize, served.n_requests,
        "serving workload must complete every request"
    );
    perf.serving = Some(rts_bench::serving::serving_record(&served, &workload));

    // Open-loop section — the sharded engine under a seeded Poisson
    // arrival sweep (see rts_bench::openloop). Every knob is pinned so
    // the record's workload shape stays comparable across PRs; the
    // perf gate holds peak throughput and knee p99, and REFUSES
    // records whose shape differs from the committed baseline's.
    // Workers are explicit (not RTS_THREADS) for the same reason.
    let open_loop = rts_bench::openloop::OpenLoopConfig {
        shards: 2,
        users: 200,
        tenants: 4,
        zipf_s: 1.1,
        requests_per_point: 60,
        rates_rps: vec![400.0, 1200.0, 3600.0],
        collectors: 4,
        serve: rts_serve::ServeConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 8,
            rts: RtsConfig {
                seed,
                corpus,
                ..RtsConfig::default()
            },
            ..rts_serve::ServeConfig::default()
        },
        oracle: rts_core::human::HumanOracle::new(
            rts_core::human::Expertise::Expert,
            seed ^ 0x0DDE,
        ),
        seed,
    };
    let sweep = rts_bench::openloop::run_sweep(
        &linker,
        &mbpp_t,
        &mbpp_c,
        &bench.metas,
        instances,
        &open_loop,
    );
    perf.open_loop = Some(sweep.record);

    print!("{}", perf.render());
    perf.save_bench_json(std::path::Path::new("."))
        .expect("write BENCH_rts.json");
    eprintln!("[perf] wrote BENCH_rts.json");
}

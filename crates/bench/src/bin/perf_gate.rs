//! CI perf gate: compare a fresh `BENCH_rts.json` snapshot against the
//! committed baseline and fail when any stage's per-instance time
//! regresses beyond the tolerance.
//!
//! ```text
//! perf_gate <baseline.json> <fresh.json> [tolerance]
//! ```
//!
//! The tolerance defaults to 2.0 (a stage may be up to 2× slower than
//! the committed record before the gate trips) — deliberately generous
//! so shared CI runners don't flake — and can also be set via
//! `RTS_PERF_GATE_TOLERANCE`. Stages present in only one record are
//! reported but never fail the gate (stage renames land together with a
//! regenerated baseline). Exits non-zero on regression.
//!
//! The optional `serving` section (absent on snapshots predating the
//! `rts-serve` engine) is surfaced for eyeballs but never gated: its
//! latencies are wall-clock under concurrency on a shared runner, not
//! per-instance stage times.

use rts_bench::report::{compare_perf, PerfReport};

fn load(path: &str) -> PerfReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read perf record {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse perf record {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: perf_gate <baseline.json> <fresh.json> [tolerance]");
        std::process::exit(2);
    }
    let baseline = load(&args[1]);
    let fresh = load(&args[2]);
    let tolerance = args
        .get(3)
        .cloned()
        .or_else(|| std::env::var("RTS_PERF_GATE_TOLERANCE").ok())
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(2.0);

    // Per-instance times are only comparable when the two records were
    // measured under the same workload scale and worker count — a
    // 4-thread fresh run against a serial baseline would hide a 4x
    // regression. A mismatch is a gate-configuration error, not a pass.
    if baseline.scale != fresh.scale || baseline.threads != fresh.threads {
        eprintln!(
            "perf gate MISCONFIGURED: baseline (scale {}, threads {}) and fresh \
             (scale {}, threads {}) records are not comparable — pin RTS_SCALE / \
             RTS_THREADS to the committed baseline's values or regenerate it",
            baseline.scale, baseline.threads, fresh.scale, fresh.threads
        );
        std::process::exit(2);
    }

    println!(
        "== perf gate: fresh vs committed baseline (tolerance {tolerance:.2}x, \
         baseline scale {}, fresh scale {})",
        baseline.scale, fresh.scale
    );
    println!(
        "{:<36} {:>14} {:>14} {:>8}  verdict",
        "stage", "baseline µs", "fresh µs", "ratio"
    );
    let comparisons = compare_perf(&baseline, &fresh, tolerance);
    for c in &comparisons {
        println!(
            "{:<36} {:>14.1} {:>14.1} {:>7.2}x  {}",
            c.stage,
            c.baseline_us,
            c.fresh_us,
            c.ratio,
            if c.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for b in &baseline.stages {
        if !fresh.stages.iter().any(|f| f.stage == b.stage) {
            println!("{:<36} (baseline-only stage — skipped)", b.stage);
        }
    }
    for f in &fresh.stages {
        if !baseline.stages.iter().any(|b| b.stage == f.stage) {
            println!("{:<36} (new stage — no baseline yet)", f.stage);
        }
    }

    match (&baseline.serving, &fresh.serving) {
        (_, Some(s)) => {
            println!("serving section (reported, never gated):");
            print!("{}", s.render());
        }
        (Some(_), None) => {
            println!("serving section present in baseline only — not gated");
        }
        (None, None) => {}
    }

    let regressions: Vec<&str> = comparisons
        .iter()
        .filter(|c| c.regressed)
        .map(|c| c.stage.as_str())
        .collect();
    if regressions.is_empty() {
        println!(
            "perf gate passed: {} comparable stages within {tolerance:.2}x",
            comparisons.len()
        );
    } else {
        eprintln!(
            "perf gate FAILED: {} stage(s) regressed beyond {tolerance:.2}x: {}",
            regressions.len(),
            regressions.join(", ")
        );
        std::process::exit(1);
    }
}

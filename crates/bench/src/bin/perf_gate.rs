//! CI perf gate: compare a fresh `BENCH_rts.json` snapshot against the
//! committed baseline and fail when any stage's per-instance time
//! regresses beyond the tolerance.
//!
//! ```text
//! perf_gate <baseline.json> <fresh.json> [tolerance]
//! ```
//!
//! The tolerance defaults to 2.0 (a stage may be up to 2× slower than
//! the committed record before the gate trips) — deliberately generous
//! so shared CI runners don't flake — and can also be set via
//! `RTS_PERF_GATE_TOLERANCE`. Stages present in only one record are
//! reported but never fail the gate (stage renames land together with a
//! regenerated baseline). Exits non-zero on regression.
//!
//! Records are only comparable when measured under the same workload
//! scale, worker count, and **synthesis corpus** (`corpus` field;
//! absent = v1, from before corpus versioning) — any mismatch is a
//! gate-configuration error and exits 2, never a silent pass.
//!
//! The `serving` section is gated too — on two robust quantities:
//! p99 submit-to-done latency (its own, extra-generous tolerance:
//! `RTS_PERF_GATE_SERVING_TOLERANCE`, default 4.0, plus 1 ms absolute
//! grace, because these are wall-clock numbers under concurrency on a
//! shared runner) and a context-cache hit-rate floor (baseline − 0.10
//! — a hit-rate collapse is a logic regression, not scheduling noise).
//! The same record-mismatch refusal applies as for stages: serving
//! sections measured under different workload shapes (workers,
//! clients, queue, request count, tenancy knobs, fault plan) are
//! incomparable and exit 2, as does a fresh record that dropped the
//! section while the baseline has one. A baseline predating the
//! serving section simply reports the fresh numbers un-gated. Fault
//! *recovery counters* are outcomes, not knobs: the gate tolerates
//! them (an absent fault sub-record ≡ a disabled plan, so pre-chaos
//! baselines keep gating) and renders them with the rest of the
//! serving section.

use rts_bench::report::{compare_perf, OpenLoopRecord, PerfReport, ServingRecord};

/// The workload-shape knobs that make two serving sections comparable.
/// Tenancy knobs are normalized so a pre-tenancy baseline (no sub-
/// record) compares equal to a fresh record that ran with the
/// single-tenant defaults — only an actually different workload
/// (quotas, timeouts, stalls, budgets change latencies by design)
/// triggers the refusal.
#[allow(clippy::type_complexity)]
fn serving_shape(
    s: &ServingRecord,
) -> (
    usize,
    usize,
    usize,
    usize,
    usize,
    Option<u64>,
    ShapeTenancy,
    ShapeFault,
) {
    (
        s.workers,
        s.clients,
        s.queue_capacity,
        // The hit-rate floor is only meaningful at the same cache size.
        s.cache_capacity,
        s.n_requests,
        s.deadline_ms.map(|ms| ms.to_bits()),
        s.tenancy.as_ref().map_or((1, 0, 0, None, 0), |t| {
            (
                t.tenants,
                t.quota_max_in_flight,
                t.quota_max_parked,
                t.feedback_timeout_ms.map(|ms| ms.to_bits()),
                t.parked_bytes_budget,
            )
        }),
        // A fault-injected run measures recovery machinery on the hot
        // path — incomparable to a fault-free baseline. An absent
        // sub-record ≡ a disabled plan (pre-chaos baselines still
        // gate). The recovery *counters* are deliberately not part of
        // the shape: they are outcomes, tolerated and rendered, not
        // knobs.
        s.fault
            .as_ref()
            .map(|f| (f.seed, f.step_panic_rate.to_bits())),
    )
}

type ShapeTenancy = (usize, usize, usize, Option<u64>, u64);
type ShapeFault = Option<(u64, u64)>;

/// The workload-shape knobs that make two open-loop sections
/// comparable: the engine geometry, the simulated population, the
/// schedule seed, and the exact swept rates. Throughput and knee
/// latency measured under a different shape are incomparable.
#[allow(clippy::type_complexity)]
fn open_loop_shape(
    o: &OpenLoopRecord,
) -> (
    usize,
    usize,
    usize,
    usize,
    u64,
    usize,
    u64,
    usize,
    usize,
    Vec<u64>,
) {
    (
        o.shards,
        o.workers_per_shard,
        o.users,
        o.tenants,
        o.zipf_s.to_bits(),
        o.requests_per_point,
        o.seed,
        o.queue_capacity,
        o.cache_capacity,
        o.points.iter().map(|p| p.offered_rps.to_bits()).collect(),
    )
}

/// Gate the open-loop section: peak throughput must hold at least half
/// the baseline's (throughput collapse is a logic/scaling regression,
/// not runner noise at this margin), and the knee p99 gets the same
/// generous wall-clock treatment as serving p99. Returns the failed
/// checks (empty = pass).
fn gate_open_loop(
    baseline: &OpenLoopRecord,
    fresh: &OpenLoopRecord,
    tolerance: f64,
) -> Vec<&'static str> {
    let mut failures = Vec::new();
    let peak_floor = baseline.peak_throughput_rps / 2.0;
    println!(
        "open-loop peak {:>10.1} r/s baseline → {:>8.1} r/s fresh (floor {:.1} r/s)  {}",
        baseline.peak_throughput_rps,
        fresh.peak_throughput_rps,
        peak_floor,
        if fresh.peak_throughput_rps >= peak_floor {
            "ok"
        } else {
            "REGRESSED"
        }
    );
    if fresh.peak_throughput_rps < peak_floor {
        failures.push("open_loop/peak_throughput_rps");
    }
    // Same 1 ms absolute grace as serving: sub-millisecond knees are
    // scheduler noise territory.
    let knee_limit = baseline.knee_p99_ms * tolerance + 1.0;
    println!(
        "open-loop knee {:>10.3} ms baseline → {:>8.3} ms fresh (limit {:.3} ms)  {}",
        baseline.knee_p99_ms,
        fresh.knee_p99_ms,
        knee_limit,
        if fresh.knee_p99_ms <= knee_limit {
            "ok"
        } else {
            "REGRESSED"
        }
    );
    if fresh.knee_p99_ms > knee_limit {
        failures.push("open_loop/knee_p99_ms");
    }
    failures
}

/// Outcome of gating the serving section: the failed checks (empty =
/// pass). `None` = nothing comparable to gate.
fn gate_serving(
    baseline: &ServingRecord,
    fresh: &ServingRecord,
    tolerance: f64,
) -> Vec<&'static str> {
    let mut failures = Vec::new();
    // 1 ms absolute grace: at sub-millisecond baselines the ratio is
    // scheduler noise, not signal.
    let p99_limit = baseline.p99_ms * tolerance + 1.0;
    println!(
        "serving p99    {:>10.3} ms baseline → {:>10.3} ms fresh (limit {:.3} ms)  {}",
        baseline.p99_ms,
        fresh.p99_ms,
        p99_limit,
        if fresh.p99_ms <= p99_limit {
            "ok"
        } else {
            "REGRESSED"
        }
    );
    if fresh.p99_ms > p99_limit {
        failures.push("serving/p99_ms");
    }
    let hit_floor = (baseline.cache_hit_rate - 0.10).max(0.0);
    println!(
        "serving cache  {:>9.1}% baseline → {:>9.1}% fresh (floor {:.1}%)  {}",
        baseline.cache_hit_rate * 100.0,
        fresh.cache_hit_rate * 100.0,
        hit_floor * 100.0,
        if fresh.cache_hit_rate >= hit_floor {
            "ok"
        } else {
            "REGRESSED"
        }
    );
    if fresh.cache_hit_rate < hit_floor {
        failures.push("serving/cache_hit_rate");
    }
    failures
}

fn load(path: &str) -> PerfReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read perf record {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse perf record {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: perf_gate <baseline.json> <fresh.json> [tolerance]");
        std::process::exit(2);
    }
    let baseline = load(&args[1]);
    let fresh = load(&args[2]);
    let tolerance = args
        .get(3)
        .cloned()
        .or_else(|| std::env::var("RTS_PERF_GATE_TOLERANCE").ok())
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(2.0);

    // Per-instance times are only comparable when the two records were
    // measured under the same workload scale and worker count — a
    // 4-thread fresh run against a serial baseline would hide a 4x
    // regression. A mismatch is a gate-configuration error, not a pass.
    if baseline.scale != fresh.scale || baseline.threads != fresh.threads {
        eprintln!(
            "perf gate MISCONFIGURED: baseline (scale {}, threads {}) and fresh \
             (scale {}, threads {}) records are not comparable — pin RTS_SCALE / \
             RTS_THREADS to the committed baseline's values or regenerate it",
            baseline.scale, baseline.threads, fresh.scale, fresh.threads
        );
        std::process::exit(2);
    }

    // Same refusal for the synthesis corpus: v2 re-keys the hidden-state
    // streams precisely to change trace_gen's cost profile, so stage
    // times measured under different corpora are incomparable by
    // construction. A record without the field predates corpus
    // versioning and reads as v1 (corpus_tag's fallback).
    if baseline.corpus_tag() != fresh.corpus_tag() {
        eprintln!(
            "perf gate MISCONFIGURED: baseline (corpus {}) and fresh (corpus {}) \
             records were measured under different synthesis corpora and are not \
             comparable — pin RTS_CORPUS to the committed baseline's corpus or \
             regenerate the baseline under the new one",
            baseline.corpus_tag(),
            fresh.corpus_tag()
        );
        std::process::exit(2);
    }

    println!(
        "== perf gate: fresh vs committed baseline (tolerance {tolerance:.2}x, \
         baseline scale {}, fresh scale {})",
        baseline.scale, fresh.scale
    );
    println!(
        "{:<36} {:>14} {:>14} {:>8}  verdict",
        "stage", "baseline µs", "fresh µs", "ratio"
    );
    let comparisons = compare_perf(&baseline, &fresh, tolerance);
    for c in &comparisons {
        println!(
            "{:<36} {:>14.1} {:>14.1} {:>7.2}x  {}",
            c.stage,
            c.baseline_us,
            c.fresh_us,
            c.ratio,
            if c.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for b in &baseline.stages {
        if !fresh.stages.iter().any(|f| f.stage == b.stage) {
            println!("{:<36} (baseline-only stage — skipped)", b.stage);
        }
    }
    for f in &fresh.stages {
        if !baseline.stages.iter().any(|b| b.stage == f.stage) {
            println!("{:<36} (new stage — no baseline yet)", f.stage);
        }
    }

    let mut regressions: Vec<&str> = comparisons
        .iter()
        .filter(|c| c.regressed)
        .map(|c| c.stage.as_str())
        .collect();

    let serving_tolerance = std::env::var("RTS_PERF_GATE_SERVING_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(4.0);
    match (&baseline.serving, &fresh.serving) {
        (Some(b), Some(f)) => {
            // Same refusal rule as stages: latencies measured under a
            // different workload shape — worker/client counts, queue
            // bound, request count, deadline, any tenancy knob
            // (quotas, feedback timeout, parked budget all change
            // latencies by design), or a fault plan (injected panics
            // and retries change latencies by design too) — are
            // incomparable. A config error, not a pass.
            if serving_shape(b) != serving_shape(f) {
                eprintln!(
                    "perf gate MISCONFIGURED: serving sections are not comparable — \
                     baseline ({} workers, {} clients, queue {}, {} requests, \
                     deadline {:?} ms, tenancy {:?}, fault {:?}) vs fresh \
                     ({} workers, {} clients, queue {}, {} requests, \
                     deadline {:?} ms, tenancy {:?}, fault {:?}); pin the \
                     workload shape to the committed baseline's or regenerate it",
                    b.workers,
                    b.clients,
                    b.queue_capacity,
                    b.n_requests,
                    b.deadline_ms,
                    serving_shape(b).6,
                    serving_shape(b).7,
                    f.workers,
                    f.clients,
                    f.queue_capacity,
                    f.n_requests,
                    f.deadline_ms,
                    serving_shape(f).6,
                    serving_shape(f).7,
                );
                std::process::exit(2);
            }
            println!(
                "== serving gate (p99 tolerance {serving_tolerance:.2}x + 1 ms, \
                 cache-hit floor baseline − 0.10):"
            );
            regressions.extend(gate_serving(b, f, serving_tolerance));
            print!("{}", f.render());
        }
        (Some(_), None) => {
            // The serving section is gated now: a fresh record that
            // silently dropped it would un-gate it forever.
            eprintln!(
                "perf gate MISCONFIGURED: committed baseline has a serving section \
                 but the fresh record has none — the perf bin must run its serving \
                 workload (or regenerate the baseline without one)"
            );
            std::process::exit(2);
        }
        (None, Some(s)) => {
            println!("serving section (new — no baseline yet, not gated):");
            print!("{}", s.render());
        }
        (None, None) => {}
    }

    match (&baseline.open_loop, &fresh.open_loop) {
        (Some(b), Some(f)) => {
            if open_loop_shape(b) != open_loop_shape(f) {
                eprintln!(
                    "perf gate MISCONFIGURED: open-loop sections are not comparable — \
                     baseline ({} shards x {} workers, {} users / {} tenants, zipf {}, \
                     {} req/point, seed {:#x}, queue {}, cache {}, rates {:?}) vs fresh \
                     ({} shards x {} workers, {} users / {} tenants, zipf {}, \
                     {} req/point, seed {:#x}, queue {}, cache {}, rates {:?}); pin the \
                     sweep shape to the committed baseline's or regenerate it",
                    b.shards,
                    b.workers_per_shard,
                    b.users,
                    b.tenants,
                    b.zipf_s,
                    b.requests_per_point,
                    b.seed,
                    b.queue_capacity,
                    b.cache_capacity,
                    b.points.iter().map(|p| p.offered_rps).collect::<Vec<_>>(),
                    f.shards,
                    f.workers_per_shard,
                    f.users,
                    f.tenants,
                    f.zipf_s,
                    f.requests_per_point,
                    f.seed,
                    f.queue_capacity,
                    f.cache_capacity,
                    f.points.iter().map(|p| p.offered_rps).collect::<Vec<_>>(),
                );
                std::process::exit(2);
            }
            println!(
                "== open-loop gate (peak floor baseline/2, knee p99 tolerance \
                 {serving_tolerance:.2}x + 1 ms):"
            );
            regressions.extend(gate_open_loop(b, f, serving_tolerance));
            print!("{}", f.render());
        }
        (Some(_), None) => {
            // Same refusal as serving: silently dropping the section
            // would un-gate scale-out forever.
            eprintln!(
                "perf gate MISCONFIGURED: committed baseline has an open_loop section \
                 but the fresh record has none — the perf bin must run its open-loop \
                 sweep (or regenerate the baseline without one)"
            );
            std::process::exit(2);
        }
        (None, Some(o)) => {
            println!("open-loop section (new — no baseline yet, not gated):");
            print!("{}", o.render());
        }
        (None, None) => {}
    }
    if regressions.is_empty() {
        println!(
            "perf gate passed: {} comparable stages within {tolerance:.2}x",
            comparisons.len()
        );
    } else {
        eprintln!(
            "perf gate FAILED: {} stage(s) regressed beyond {tolerance:.2}x: {}",
            regressions.len(),
            regressions.join(", ")
        );
        std::process::exit(1);
    }
}

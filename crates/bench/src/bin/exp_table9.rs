//! Regenerates Table 9: answer accuracy by expertise × difficulty.
use rts_bench::{experiments::userstudy::table9, Context, Which};

fn main() {
    let ctx = Context::load(Which::Bird, rts_bench::env_scale(), rts_bench::env_seed());
    let report = table9(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

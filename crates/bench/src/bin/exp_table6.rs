//! Regenerates Table 6: schema linking with human feedback.
use rts_bench::{experiments::abstain::table6, Context, Which};

fn main() {
    let ctx = Context::load(Which::Both, rts_bench::env_scale(), rts_bench::env_seed());
    let report = table6(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

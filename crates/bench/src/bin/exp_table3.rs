//! Regenerates Table 3: average sBPP AUC.
use rts_bench::{experiments::linking::table3, Context, Which};

fn main() {
    let ctx = Context::load(Which::Both, rts_bench::env_scale(), rts_bench::env_seed());
    let report = table3(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

//! Regenerates Table 2: schema linking EM / precision / recall.
use rts_bench::{experiments::linking::table2, Context, Which};

fn main() {
    let ctx = Context::load(Which::Both, rts_bench::env_scale(), rts_bench::env_seed());
    let report = table2(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

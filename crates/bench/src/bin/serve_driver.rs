//! Closed-loop workload driver for the `rts-serve` engine, standalone.
//!
//! ```text
//! RTS_SCALE=0.03 cargo run --release -p rts-bench --bin serve_driver
//! ```
//!
//! Trains the usual artefacts, then drives a mixed joint-linking
//! workload (concurrent clients, human feedback on every suspension)
//! through the serving engine and prints the serving record. Knobs:
//!
//! * `RTS_SERVE_CLIENTS` (default 4) — closed-loop client threads;
//! * `RTS_SERVE_ROUNDS` (default 2) — passes over the dev split;
//! * `RTS_SERVE_TENANTS` (default 1) — distinct tenants, clients
//!   assigned round-robin;
//! * `RTS_SERVE_QUOTA` (default off) — per-tenant max in-flight;
//!   bounced submissions are retried (quota backpressure protocol);
//! * `RTS_SERVE_QUEUE` (default 16) — admission-queue bound;
//! * `RTS_SERVE_CACHE` (default 8) — context-cache capacity/target;
//! * `RTS_SERVE_DEADLINE_MS` (default off) — per-request budget;
//!   expired requests degrade to abstention instead of dropping;
//! * `RTS_SERVE_FEEDBACK_TIMEOUT_MS` (default off) — park-to-abstain
//!   feedback timeout;
//! * `RTS_SERVE_STALL_TENANT` (default off) — this tenant's clients
//!   never answer feedback; its flagged requests must complete through
//!   the feedback timeout;
//! * `RTS_SERVE_PARKED_BUDGET` (default off) — live parked-bytes
//!   budget; past it parked sessions are checkpointed out of memory;
//! * `RTS_SERVE_FAULT_SEED` (default off) — arm the deterministic
//!   fault-injection plan under this schedule seed (worker step
//!   panics, corrupt checkpoint decodes, failed context builds,
//!   lost/delayed feedback — see `rts_serve::fault`);
//! * `RTS_SERVE_FAULT_RATE` (default 0.05) — per-site trip
//!   probability when the plan is armed;
//! * `RTS_THREADS` — engine worker threads (as everywhere);
//! * `RTS_SERVE_RECORD=1` — merge the record into `./BENCH_rts.json`.
//!
//! The driver is self-verifying before it exits:
//! * zero drops — every submitted request completes, however it was
//!   degraded (shed, quota-bounced-then-retried, timed out, faulted);
//! * fairness — no tenant ever exceeded its in-flight quota;
//! * stalled tenants — every timed-out request abstained, and only the
//!   stalled tenant timed out; with a stall configured at least one
//!   timeout must actually fire;
//! * memory — parked bytes and checkpoint bytes return to 0 after the
//!   drain (per-ticket state is released eagerly, not at engine drop);
//! * chaos — with a fault plan armed, injected step panics actually
//!   fired and were recovered (the counters prove the machinery ran),
//!   and every faulted request degraded to abstention;
//! * outcome parity — with no deadline in play, each request's joint
//!   outcome equals the batch runtime's for the same instance (timed-
//!   out requests abstain by design and are skipped): the serve engine
//!   must never change answers, only when they arrive. Under an armed
//!   fault plan the check covers every *unfaulted* request — recovery
//!   must be invisible in the answers.

use rts_bench::report::PerfReport;
use rts_bench::serving::{run_workload, serving_record, WorkloadConfig};
use rts_core::abstention::{LinkScratch, MitigationPolicy, RtsConfig};
use rts_core::bpp::{Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_core::context::LinkContexts;
use rts_core::human::{Expertise, HumanOracle};
use rts_core::pipeline::run_joint_linking_in;
use rts_serve::{FaultPlan, ServeConfig, TenantId, TenantQuota};
use simlm::{LinkTarget, SchemaLinker};
use std::time::Duration;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_ms(key: &str) -> Option<Duration> {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|ms| Duration::from_secs_f64(ms / 1e3))
}

fn main() {
    let scale = std::env::var("RTS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03);
    let seed = rts_bench::env_seed();

    let t0 = std::time::Instant::now();
    let bench = benchgen::BenchmarkProfile::bird_like()
        .scaled(scale)
        .generate(seed);
    let linker = SchemaLinker::new("bird", seed ^ 0x11CC);
    let probe_cfg = MbppConfig {
        probe: ProbeConfig {
            epochs: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let ds_t = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 400);
    let ds_c = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Columns, 400);
    let mbpp_t = Mbpp::train(&ds_t, &probe_cfg);
    let mbpp_c = Mbpp::train(&ds_c, &probe_cfg);
    eprintln!(
        "[serve_driver] setup (benchmark + mBPPs) in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    let tenants = env_usize("RTS_SERVE_TENANTS", 1);
    let quota = env_usize("RTS_SERVE_QUOTA", 0);
    let stall_tenant: Option<TenantId> = std::env::var("RTS_SERVE_STALL_TENANT")
        .ok()
        .and_then(|v| v.parse().ok());
    let fault = match std::env::var("RTS_SERVE_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(fault_seed) => {
            let rate = std::env::var("RTS_SERVE_FAULT_RATE")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(0.05);
            // Injected panics are scheduled, not bugs: keep their
            // backtraces out of the log (genuine panics still print).
            rts_serve::fault::silence_injected_panics();
            eprintln!("[serve_driver] chaos: fault plan armed (seed {fault_seed}, rate {rate})");
            FaultPlan::seeded(fault_seed, rate)
        }
        None => FaultPlan::disabled(),
    };
    let fault_enabled = fault.is_enabled();
    let config = WorkloadConfig {
        clients: env_usize("RTS_SERVE_CLIENTS", 4),
        rounds: env_usize("RTS_SERVE_ROUNDS", 2),
        tenants,
        stall_tenant,
        serve: ServeConfig {
            queue_capacity: env_usize("RTS_SERVE_QUEUE", 16),
            cache_capacity: env_usize("RTS_SERVE_CACHE", 8),
            quota: TenantQuota {
                max_in_flight: quota,
                max_parked: 0,
            },
            deadline: env_ms("RTS_SERVE_DEADLINE_MS"),
            feedback_timeout: env_ms("RTS_SERVE_FEEDBACK_TIMEOUT_MS"),
            parked_bytes_budget: env_usize("RTS_SERVE_PARKED_BUDGET", 0),
            fault,
            rts: RtsConfig {
                seed,
                ..RtsConfig::default()
            },
            ..ServeConfig::default()
        },
        oracle: HumanOracle::new(Expertise::Expert, seed ^ 0x0DDE),
    };

    let instances = &bench.split.dev;
    let result = run_workload(&linker, &mbpp_t, &mbpp_c, &bench.metas, instances, &config);
    let record = serving_record(&result, &config);
    print!("{}", record.render());

    // Self-check 1: degrade, never drop — whatever the knobs did.
    assert_eq!(
        record.completed as usize, result.n_requests,
        "every request must complete (shed/timeout degrade, never drop)"
    );

    // Self-check 2: fairness — the engine never let any tenant exceed
    // its in-flight quota, however hard its clients pushed.
    if quota > 0 {
        assert!(
            result.stats.tenant_in_flight_peak <= quota,
            "fairness violated: a tenant reached {} in flight with quota {quota}",
            result.stats.tenant_in_flight_peak,
        );
        eprintln!(
            "[serve_driver] fairness: peak per-tenant in-flight {} ≤ quota {quota} \
             ({} quota bounces retried)",
            result.stats.tenant_in_flight_peak, result.stats.rejected_quota,
        );
    }

    // Self-check 3: stalled tenants time out into abstention. Every
    // timed-out request must have abstained (the degrade-never-drop
    // contract — hard assert); a *non*-stalled tenant timing out is
    // possible on a contended runner (its prompt answer can still lose
    // the scheduling race against the park deadline), so that is
    // reported, not failed.
    if let Some(stalled) = stall_tenant {
        let stalled_timeouts = result
            .outcomes
            .iter()
            .filter(|r| r.tenant == stalled && r.timed_out)
            .count();
        assert!(
            stalled_timeouts > 0,
            "a stalled tenant must hit the feedback timeout at least once"
        );
        for r in &result.outcomes {
            if r.timed_out {
                assert!(
                    r.outcome.abstained(),
                    "timed-out request must abstain (instance {})",
                    r.instance
                );
            }
        }
        let bystander_timeouts = result
            .outcomes
            .iter()
            .filter(|r| r.tenant != stalled && r.timed_out)
            .count();
        if bystander_timeouts > 0 {
            eprintln!(
                "[serve_driver] note: {bystander_timeouts} non-stalled request(s) also \
                 timed out (scheduling noise; their answers were dropped, not misapplied)"
            );
        }
        eprintln!(
            "[serve_driver] stall: tenant {stalled} had {stalled_timeouts} requests \
             time out to abstention ({} total engine timeouts); zero drops across \
             all tenants",
            result.stats.timed_out_to_abstention,
        );
    }

    // Self-check 4: parked state is released eagerly — after the drain
    // the engine holds no session memory, live or checkpointed.
    assert_eq!(
        result.stats.parked_sessions_now, 0,
        "drained engine still holds parked sessions"
    );
    assert_eq!(
        result.stats.parked_bytes_now, 0,
        "drained engine still bills parked bytes"
    );
    assert_eq!(
        result.stats.checkpoint_bytes_now, 0,
        "drained engine still holds checkpoint bytes"
    );
    if config.serve.parked_bytes_budget > 0 {
        eprintln!(
            "[serve_driver] checkpointing: {} parked sessions evicted to bytes, {} restored, \
             peak {} checkpoint B (budget {} B); parked bytes back to 0 after drain",
            result.stats.checkpoints,
            result.stats.restores,
            result.stats.checkpoint_bytes_peak,
            config.serve.parked_bytes_budget,
        );
    }

    // Self-check 5: chaos — an armed fault plan must actually have
    // exercised the recovery machinery, and every unrecoverable fault
    // must have degraded to abstention (never a drop — check 1 already
    // proved completion).
    if fault_enabled {
        let stats = &result.stats;
        assert!(
            stats.panics_recovered > 0,
            "an armed step-panic site must fire on this workload"
        );
        for r in &result.outcomes {
            if r.faulted {
                assert!(
                    r.outcome.abstained(),
                    "faulted request must abstain (instance {})",
                    r.instance
                );
            }
        }
        let faulted = result.outcomes.iter().filter(|r| r.faulted).count();
        eprintln!(
            "[serve_driver] chaos: {} step panics recovered ({} tickets degraded to \
             faulted abstention), {} corrupt checkpoints salvaged, {} context-build \
             fallbacks, feedback {} lost / {} delayed; {faulted} faulted outcomes, \
             zero drops, gauges drained",
            stats.panics_recovered,
            stats.panics_to_abstention,
            stats.corrupt_checkpoints_recovered,
            stats.context_build_fallbacks,
            stats.feedback_lost,
            stats.feedback_delayed,
        );
    } else {
        assert!(
            result.outcomes.iter().all(|r| !r.faulted),
            "no fault plan, nothing may fault"
        );
    }

    // Self-check 6: outcome parity against the batch runtime — only
    // meaningful where nothing was degraded by wall-clock effects
    // (deadlines shed whole stages, so those runs are excluded;
    // timed-out requests are skipped individually). Under an armed
    // fault plan, *recovered* faults must be invisible: every
    // unfaulted, untimed request still answers exactly like the batch
    // run.
    if config.serve.deadline.is_none() {
        let contexts = LinkContexts::build(&bench);
        let policy = MitigationPolicy::Human(&config.oracle);
        let mut scratch = LinkScratch::default();
        let mut checked = 0usize;
        for r in &result.outcomes {
            assert!(!r.shed, "no deadline, nothing may shed");
            if config.serve.feedback_timeout.is_none() {
                assert!(!r.timed_out, "no timeout, nothing should time out");
            }
            if r.faulted || r.timed_out {
                // Degraded by an unrecoverable injected fault or a
                // park timeout: abstained by design (asserted above),
                // not batch-comparable.
                continue;
            }
            checked += 1;
            let inst = instances
                .iter()
                .find(|i| i.id == r.instance)
                .expect("known id");
            let batch = run_joint_linking_in(
                &linker,
                &mbpp_t,
                &mbpp_c,
                inst,
                &bench,
                &contexts,
                &policy,
                &config.serve.rts,
                &mut scratch,
            );
            assert_eq!(
                format!("{:?}", r.outcome),
                format!("{batch:?}"),
                "serve/batch outcome mismatch on instance {}",
                r.instance
            );
        }
        eprintln!(
            "[serve_driver] outcome parity: {checked}/{} served requests ≡ batch runtime",
            result.outcomes.len()
        );
    }

    if std::env::var("RTS_SERVE_RECORD").is_ok_and(|v| v == "1") {
        let path = std::path::Path::new("BENCH_rts.json");
        let text = std::fs::read_to_string(path).expect("BENCH_rts.json exists — run perf first");
        let mut perf: PerfReport = serde_json::from_str(&text).expect("parse BENCH_rts.json");
        perf.serving = Some(record);
        perf.save_bench_json(std::path::Path::new("."))
            .expect("write BENCH_rts.json");
        eprintln!("[serve_driver] merged serving section into BENCH_rts.json");
    }
}

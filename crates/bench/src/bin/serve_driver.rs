//! Closed-loop workload driver for the `rts-serve` engine, standalone.
//!
//! ```text
//! RTS_SCALE=0.03 cargo run --release -p rts-bench --bin serve_driver
//! ```
//!
//! Trains the usual artefacts, then drives a mixed joint-linking
//! workload (concurrent clients, human feedback on every suspension)
//! through the serving engine and prints the serving record. Knobs:
//!
//! * `RTS_SERVE_CLIENTS` (default 4) — closed-loop client threads;
//! * `RTS_SERVE_ROUNDS` (default 2) — passes over the dev split;
//! * `RTS_SERVE_QUEUE` (default 16) — admission-queue bound;
//! * `RTS_SERVE_CACHE` (default 8) — context-cache capacity/target;
//! * `RTS_SERVE_DEADLINE_MS` (default off) — per-request budget;
//!   expired requests degrade to abstention instead of dropping;
//! * `RTS_THREADS` — engine worker threads (as everywhere);
//! * `RTS_SERVE_RECORD=1` — merge the record into `./BENCH_rts.json`.
//!
//! The driver is self-verifying: with shedding off it asserts each
//! request's joint outcome equals the batch runtime's for the same
//! instance — the serve engine must never change answers, only when
//! they arrive.

use rts_bench::report::PerfReport;
use rts_bench::serving::{run_workload, serving_record, WorkloadConfig};
use rts_core::abstention::{LinkScratch, MitigationPolicy, RtsConfig};
use rts_core::bpp::{Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_core::context::LinkContexts;
use rts_core::human::{Expertise, HumanOracle};
use rts_core::pipeline::run_joint_linking_in;
use rts_serve::ServeConfig;
use simlm::{LinkTarget, SchemaLinker};
use std::time::Duration;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = std::env::var("RTS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03);
    let seed = rts_bench::env_seed();

    let t0 = std::time::Instant::now();
    let bench = benchgen::BenchmarkProfile::bird_like()
        .scaled(scale)
        .generate(seed);
    let linker = SchemaLinker::new("bird", seed ^ 0x11CC);
    let probe_cfg = MbppConfig {
        probe: ProbeConfig {
            epochs: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let ds_t = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 400);
    let ds_c = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Columns, 400);
    let mbpp_t = Mbpp::train(&ds_t, &probe_cfg);
    let mbpp_c = Mbpp::train(&ds_c, &probe_cfg);
    eprintln!(
        "[serve_driver] setup (benchmark + mBPPs) in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    let deadline = std::env::var("RTS_SERVE_DEADLINE_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|ms| Duration::from_secs_f64(ms / 1e3));
    let config = WorkloadConfig {
        clients: env_usize("RTS_SERVE_CLIENTS", 4),
        rounds: env_usize("RTS_SERVE_ROUNDS", 2),
        serve: ServeConfig {
            queue_capacity: env_usize("RTS_SERVE_QUEUE", 16),
            cache_capacity: env_usize("RTS_SERVE_CACHE", 8),
            deadline,
            rts: RtsConfig {
                seed,
                ..RtsConfig::default()
            },
            ..ServeConfig::default()
        },
        oracle: HumanOracle::new(Expertise::Expert, seed ^ 0x0DDE),
    };

    let instances = &bench.split.dev;
    let result = run_workload(&linker, &mbpp_t, &mbpp_c, &bench.metas, instances, &config);
    let record = serving_record(&result, &config);
    print!("{}", record.render());
    assert_eq!(
        record.completed as usize, result.n_requests,
        "every request must complete (shedding degrades, never drops)"
    );

    if config.serve.deadline.is_none() {
        // Self-check: served outcomes ≡ the batch runtime.
        let contexts = LinkContexts::build(&bench);
        let policy = MitigationPolicy::Human(&config.oracle);
        let mut scratch = LinkScratch::default();
        for (id, served, shed) in &result.outcomes {
            assert!(!shed, "no deadline, nothing may shed");
            let inst = instances.iter().find(|i| i.id == *id).expect("known id");
            let batch = run_joint_linking_in(
                &linker,
                &mbpp_t,
                &mbpp_c,
                inst,
                &bench,
                &contexts,
                &policy,
                &config.serve.rts,
                &mut scratch,
            );
            assert_eq!(
                format!("{served:?}"),
                format!("{batch:?}"),
                "serve/batch outcome mismatch on instance {id}"
            );
        }
        eprintln!(
            "[serve_driver] outcome parity: {} served requests ≡ batch runtime",
            result.outcomes.len()
        );
    }

    if std::env::var("RTS_SERVE_RECORD").is_ok_and(|v| v == "1") {
        let path = std::path::Path::new("BENCH_rts.json");
        let text = std::fs::read_to_string(path).expect("BENCH_rts.json exists — run perf first");
        let mut perf: PerfReport = serde_json::from_str(&text).expect("parse BENCH_rts.json");
        perf.serving = Some(record);
        perf.save_bench_json(std::path::Path::new("."))
            .expect("write BENCH_rts.json");
        eprintln!("[serve_driver] merged serving section into BENCH_rts.json");
    }
}

//! Regenerates Table 7: downstream EX under golden / RTS / baseline
//! schemas for both generator classes.
use rts_bench::{experiments::ex::table7, Context, Which};

fn main() {
    let ctx = Context::load(Which::Both, rts_bench::env_scale(), rts_bench::env_seed());
    let report = table7(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

//! Runs the ablation suite (probe depth, conformal variant, layer
//! selection, merge-set sizes).
use rts_bench::experiments::ablation::*;
use rts_bench::{Context, Which};

fn main() {
    let ctx = Context::load(Which::Bird, rts_bench::env_scale(), rts_bench::env_seed());
    for report in [
        ablation_probe_depth(&ctx),
        ablation_conformal(&ctx),
        ablation_layer_selection(&ctx),
        ablation_merge_sets(&ctx),
    ] {
        print!("{}", report.render());
        report
            .save(std::path::Path::new("results"))
            .expect("save report");
    }
}

//! Regenerates Table 5: RTS linking with mBPP abstention and the
//! surrogate filter (EM / TAR / FAR).
use rts_bench::{experiments::abstain::table5, Context, Which};

fn main() {
    let ctx = Context::load(Which::Both, rts_bench::env_scale(), rts_bench::env_seed());
    let report = table5(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

//! Regenerates Table 4: surrogate model accuracy.
use rts_bench::{experiments::linking::table4, Context, Which};

fn main() {
    let ctx = Context::load(Which::Both, rts_bench::env_scale(), rts_bench::env_seed());
    let report = table4(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

//! Regenerates Table 1: EX by schema configuration on BIRD dev.
use rts_bench::{experiments::ex::table1, Context, Which};

fn main() {
    let ctx = Context::load(Which::Bird, rts_bench::env_scale(), rts_bench::env_seed());
    let report = table1(&ctx);
    print!("{}", report.render());
    report
        .save(std::path::Path::new("results"))
        .expect("save report");
}

//! Fast calibration loop: the head-line numbers the knobs target.

use rts_bench::experiments::{abstain, coverage_over_split, free_linking_metrics};
use rts_bench::{Context, Which};
use rts_core::abstention::MitigationPolicy;
use rts_core::metrics::{abstention_metrics, AbstentionOutcome};
use simlm::LinkTarget;

fn main() {
    let scale = rts_bench::env_scale();
    let ctx = Context::load(Which::Both, scale, rts_bench::env_seed());

    for (name, arts) in [("bird", ctx.bird()), ("spider", ctx.spider())] {
        let dev = &arts.bench.split.dev;
        let t = free_linking_metrics(arts, dev, LinkTarget::Tables);
        let c = free_linking_metrics(arts, dev, LinkTarget::Columns);
        println!(
            "{name}: table EM {:.1} P {:.1} R {:.1} | column EM {:.1} P {:.1} R {:.1}",
            t.exact_match * 100.0,
            t.precision * 100.0,
            t.recall * 100.0,
            c.exact_match * 100.0,
            c.precision * 100.0,
            c.recall * 100.0
        );
    }

    let arts = ctx.bird();
    let dev = &arts.bench.split.dev;
    for (target, mbpp, label) in [
        (LinkTarget::Tables, &arts.mbpp_tables, "tables"),
        (LinkTarget::Columns, &arts.mbpp_columns, "columns"),
    ] {
        print!("fig6 {label}:");
        for alpha in [0.05, 0.10, 0.15, 0.20] {
            let m = mbpp.with_alpha(alpha);
            let cov = coverage_over_split(arts, &m, dev, target, 0xF6);
            print!(
                " α={alpha}: cov {:.1} ear {:.2} |",
                cov.coverage * 100.0,
                cov.ear * 100.0
            );
        }
        println!();
    }
    print!("fig7 tables:");
    for k in [1usize, 5, 15, 30] {
        let perm = arts.mbpp_tables.with_k(k);
        let vote = perm.with_method(rts_core::bpp::MergeMethod::MajorityVote { theta: 0.5 });
        let cp = coverage_over_split(arts, &perm, dev, LinkTarget::Tables, 0xF7);
        let cv = coverage_over_split(arts, &vote, dev, LinkTarget::Tables, 0xF7);
        print!(
            " k={k}: perm {:.0}/{:.2} vote {:.0}/{:.2} |",
            cp.coverage * 100.0,
            cp.ear * 100.0,
            cv.coverage * 100.0,
            cv.ear * 100.0
        );
    }
    println!();

    // Table 5 quick check (bird tables, abstain-only).
    let outs = abstain::outcomes_for(
        arts,
        dev,
        LinkTarget::Tables,
        &MitigationPolicy::AbstainOnly,
        0xC0FFEE,
    );
    let m = abstention_metrics(
        &outs
            .iter()
            .map(|o| AbstentionOutcome {
                abstained: o.abstained,
                correct: o.correct,
                would_be_correct: o.would_be_correct,
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "table5 bird tables (abstain): EM {:.1} TAR {:.1} FAR {:.1} (paper 98.9/19.1/12.8)",
        m.exact_match * 100.0,
        m.tar * 100.0,
        m.far * 100.0
    );

    // Table 6 quick check: joint human-feedback EM.
    let oracle =
        rts_core::human::HumanOracle::new(rts_core::human::Expertise::Expert, 0x11 ^ 0xC0FFEE);
    let take = dev.len().min(400);
    let outcomes =
        rts_bench::experiments::abstain::joint_outcomes(arts, &dev[..take], &oracle, 0xC0FFEE);
    let s6 = rts_bench::experiments::abstain::summarise_joint(&outcomes);
    println!(
        "table6 bird joint (human): table EM {:.1} column EM {:.1} TAR {:.1} FAR {:.1} (paper 96.9/96.0/19.0/13.7)",
        s6.em_tables * 100.0,
        s6.em_columns * 100.0,
        s6.tar * 100.0,
        s6.far * 100.0
    );
}

//! # rts-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§4),
//! regenerating the same rows/series with the paper's number printed
//! alongside the measured one. Binaries in `src/bin/exp_*.rs` are thin
//! wrappers; `exp_all` runs everything and rewrites `EXPERIMENTS.md`.
//!
//! Scale is controlled by the `RTS_SCALE` environment variable
//! (fraction of the full benchmark size, default 1.0 = the paper's
//! 9428/1534-instance BIRD and 8659/1034/2147-instance Spider) and the
//! seed by `RTS_SEED` (default 0xC0FFEE).

pub mod context;
pub mod experiments;
pub mod openloop;
pub mod report;
pub mod serving;

pub use context::{Context, Which};
pub use report::{Report, Row};

/// Read harness scale from the environment.
pub fn env_scale() -> f64 {
    std::env::var("RTS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Read harness seed from the environment.
pub fn env_seed() -> u64 {
    std::env::var("RTS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

//! # rts-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§4),
//! regenerating the same rows/series with the paper's number printed
//! alongside the measured one. Binaries in `src/bin/exp_*.rs` are thin
//! wrappers; `exp_all` runs everything and rewrites `EXPERIMENTS.md`.
//!
//! Scale is controlled by the `RTS_SCALE` environment variable
//! (fraction of the full benchmark size, default 1.0 = the paper's
//! 9428/1534-instance BIRD and 8659/1034/2147-instance Spider) and the
//! seed by `RTS_SEED` (default 0xC0FFEE).

pub mod context;
pub mod experiments;
pub mod openloop;
pub mod report;
pub mod serving;

pub use context::{Context, Which};
pub use report::{Report, Row};

/// Read harness scale from the environment.
pub fn env_scale() -> f64 {
    std::env::var("RTS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Read harness seed from the environment.
pub fn env_seed() -> u64 {
    std::env::var("RTS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// Read the synthesis corpus version from the environment
/// (`RTS_CORPUS=v1|v2`, default v2). `v1` pins the frozen corpus the
/// archived `results/v1/*.json` were generated under; anything else is
/// rejected loudly — silently falling back would regenerate records
/// under the wrong corpus and poison every comparison.
pub fn env_corpus() -> simlm::CorpusVersion {
    match std::env::var("RTS_CORPUS").as_deref() {
        Ok("v1") => simlm::CorpusVersion::V1,
        Ok("v2") | Err(_) => simlm::CorpusVersion::V2,
        Ok(other) => panic!("RTS_CORPUS must be v1 or v2, got {other:?}"),
    }
}

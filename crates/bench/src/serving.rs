//! Closed-loop workload driver for the `rts-serve` engine.
//!
//! Simulates production traffic against a [`ServeEngine`]: a pool of
//! client threads, each owning a slice of the instance set and tagged
//! with a [`TenantId`], submits joint-linking requests, answers every
//! `NeedsFeedback` suspension with the human oracle, and measures
//! submit-to-completion latency. "Closed loop" = each client has one
//! request in flight at a time, so offered load tracks service
//! capacity and the engine's queues show realistic depth instead of
//! unbounded backlog.
//!
//! Multi-tenant shapes: [`WorkloadConfig::tenants`] spreads the
//! clients over N tenants (round-robin), exercising the fair queue and
//! per-tenant quotas, and [`WorkloadConfig::stall_tenant`] marks one
//! tenant's clients as *never answering feedback* — their flagged
//! requests only complete through the engine's feedback timeout
//! (park → abstain), which is exactly what the CI smoke leg asserts.
//!
//! The driver is what the `perf` binary and the `serve_driver` smoke
//! binary run to produce the `serving` section of `BENCH_rts.json`.

use crate::report::{FaultRecord, ServingRecord, TenancyRecord};
use rts_core::abstention::MitigationPolicy;
use rts_core::bpp::Mbpp;
use rts_core::human::HumanOracle;
use rts_core::pipeline::JointOutcome;
use rts_core::session::resolve_flag;
use rts_serve::{drive_closed_loop, Engine, ServeConfig, ServeEngine, TenantId};
use simlm::SchemaLinker;
use std::time::{Duration, Instant};

/// Workload shape.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Closed-loop client threads.
    pub clients: usize,
    /// Passes each client makes over its instance slice (≥ 2 gives the
    /// context cache a warm pass to show hits).
    pub rounds: usize,
    /// Distinct tenants; client `c` submits as tenant `c % tenants`.
    pub tenants: usize,
    /// A tenant whose clients never answer feedback: its flagged
    /// requests complete only through the engine's feedback timeout.
    /// Requires `serve.feedback_timeout` to be set, or those clients
    /// would wait forever.
    pub stall_tenant: Option<TenantId>,
    /// Engine configuration (workers, queue bound, quotas, deadline,
    /// feedback timeout, parked budget, cache).
    pub serve: ServeConfig,
    /// The oracle clients answer feedback queries with.
    pub oracle: HumanOracle,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            rounds: 2,
            tenants: 1,
            stall_tenant: None,
            serve: ServeConfig::default(),
            oracle: HumanOracle::new(rts_core::human::Expertise::Expert, 9),
        }
    }
}

/// One served request, as the client observed it.
#[derive(Debug, Clone)]
pub struct ServedRequest {
    pub tenant: TenantId,
    pub instance: u64,
    pub outcome: JointOutcome,
    /// Deadline shedding degraded a stage to abstention.
    pub shed: bool,
    /// A feedback timeout resolved a flag to abstention.
    pub timed_out: bool,
    /// An unrecoverable fault degraded the request to abstention
    /// (recovered faults leave outcomes identical and do not set this).
    pub faulted: bool,
}

/// What one workload run produced.
#[derive(Debug)]
pub struct WorkloadResult {
    /// Per-request outcomes in client completion order.
    pub outcomes: Vec<ServedRequest>,
    /// The engine's counter snapshot at drain.
    pub stats: rts_serve::ServingStats,
    /// Whole-workload wall time.
    pub wall: Duration,
    /// Requests submitted (`instances × rounds`).
    pub n_requests: usize,
}

/// Drive a closed-loop workload: build the engine, spawn its workers
/// plus `config.clients` client threads, run `rounds` passes over
/// `instances`, drain, and snapshot the stats.
pub fn run_workload(
    model: &SchemaLinker,
    mbpp_tables: &Mbpp,
    mbpp_columns: &Mbpp,
    metas: &[benchgen::schemagen::DbMeta],
    instances: &[benchgen::Instance],
    config: &WorkloadConfig,
) -> WorkloadResult {
    assert!(
        config.clients > 0 && config.rounds > 0 && config.tenants > 0,
        "empty workload"
    );
    assert!(
        config.stall_tenant.is_none() || config.serve.feedback_timeout.is_some(),
        "a stalled tenant without a feedback timeout would wait forever"
    );
    let engine = ServeEngine::new(
        model,
        mbpp_tables,
        mbpp_columns,
        metas,
        config.serve.clone(),
    );
    let t0 = Instant::now();
    let outcomes: Vec<ServedRequest> = crossbeam::thread::scope(|s| {
        for _ in 0..engine.config().workers {
            s.spawn(|_| engine.worker_loop());
        }
        let collected = run_clients(&engine, instances, config);
        engine.shutdown();
        collected
    })
    .expect("workload scope panicked");
    let wall = t0.elapsed();
    WorkloadResult {
        outcomes,
        stats: engine.stats(),
        wall,
        n_requests: instances.len() * config.rounds,
    }
}

/// Spawn `config.clients` closed-loop client threads against any
/// [`Engine`] — the in-process engines or the `rts-client` wire client
/// — and collect every served request. The caller owns the engine's
/// lifecycle (workers, shutdown); this is only the client side, which
/// is exactly what the wire driver reuses against a remote server.
pub fn run_clients<E: Engine>(
    engine: &E,
    instances: &[benchgen::Instance],
    config: &WorkloadConfig,
) -> Vec<ServedRequest> {
    let per_client: Vec<Vec<benchgen::Instance>> = (0..config.clients)
        .map(|c| {
            instances
                .iter()
                .skip(c)
                .step_by(config.clients)
                .cloned()
                .collect()
        })
        .collect();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = per_client
            .iter()
            .enumerate()
            .map(|(c, slice)| {
                let oracle = &config.oracle;
                let rounds = config.rounds;
                let tenant = (c % config.tenants) as TenantId;
                let stalled = config.stall_tenant == Some(tenant);
                s.spawn(move |_| client_loop(engine, tenant, stalled, slice, oracle, rounds))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("workload client panicked"))
            .collect()
    })
    .expect("workload scope panicked")
}

/// One client: submit each owned instance `rounds` times as `tenant`
/// through the shared [`drive_closed_loop`] protocol (bounced
/// admissions retried, every feedback suspension answered with the
/// oracle). A stalled client *stalls* instead of answering — it
/// re-polls until the engine's feedback timeout completes the request.
fn client_loop<E: Engine>(
    engine: &E,
    tenant: TenantId,
    stalled: bool,
    instances: &[benchgen::Instance],
    oracle: &HumanOracle,
    rounds: usize,
) -> Vec<ServedRequest> {
    let policy = MitigationPolicy::Human(oracle);
    let mut out = Vec::with_capacity(instances.len() * rounds);
    for _ in 0..rounds {
        let served = drive_closed_loop(engine, tenant, instances, |inst, query| {
            if stalled {
                // Never answer; the park-to-abstention timeout will
                // complete the request.
                None
            } else {
                // `Stale` is a legal race under feedback timeouts or
                // injected loss/delay — the driver absorbs it and the
                // next poll picks up the current state.
                Some(resolve_flag(&policy, inst, query))
            }
        });
        out.extend(served.into_iter().map(|(instance, done)| ServedRequest {
            tenant,
            instance,
            outcome: done.outcome,
            shed: done.shed,
            timed_out: done.timed_out,
            faulted: done.faulted,
        }));
    }
    out
}

/// Flatten a workload run into the `BENCH_rts.json` `serving` section.
pub fn serving_record(result: &WorkloadResult, config: &WorkloadConfig) -> ServingRecord {
    let s = &result.stats;
    let wall_ms = result.wall.as_secs_f64() * 1e3;
    ServingRecord {
        workers: config.serve.workers,
        clients: config.clients,
        queue_capacity: config.serve.queue_capacity,
        cache_capacity: config.serve.cache_capacity,
        deadline_ms: config.serve.deadline.map(|d| d.as_secs_f64() * 1e3),
        n_requests: result.n_requests,
        completed: s.completed,
        shed: s.shed,
        rejected_submits: s.rejected,
        feedback_rounds: s.feedback_rounds,
        p50_ms: s.latency.p50_ms,
        p95_ms: s.latency.p95_ms,
        p99_ms: s.latency.p99_ms,
        mean_ms: s.latency.mean_ms,
        max_ms: s.latency.max_ms,
        throughput_rps: if wall_ms > 0.0 {
            s.completed as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        queue_depth_max: s.queue_depth_max,
        queue_depth_mean: s.queue_depth_mean,
        cache_hits: s.cache.hits,
        cache_misses: s.cache.misses,
        cache_evictions: s.cache.evictions,
        cache_hit_rate: s.cache.hit_rate(),
        parked_bytes_peak: s.parked_bytes_peak as u64,
        parked_sessions_peak: s.parked_sessions_peak as u64,
        wall_ms,
        tenancy: Some(TenancyRecord {
            tenants: config.tenants,
            quota_max_in_flight: config.serve.quota.max_in_flight,
            quota_max_parked: config.serve.quota.max_parked,
            feedback_timeout_ms: config.serve.feedback_timeout.map(|t| t.as_secs_f64() * 1e3),
            parked_bytes_budget: config.serve.parked_bytes_budget as u64,
            rejected_quota: s.rejected_quota,
            timed_out_to_abstention: s.timed_out_to_abstention,
            checkpoints: s.checkpoints,
            restores: s.restores,
            checkpoint_bytes_peak: s.checkpoint_bytes_peak as u64,
            tenant_in_flight_peak: s.tenant_in_flight_peak,
        }),
        fault: config.serve.fault.is_enabled().then(|| FaultRecord {
            seed: config.serve.fault.seed,
            step_panic_rate: config.serve.fault.rate_of(rts_serve::FaultSite::StepPanic),
            panics_recovered: s.panics_recovered,
            panics_to_abstention: s.panics_to_abstention,
            corrupt_checkpoints_recovered: s.corrupt_checkpoints_recovered,
            context_build_fallbacks: s.context_build_fallbacks,
            feedback_lost: s.feedback_lost,
            feedback_delayed: s.feedback_delayed,
            drained_to_abstention: s.drained_to_abstention,
        }),
    }
}

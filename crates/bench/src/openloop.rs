//! Open-loop load harness for the sharded serving engine.
//!
//! The closed-loop driver ([`crate::serving`]) couples offered load to
//! service capacity: each client waits for its previous request before
//! submitting the next, so the engine is never offered more than it
//! can serve and saturation is invisible. This module is the opposite
//! discipline — **open loop**: arrivals follow a seeded Poisson
//! process whose rate is fixed *in advance*, independent of how fast
//! the engine answers. Sweeping that rate upward traces the
//! throughput-vs-latency curve and exposes the *saturation knee*, the
//! highest offered rate the engine still sustains (achieved ≥ 90% of
//! offered); past it, the schedule lags and latency grows without
//! bound.
//!
//! Determinism is split down the middle, deliberately:
//!
//! * **The schedule is virtual-clock and pure.** [`build_schedule`] is
//!   a function of the seed alone — SplitMix64 exponential
//!   inter-arrival gaps, Zipf-skewed simulated users mapped onto
//!   tenants, Zipf-skewed database popularity, uniform instance choice
//!   within a database. Same seed, same `Vec<Arrival>`, byte for byte,
//!   on any machine. The `rts-analyze` determinism pass covers this
//!   module to keep it that way.
//! * **Execution and measurement are wall-clock and are not.** A load
//!   *harness* must pace real submissions against a real engine and
//!   time real completions; every `Instant::now()` below is that
//!   deliberate real-time measurement, individually waived with a
//!   reasoned clock annotation. What stays deterministic under load is
//!   the
//!   *outcomes*: per-request results are pure functions of `(instance,
//!   seed)` plus oracle resolutions, so a sweep's outcome keys are
//!   byte-identical across shard counts, worker counts, and machine
//!   speed — only the latency numbers move. The driver's parity
//!   self-check and the `sharded_engine_matches_single_shard` proptest
//!   both lean on [`SweepResult::outcomes`] for exactly this.
//!
//! Latency is measured from the request's *scheduled* arrival, not its
//! actual submit: when the submitter falls behind past saturation, the
//! lag lands in the tail percentiles instead of silently vanishing —
//! the standard defense against coordinated omission.

use crate::report::{OpenLoopPoint, OpenLoopRecord};
use rts_core::abstention::MitigationPolicy;
use rts_core::bpp::Mbpp;
use rts_core::human::HumanOracle;
use rts_core::session::resolve_flag;
use rts_serve::{
    ClientEvent, Engine, LatencySummary, ServeConfig, ShardedEngine, SubmitError, TenantId,
};
use simlm::SchemaLinker;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Shape of one open-loop sweep.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Shards of the [`ShardedEngine`] under test.
    pub shards: usize,
    /// Simulated-user population; each arrival is attributed to a
    /// Zipf-sampled user (user 0 hottest).
    pub users: u32,
    /// Tenants the users map onto (`user % tenants`).
    pub tenants: u32,
    /// Zipf exponent for both the user and the database popularity
    /// skew. 0 = uniform; BIRD-ish production skew is around 1.1.
    pub zipf_s: f64,
    /// Arrivals generated per sweep point.
    pub requests_per_point: usize,
    /// Offered rates to sweep, req/s ascending.
    pub rates_rps: Vec<f64>,
    /// Collector threads draining completions (the open-loop analogue
    /// of closed-loop clients: they answer feedback and time
    /// completions, but never gate submission).
    pub collectors: usize,
    /// Engine configuration; `serve.workers` is the *total* worker
    /// budget split across shards.
    pub serve: ServeConfig,
    /// Oracle the collectors answer feedback queries with.
    pub oracle: HumanOracle,
    /// Schedule seed — arrivals are a pure function of it.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            users: 200,
            tenants: 4,
            zipf_s: 1.1,
            requests_per_point: 60,
            rates_rps: vec![400.0, 1200.0, 3600.0],
            collectors: 4,
            serve: ServeConfig {
                workers: 2,
                queue_capacity: 32,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
            oracle: HumanOracle::new(rts_core::human::Expertise::Expert, 9),
            seed: 0xC0FFEE,
        }
    }
}

/// Zipf(s) sampler over ranks `0..n` by inverse-CDF lookup. Rank 0 is
/// the most popular. Built once per schedule; sampling is a binary
/// search over the precomputed CDF, no floating-point accumulation at
/// sample time.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cdf: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let total: f64 = cdf.iter().sum();
        let mut acc = 0.0;
        for w in &mut cdf {
            acc += *w / total;
            *w = acc;
        }
        Self { cdf }
    }

    /// Map a uniform `u ∈ [0, 1)` onto a rank.
    pub fn sample(&self, u: f64) -> usize {
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// One scheduled request of the virtual-clock arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Offset from the start of the run at which this request is due.
    pub at: Duration,
    /// Simulated user it is attributed to.
    pub user: u32,
    /// Tenant the submit is tagged with (`user % tenants`).
    pub tenant: TenantId,
    /// Index into the driver's instance slice.
    pub instance: usize,
}

/// Group instance indices by database in first-appearance order (a
/// plain linear scan — deliberately no hash map, so group order is a
/// pure function of the instance slice and the schedule stays
/// deterministic).
pub fn group_by_database(instances: &[benchgen::Instance]) -> Vec<(String, Vec<usize>)> {
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, inst) in instances.iter().enumerate() {
        match groups.iter_mut().find(|(db, _)| *db == inst.db_name) {
            Some((_, members)) => members.push(i),
            None => groups.push((inst.db_name.clone(), vec![i])),
        }
    }
    groups
}

/// Generate the Poisson arrival schedule for one sweep point: a pure
/// function of `seed` (and the static shape arguments). Inter-arrival
/// gaps are exponential with mean `1/rate_rps`; the user and the
/// database are Zipf-skewed, the instance uniform within its database.
pub fn build_schedule(
    seed: u64,
    rate_rps: f64,
    n_requests: usize,
    users: u32,
    tenants: u32,
    zipf_s: f64,
    groups: &[(String, Vec<usize>)],
) -> Vec<Arrival> {
    assert!(rate_rps > 0.0, "open loop needs a positive arrival rate");
    assert!(!groups.is_empty(), "open loop needs a database population");
    let mut rng = tinynn::rng::SplitMix64::new(seed);
    let user_zipf = Zipf::new(users.max(1) as usize, zipf_s);
    let db_zipf = Zipf::new(groups.len(), zipf_s);
    let mut t = 0.0_f64;
    let mut schedule = Vec::with_capacity(n_requests);
    for _ in 0..n_requests {
        // Inverse-CDF exponential gap; next_f64 ∈ [0, 1) keeps the
        // log argument strictly positive.
        t += -(1.0 - rng.next_f64()).ln() / rate_rps;
        let user = user_zipf.sample(rng.next_f64()) as u32;
        let (_, members) = &groups[db_zipf.sample(rng.next_f64())];
        let instance = members[rng.next_below(members.len())];
        schedule.push(Arrival {
            at: Duration::from_secs_f64(t),
            user,
            tenant: user % tenants.max(1),
            instance,
        });
    }
    schedule
}

/// What one sweep produced: the measured record plus, per point, the
/// latency-free outcome key of every arrival (in schedule order) —
/// the byte-identity surface the parity checks compare across shard
/// counts.
#[derive(Debug)]
pub struct SweepResult {
    pub record: OpenLoopRecord,
    /// `outcomes[point][arrival_index]` — see [`outcome_key`].
    pub outcomes: Vec<Vec<String>>,
}

/// The latency-free fingerprint of one served request: everything a
/// deterministic run pins (joint outcome and degrade flags), nothing
/// wall-clock measurement moves. Two runs of the same schedule against
/// any shard/worker geometry must produce identical keys per arrival.
pub fn outcome_key(o: &rts_serve::ServeOutcome) -> String {
    format!(
        "{:?}|shed={},timed={},faulted={},drained={},rounds={}",
        o.outcome, o.shed, o.timed_out, o.faulted, o.drained, o.n_feedback
    )
}

/// A completion job handed from the submitter to the collectors: the
/// arrival index, the live ticket (generic over the engine surface —
/// sharded tickets in-process, request ids over the wire), and the
/// *scheduled* arrival instant latency is measured from.
struct Job<T> {
    idx: usize,
    ticket: T,
    sched: Instant,
}

/// Submitter → collector handoff: a bounded-by-workload queue plus a
/// close flag, under one lock with a condvar.
struct CollectQueue<T> {
    jobs: VecDeque<Job<T>>,
    closed: bool,
}

/// Run one sweep point: pace `arrivals` against a fresh
/// [`ShardedEngine`], drain every completion, and measure.
#[allow(clippy::too_many_arguments)]
fn run_point(
    model: &SchemaLinker,
    mbpp_tables: &Mbpp,
    mbpp_columns: &Mbpp,
    metas: &[benchgen::schemagen::DbMeta],
    instances: &[benchgen::Instance],
    config: &OpenLoopConfig,
    arrivals: &[Arrival],
    offered_rps: f64,
) -> (OpenLoopPoint, Vec<String>, rts_serve::ServingStats, u64) {
    let engine = ShardedEngine::new(
        model,
        mbpp_tables,
        mbpp_columns,
        metas,
        config.shards,
        config.serve.clone(),
    );
    let n = arrivals.len();
    let shared = (
        parking_lot::Mutex::new(CollectQueue::<rts_serve::ShardedTicket> {
            jobs: VecDeque::new(),
            closed: false,
        }),
        parking_lot::Condvar::new(),
    );
    let (results, wall) = crossbeam::thread::scope(|s| {
        let eng = &engine;
        for i in 0..eng.workers_total() {
            s.spawn(move |_| eng.worker_loop(i));
        }
        let collectors: Vec<_> = (0..config.collectors.max(1))
            .map(|_| {
                let shared = &shared;
                let oracle = &config.oracle;
                s.spawn(move |_| collector_loop(eng, instances, arrivals, oracle, shared))
            })
            .collect();

        // rts-allow(clock): the open-loop harness paces the seeded
        // virtual-clock schedule against real time by design — the
        // schedule itself is pure, only its execution is wall-clock.
        let start = Instant::now();
        for (idx, a) in arrivals.iter().enumerate() {
            let target = start + a.at;
            loop {
                // rts-allow(clock): real-time pacing toward the
                // scheduled arrival instant (measurement, not logic).
                let now = Instant::now();
                if now >= target {
                    break;
                }
                std::thread::sleep(target - now);
            }
            let inst = &instances[a.instance];
            let ticket = loop {
                match eng.submit(a.tenant, inst) {
                    Ok(t) => break t,
                    Err(SubmitError::QueueFull { .. } | SubmitError::QuotaExceeded { .. }) => {
                        // Open loop never drops: a bounced admission
                        // is retried until the owning shard has room;
                        // the bounce count and the schedule lag are
                        // the measurement.
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    Err(e) => {
                        panic!("schedule instances always have metadata: {e}")
                    }
                }
            };
            let mut q = shared.0.lock();
            q.jobs.push_back(Job {
                idx,
                ticket,
                sched: target,
            });
            shared.1.notify_one();
            drop(q);
        }
        {
            let mut q = shared.0.lock();
            q.closed = true;
            shared.1.notify_all();
        }
        let mut results: Vec<Option<(f64, String)>> = vec![None; n];
        for c in collectors {
            for (idx, latency_ms, key) in c.join().expect("open-loop collector panicked") {
                assert!(
                    results[idx].replace((latency_ms, key)).is_none(),
                    "arrival {idx} collected twice"
                );
            }
        }
        // Wall time of the point — the denominator of achieved
        // throughput.
        let wall = start.elapsed();
        eng.shutdown();
        (results, wall)
    })
    .expect("open-loop scope panicked");

    let stats = engine.stats();
    // Self-checks every harness run enforces, not just the CI legs:
    // zero drops and eager state release survive the open-loop path.
    assert_eq!(
        stats.completed, n as u64,
        "open loop must complete every scheduled arrival (degrade, never drop)"
    );
    for shard in 0..engine.n_shards() {
        let s = engine.shard_stats(shard).expect("constructed shard");
        assert_eq!(
            s.parked_sessions_now, 0,
            "shard {shard} strands parked sessions"
        );
        assert_eq!(
            s.parked_bytes_now, 0,
            "shard {shard} still bills parked bytes"
        );
        assert_eq!(
            s.checkpoint_bytes_now, 0,
            "shard {shard} holds checkpoint bytes"
        );
    }
    let mut latencies = Vec::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    for (idx, slot) in results.into_iter().enumerate() {
        let (latency_ms, key) = slot.unwrap_or_else(|| panic!("arrival {idx} never completed"));
        latencies.push(latency_ms);
        keys.push(key);
    }
    let summary = LatencySummary::from_samples(&latencies);
    let wall_s = wall.as_secs_f64().max(1e-9);
    let point = OpenLoopPoint {
        offered_rps,
        achieved_rps: n as f64 / wall_s,
        p50_ms: summary.p50_ms,
        p95_ms: summary.p95_ms,
        p99_ms: summary.p99_ms,
        mean_ms: summary.mean_ms,
        max_ms: summary.max_ms,
        completed: stats.completed,
        shed: stats.shed,
        timed_out: stats.timed_out_to_abstention,
        rejected_submits: stats.rejected + stats.rejected_quota,
        wall_ms: wall_s * 1e3,
    };
    let steals = engine.steals();
    (point, keys, stats, steals)
}

/// One collector: pop completion jobs, drive each ticket to `Done`
/// (answering every feedback suspension with the oracle), and time it
/// from its scheduled arrival. Generic over the serving surface — the
/// open-loop discipline does not care whether the ticket is local.
fn collector_loop<E: Engine>(
    engine: &E,
    instances: &[benchgen::Instance],
    arrivals: &[Arrival],
    oracle: &HumanOracle,
    shared: &(
        parking_lot::Mutex<CollectQueue<E::Ticket>>,
        parking_lot::Condvar,
    ),
) -> Vec<(usize, f64, String)> {
    let policy = MitigationPolicy::Human(oracle);
    let mut out = Vec::new();
    loop {
        let job = {
            let mut q = shared.0.lock();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.closed {
                    break None;
                }
                shared.1.wait(&mut q);
            }
        };
        let Some(job) = job else {
            return out;
        };
        let inst = &instances[arrivals[job.idx].instance];
        loop {
            match engine.wait_event(job.ticket) {
                ClientEvent::NeedsFeedback { query, .. } => {
                    let resolution = resolve_flag(&policy, inst, &query);
                    // A racing feedback timeout may have retired the
                    // flag already; the typed error is the protocol.
                    let _ = engine.resolve(job.ticket, &query, resolution);
                }
                ClientEvent::Done(outcome) => {
                    // rts-allow(clock): completion timestamp — latency
                    // is measured from the scheduled arrival so
                    // schedule lag shows up in the tail.
                    let done = Instant::now();
                    let latency_ms = done.saturating_duration_since(job.sched).as_secs_f64() * 1e3;
                    out.push((job.idx, latency_ms, outcome_key(&outcome)));
                    break;
                }
                ClientEvent::Retired => {
                    panic!("open-loop ticket {} retired before Done", job.ticket)
                }
            }
        }
    }
}

/// Sweep the configured arrival rates against fresh sharded engines
/// (one per point, so points never warm each other's caches) and
/// assemble the [`OpenLoopRecord`]. Steals and cache counters
/// accumulate across points; the knee is the highest offered rate
/// still achieving ≥ 90%, falling back to the first point when even
/// the lowest rate saturates.
pub fn run_sweep(
    model: &SchemaLinker,
    mbpp_tables: &Mbpp,
    mbpp_columns: &Mbpp,
    metas: &[benchgen::schemagen::DbMeta],
    instances: &[benchgen::Instance],
    config: &OpenLoopConfig,
) -> SweepResult {
    assert!(!config.rates_rps.is_empty(), "empty rate sweep");
    let groups = group_by_database(instances);
    let mut points = Vec::with_capacity(config.rates_rps.len());
    let mut outcomes = Vec::with_capacity(config.rates_rps.len());
    let mut steals = 0u64;
    let mut cache = rts_core::context::ContextCacheStats::default();
    for (k, &rate) in config.rates_rps.iter().enumerate() {
        // Each point gets its own schedule stream, derived from the
        // sweep seed and the point index so points are independent but
        // jointly reproducible.
        let point_seed = config.seed ^ (0xA11CE + k as u64);
        let schedule = build_schedule(
            point_seed,
            rate,
            config.requests_per_point,
            config.users,
            config.tenants,
            config.zipf_s,
            &groups,
        );
        let (point, keys, stats, point_steals) = run_point(
            model,
            mbpp_tables,
            mbpp_columns,
            metas,
            instances,
            config,
            &schedule,
            rate,
        );
        steals += point_steals;
        cache.absorb(stats.cache);
        points.push(point);
        outcomes.push(keys);
    }
    let peak_throughput_rps = points.iter().map(|p| p.achieved_rps).fold(0.0, f64::max);
    let (knee_offered_rps, knee_p99_ms) = points
        .iter()
        .rfind(|p| p.achieved_rps >= 0.9 * p.offered_rps)
        .or(points.first())
        .map(|p| (p.offered_rps, p.p99_ms))
        .expect("at least one sweep point");
    let workers_per_shard = config.serve.workers.div_ceil(config.shards.max(1)).max(1);
    SweepResult {
        record: OpenLoopRecord {
            shards: config.shards.max(1),
            workers_per_shard,
            users: config.users as usize,
            tenants: config.tenants as usize,
            zipf_s: config.zipf_s,
            requests_per_point: config.requests_per_point,
            seed: config.seed,
            queue_capacity: config.serve.queue_capacity,
            cache_capacity: config.serve.cache_capacity,
            points,
            peak_throughput_rps,
            knee_offered_rps,
            knee_p99_ms,
            steals,
            cache_hit_rate: cache.hit_rate(),
        },
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_groups() -> Vec<(String, Vec<usize>)> {
        vec![
            ("db_a".into(), vec![0, 1, 2]),
            ("db_b".into(), vec![3, 4]),
            ("db_c".into(), vec![5]),
        ]
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let groups = demo_groups();
        let a = build_schedule(42, 800.0, 200, 50, 4, 1.1, &groups);
        let b = build_schedule(42, 800.0, 200, 50, 4, 1.1, &groups);
        assert_eq!(a, b, "same seed must reproduce the schedule exactly");
        let c = build_schedule(43, 800.0, 200, 50, 4, 1.1, &groups);
        assert_ne!(a, c, "a different seed must move the schedule");

        let mut prev = Duration::ZERO;
        for arr in &a {
            assert!(arr.at >= prev, "arrival times must be non-decreasing");
            prev = arr.at;
            assert!(arr.user < 50);
            assert!(arr.tenant < 4);
            assert!(arr.instance < 6, "instance index out of population");
        }
        // Mean inter-arrival of a Poisson(800/s) stream over 200
        // arrivals is 1/800 s; the sample mean should be within a
        // loose 3x band (seeded, so this is a fixed number, not flaky).
        let span = a.last().unwrap().at.as_secs_f64();
        let mean_gap = span / 200.0;
        assert!(
            (1.0 / 2400.0..1.0 / 270.0).contains(&mean_gap),
            "mean gap {mean_gap} implausible for 800 req/s"
        );
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(10, 1.1);
        let mut rng = tinynn::rng::SplitMix64::new(7);
        let mut counts = [0usize; 10];
        for _ in 0..4000 {
            counts[z.sample(rng.next_f64())] += 1;
        }
        assert!(
            counts[0] > counts[9] * 3,
            "rank 0 ({}) must dominate rank 9 ({}) under zipf 1.1",
            counts[0],
            counts[9]
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "every rank must be reachable"
        );

        let uniform = Zipf::new(4, 0.0);
        assert_eq!(uniform.sample(0.0), 0);
        assert_eq!(uniform.sample(0.26), 1);
        assert_eq!(uniform.sample(0.99), 3);
        // Degenerate populations and u at the boundary stay in range.
        assert_eq!(Zipf::new(1, 1.5).sample(0.999), 0);
        assert_eq!(Zipf::new(0, 1.5).sample(0.5), 0);
    }

    #[test]
    fn grouping_preserves_first_appearance_order() {
        let bench = benchgen::BenchmarkProfile::bird_like()
            .scaled(0.03)
            .generate(5);
        let groups = group_by_database(&bench.split.dev);
        assert!(!groups.is_empty());
        let total: usize = groups.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, bench.split.dev.len(), "grouping must partition");
        // First group is the first instance's database, and every
        // member index actually belongs to its group's database.
        assert_eq!(groups[0].0, bench.split.dev[0].db_name);
        for (db, members) in &groups {
            for &i in members {
                assert_eq!(&bench.split.dev[i].db_name, db);
            }
        }
    }
}

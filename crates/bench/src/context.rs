//! Shared experiment context: benchmarks, linkers, trained BPPs and
//! surrogates, built once and reused by every experiment in-process.

use benchgen::{Benchmark, BenchmarkProfile};
use rts_core::bpp::{Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_core::context::LinkContexts;
use rts_core::surrogate::SurrogateModel;
use simlm::{CorpusVersion, LinkTarget, SchemaLinker};

/// Which benchmarks an experiment needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    Bird,
    Spider,
    Both,
}

/// Everything trained for one benchmark.
pub struct BenchArtifacts {
    pub bench: Benchmark,
    pub linker: SchemaLinker,
    pub mbpp_tables: Mbpp,
    pub mbpp_columns: Mbpp,
    pub surrogate: SurrogateModel,
    /// Teacher-forced datasets kept for AUC evaluation on other splits.
    pub branch_tables: BranchDataset,
    pub branch_columns: BranchDataset,
    /// Precompiled per-database linking contexts (vocab + trie), shared
    /// read-only by every experiment's monitored-linking runs.
    pub contexts: LinkContexts,
}

impl BenchArtifacts {
    fn build(profile: BenchmarkProfile, scale: f64, seed: u64, corpus: CorpusVersion) -> Self {
        let profile = if scale < 1.0 {
            profile.scaled(scale)
        } else {
            profile
        };
        let name = profile.name.clone();
        let bench = profile.generate(seed);
        let linker = SchemaLinker::new(&name, seed ^ 0x11CC).with_corpus(corpus);
        // The paper trains BPPs on ~10% of the training split; our
        // synthetic token streams are shorter than a real linker's, so
        // we trace a larger instance share to reach a comparable number
        // of branching-point examples.
        let cap = (bench.split.train.len() / 6).clamp(400, 1100);
        let branch_tables =
            BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, cap);
        let branch_columns =
            BranchDataset::build(&linker, &bench.split.train, LinkTarget::Columns, cap);
        let cfg = MbppConfig {
            alpha: 0.1,
            k: 5,
            method: rts_core::bpp::MergeMethod::RandomPermutation,
            probe: ProbeConfig {
                seed: seed ^ 0xB0,
                ..ProbeConfig::default()
            },
        };
        let mbpp_tables = Mbpp::train(&branch_tables, &cfg);
        let mbpp_columns = Mbpp::train(&branch_columns, &cfg);
        let surrogate = SurrogateModel::train(&bench, seed ^ 0x5A11);
        let contexts = LinkContexts::build(&bench);
        Self {
            bench,
            linker,
            mbpp_tables,
            mbpp_columns,
            surrogate,
            branch_tables,
            branch_columns,
            contexts,
        }
    }
}

/// The experiment context.
pub struct Context {
    pub scale: f64,
    pub seed: u64,
    /// Synthesis corpus every linker in the context generates.
    pub corpus: CorpusVersion,
    pub bird: Option<BenchArtifacts>,
    pub spider: Option<BenchArtifacts>,
}

impl Context {
    /// Build the context for the requested benchmarks under the
    /// corpus the environment selects (`RTS_CORPUS`, default v2).
    pub fn load(which: Which, scale: f64, seed: u64) -> Self {
        Self::load_with_corpus(which, scale, seed, crate::env_corpus())
    }

    /// [`Context::load`] with the corpus pinned by the caller — the
    /// entry point the v1 parity test uses to regenerate the archived
    /// records regardless of environment.
    pub fn load_with_corpus(which: Which, scale: f64, seed: u64, corpus: CorpusVersion) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale in (0,1]");
        let t0 = std::time::Instant::now();
        let bird = matches!(which, Which::Bird | Which::Both)
            .then(|| BenchArtifacts::build(BenchmarkProfile::bird_like(), scale, seed, corpus));
        let spider = matches!(which, Which::Spider | Which::Both)
            .then(|| BenchArtifacts::build(BenchmarkProfile::spider_like(), scale, seed, corpus));
        eprintln!(
            "[context] built (scale {scale}, seed {seed:#x}, corpus {}) in {:.1}s",
            corpus.tag(),
            t0.elapsed().as_secs_f64()
        );
        Self {
            scale,
            seed,
            corpus,
            bird,
            spider,
        }
    }

    pub fn bird(&self) -> &BenchArtifacts {
        self.bird.as_ref().expect("bird artifacts not loaded")
    }

    pub fn spider(&self) -> &BenchArtifacts {
        self.spider.as_ref().expect("spider artifacts not loaded")
    }
}

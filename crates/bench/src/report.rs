//! Experiment reports: paper-vs-measured rows, console rendering, and
//! JSON persistence for EXPERIMENTS.md regeneration.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One comparable quantity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    pub label: String,
    /// The paper's number (None = the paper gives no figure for this
    /// row, e.g. our extra diagnostics).
    pub paper: Option<f64>,
    /// Our measured number (None = not measurable in this setup, e.g.
    /// leaderboard entries we only cite).
    pub measured: Option<f64>,
    /// Display unit ("%", "AUC", "count", …).
    pub unit: String,
}

impl Row {
    pub fn new(
        label: impl Into<String>,
        paper: Option<f64>,
        measured: Option<f64>,
        unit: &str,
    ) -> Self {
        Self {
            label: label.into(),
            paper,
            measured,
            unit: unit.into(),
        }
    }
}

/// A full experiment report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Stable id ("table1", "figure6", …).
    pub id: String,
    pub title: String,
    pub rows: Vec<Row>,
    /// Free-form commentary (shape checks, substitutions, caveats).
    pub notes: Vec<String>,
    /// Scale the harness ran at (1.0 = paper-sized workload).
    pub scale: f64,
    pub seed: u64,
}

impl Report {
    pub fn new(id: &str, title: &str, scale: f64, seed: u64) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
            notes: Vec::new(),
            scale,
            seed,
        }
    }

    pub fn push(
        &mut self,
        label: impl Into<String>,
        paper: Option<f64>,
        measured: Option<f64>,
        unit: &str,
    ) {
        self.rows.push(Row::new(label, paper, measured, unit));
    }

    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    fn fmt_opt(v: Option<f64>) -> String {
        match v {
            Some(x) => format!("{x:>8.2}"),
            None => format!("{:>8}", "—"),
        }
    }

    /// Render for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} — {} (scale {}, seed {:#x})",
            self.id, self.title, self.scale, self.seed
        );
        let width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(10)
            .max(10);
        let _ = writeln!(
            out,
            "{:<width$}  {:>8}  {:>8}  unit",
            "row", "paper", "measured"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<width$}  {}  {}  {}",
                r.label,
                Self::fmt_opt(r.paper),
                Self::fmt_opt(r.measured),
                r.unit
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Render as a Markdown section (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| row | paper | measured | unit |");
        let _ = writeln!(out, "|---|---:|---:|---|");
        for r in &self.rows {
            let p = r.paper.map_or("—".to_string(), |x| format!("{x:.2}"));
            let m = r.measured.map_or("—".to_string(), |x| format!("{x:.2}"));
            let _ = writeln!(out, "| {} | {} | {} | {} |", r.label, p, m, r.unit);
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for n in &self.notes {
                let _ = writeln!(out, "- {n}");
            }
        }
        let _ = writeln!(out);
        out
    }

    /// Persist to `results/<id>.json`.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self).expect("report serialises");
        std::fs::write(path, json)
    }

    /// Largest |paper − measured| over rows where both sides exist.
    pub fn max_abs_gap(&self) -> f64 {
        self.rows
            .iter()
            .filter_map(|r| match (r.paper, r.measured) {
                (Some(p), Some(m)) => Some((p - m).abs()),
                _ => None,
            })
            .fold(0.0, f64::max)
    }
}

/// Wall-time of one pipeline stage, measured by the `perf` binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage tag: "trace_gen", "linking", "monitoring", "sqlgen",
    /// "execution", plus diagnostic variants (e.g.
    /// "trace_gen_eager_baseline", "monitoring_per_token_baseline").
    pub stage: String,
    pub wall_ms: f64,
    pub per_instance_us: f64,
    pub n_instances: usize,
}

/// Multi-tenant serving counters: the knobs and outcomes of the
/// fairness/quota/timeout/checkpoint machinery. Grouped in an
/// `Option` sub-record so serving sections written before tenancy
/// existed (PR 4 snapshots) still parse — the serde shim reads an
/// absent `Option` field as `None`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenancyRecord {
    /// Distinct tenants the workload submitted as.
    pub tenants: usize,
    /// Per-tenant quota the engine enforced (0 = unbounded).
    pub quota_max_in_flight: usize,
    pub quota_max_parked: usize,
    /// Park-to-abstention feedback timeout (None = park forever).
    pub feedback_timeout_ms: Option<f64>,
    /// Live parked-bytes budget before checkpoint eviction (0 = off).
    pub parked_bytes_budget: u64,
    /// Submissions bounced by a per-tenant quota (clients retried).
    pub rejected_quota: u64,
    /// Parked sessions resumed with abstention by the timeout.
    pub timed_out_to_abstention: u64,
    /// Parked sessions evicted to serialized checkpoints / restored.
    pub checkpoints: u64,
    pub restores: u64,
    pub checkpoint_bytes_peak: u64,
    /// Highest concurrent in-flight count any single tenant reached —
    /// the fairness self-check compares this against the quota.
    pub tenant_in_flight_peak: usize,
}

/// Fault-injection configuration and recovery counters of a chaos
/// serving run. Grouped in an `Option` sub-record: absent means the
/// run was fault-free (every snapshot before this record existed, and
/// every run with the plan disabled — the two are equivalent, which is
/// exactly what the perf gate's shape check assumes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRecord {
    /// The deterministic fault-schedule seed.
    pub seed: u64,
    /// Trip probability of the step-panic site (the headline chaos
    /// knob; the driver arms every site at this rate).
    pub step_panic_rate: f64,
    /// Step panics caught by `catch_unwind` — pool intact, ticket
    /// salvaged into a retry or an abstention.
    pub panics_recovered: u64,
    /// Tickets that kept panicking past the retry budget and degraded
    /// to a `faulted` abstention (never a drop).
    pub panics_to_abstention: u64,
    /// Corrupt checkpoints rebuilt from their in-memory salvage recipe.
    pub corrupt_checkpoints_recovered: u64,
    /// Failed context builds that fell back to the context-free path.
    pub context_build_fallbacks: u64,
    /// Client resolutions injected as lost / delayed in flight.
    pub feedback_lost: u64,
    pub feedback_delayed: u64,
    /// Parked sessions resolved to abstention by the shutdown drain.
    pub drained_to_abstention: u64,
}

/// One closed-loop serving measurement of the `rts-serve` engine: the
/// optional `serving` section of `BENCH_rts.json`. Optional because
/// older snapshots predate it — the perf gate must keep parsing them
/// (the serde shim reads an absent `Option` field as `None`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingRecord {
    /// Engine workers / closed-loop clients the workload ran with.
    pub workers: usize,
    pub clients: usize,
    /// Admission-queue bound, per-target context-cache capacity, and
    /// the per-request deadline (None = shedding disabled).
    pub queue_capacity: usize,
    pub cache_capacity: usize,
    pub deadline_ms: Option<f64>,
    /// Joint-linking requests submitted (each = tables + columns
    /// linking, human feedback on every flag).
    pub n_requests: usize,
    pub completed: u64,
    /// Requests answered by degrading to abstention on deadline.
    pub shed: u64,
    /// Submissions bounced at admission (clients retried them).
    pub rejected_submits: u64,
    pub feedback_rounds: u64,
    /// Submit-to-completion latency distribution, ms.
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    pub max_ms: f64,
    pub throughput_rps: f64,
    /// Work-queue depth observed at submits.
    pub queue_depth_max: usize,
    pub queue_depth_mean: f64,
    /// Lazy per-(database, target) context cache counters.
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_hit_rate: f64,
    /// Peak generation state held by sessions parked on feedback.
    pub parked_bytes_peak: u64,
    pub parked_sessions_peak: u64,
    pub wall_ms: f64,
    /// Multi-tenant counters (absent on pre-tenancy snapshots).
    pub tenancy: Option<TenancyRecord>,
    /// Fault-injection knobs and recovery counters (absent ≡ the run
    /// was fault-free).
    pub fault: Option<FaultRecord>,
}

impl ServingRecord {
    /// Console rendering (shared by the perf and driver binaries).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "-- serving: {} requests, {} workers, {} clients (queue {}, cache {}, deadline {})",
            self.n_requests,
            self.workers,
            self.clients,
            self.queue_capacity,
            self.cache_capacity,
            self.deadline_ms
                .map_or("off".to_string(), |d| format!("{d:.0} ms")),
        );
        let _ = writeln!(
            out,
            "   latency ms: p50 {:.3}  p95 {:.3}  p99 {:.3}  mean {:.3}  max {:.3}  ({:.0} req/s)",
            self.p50_ms, self.p95_ms, self.p99_ms, self.mean_ms, self.max_ms, self.throughput_rps
        );
        let _ = writeln!(
            out,
            "   completed {} (shed {}, rejected submits {}), feedback rounds {}",
            self.completed, self.shed, self.rejected_submits, self.feedback_rounds
        );
        let _ = writeln!(
            out,
            "   queue depth max {} mean {:.2}; context cache {}/{} hit ({:.0}%), {} evictions; parked peak {} sessions / {} B",
            self.queue_depth_max,
            self.queue_depth_mean,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.cache_hit_rate * 100.0,
            self.cache_evictions,
            self.parked_sessions_peak,
            self.parked_bytes_peak,
        );
        if let Some(t) = &self.tenancy {
            let _ = writeln!(
                out,
                "   tenancy: {} tenants (quota {}/{} in-flight/parked, peak in-flight {}), \
                 {} quota bounces, feedback timeout {} → {} timed out to abstention",
                t.tenants,
                t.quota_max_in_flight,
                t.quota_max_parked,
                t.tenant_in_flight_peak,
                t.rejected_quota,
                t.feedback_timeout_ms
                    .map_or("off".to_string(), |ms| format!("{ms:.0} ms")),
                t.timed_out_to_abstention,
            );
            let _ = writeln!(
                out,
                "   checkpointing: budget {} B → {} evicted / {} restored, checkpoint peak {} B",
                t.parked_bytes_budget, t.checkpoints, t.restores, t.checkpoint_bytes_peak,
            );
        }
        if let Some(f) = &self.fault {
            let _ = writeln!(
                out,
                "   faults (seed {}, rate {:.2}): {} step panics recovered ({} to abstention), \
                 {} corrupt checkpoints salvaged, {} context fallbacks, \
                 feedback {} lost / {} delayed, {} drained at shutdown",
                f.seed,
                f.step_panic_rate,
                f.panics_recovered,
                f.panics_to_abstention,
                f.corrupt_checkpoints_recovered,
                f.context_build_fallbacks,
                f.feedback_lost,
                f.feedback_delayed,
                f.drained_to_abstention,
            );
        }
        out
    }
}

/// One sweep point of the open-loop driver: requests offered at a
/// fixed Poisson arrival rate, latency measured from the *scheduled*
/// arrival (so schedule lag past saturation shows up in the tail, the
/// defining property of an open-loop measurement).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenLoopPoint {
    /// Poisson arrival rate the schedule was generated at, req/s.
    pub offered_rps: f64,
    /// Completions over the point's wall time, req/s.
    pub achieved_rps: f64,
    /// Scheduled-arrival-to-completion latency distribution, ms.
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    pub max_ms: f64,
    pub completed: u64,
    /// Requests answered by degrading to abstention on deadline.
    pub shed: u64,
    /// Parked sessions resumed with abstention by a feedback timeout.
    pub timed_out: u64,
    /// Admission bounces (QueueFull/quota) the submitter retried —
    /// open loop never drops, it lags the schedule instead.
    pub rejected_submits: u64,
    pub wall_ms: f64,
}

/// The open-loop load harness measurement: the optional `open_loop`
/// section of `BENCH_rts.json`. A deterministic seeded schedule
/// (Poisson arrivals on a virtual clock, Zipf tenant/database skew
/// over simulated users) swept across arrival rates against the
/// sharded engine; the perf gate holds the peak throughput and the
/// knee latency. Optional for the same reason as [`TenancyRecord`]:
/// snapshots from before the harness existed must keep parsing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenLoopRecord {
    /// Sharded-engine geometry the sweep ran against.
    pub shards: usize,
    pub workers_per_shard: usize,
    /// Simulated-user population and tenant count behind the Zipf skew.
    pub users: usize,
    pub tenants: usize,
    /// Zipf exponent of the user/database popularity skew.
    pub zipf_s: f64,
    /// Arrivals per sweep point.
    pub requests_per_point: usize,
    /// Schedule seed (arrivals are a pure function of it).
    pub seed: u64,
    /// Per-shard admission-queue and context-cache bounds.
    pub queue_capacity: usize,
    pub cache_capacity: usize,
    /// The throughput-vs-latency curve, one point per offered rate
    /// (ascending).
    pub points: Vec<OpenLoopPoint>,
    /// Highest achieved throughput across the sweep, req/s.
    pub peak_throughput_rps: f64,
    /// The saturation knee: the highest offered rate the engine still
    /// sustained (achieved ≥ 90% of offered), and its p99. Past the
    /// knee, schedule lag grows without bound.
    pub knee_offered_rps: f64,
    pub knee_p99_ms: f64,
    /// Admissions executed by a worker away from its home shard.
    pub steals: u64,
    /// Aggregate context-cache hit rate across shards over the sweep.
    pub cache_hit_rate: f64,
}

impl OpenLoopRecord {
    /// Console rendering (shared by the perf and driver binaries).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "-- open loop: {} shards x {} workers, {} users / {} tenants (zipf {}), {} req/point, seed {:#x}",
            self.shards,
            self.workers_per_shard,
            self.users,
            self.tenants,
            self.zipf_s,
            self.requests_per_point,
            self.seed,
        );
        let _ = writeln!(
            out,
            "   {:>12} {:>12} {:>10} {:>10} {:>10} {:>8} {:>8}",
            "offered r/s", "achieved", "p50 ms", "p99 ms", "max ms", "shed", "bounced"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "   {:>12.0} {:>12.0} {:>10.3} {:>10.3} {:>10.3} {:>8} {:>8}",
                p.offered_rps,
                p.achieved_rps,
                p.p50_ms,
                p.p99_ms,
                p.max_ms,
                p.shed,
                p.rejected_submits,
            );
        }
        let _ = writeln!(
            out,
            "   peak {:.0} req/s; knee at {:.0} offered (p99 {:.3} ms); {} steals, cache hit {:.0}%",
            self.peak_throughput_rps,
            self.knee_offered_rps,
            self.knee_p99_ms,
            self.steals,
            self.cache_hit_rate * 100.0,
        );
        out
    }
}

/// The cross-PR performance record, persisted as `BENCH_rts.json` so
/// future changes have a trajectory to compare against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    pub scale: f64,
    pub seed: u64,
    /// The *configured* worker count (`RTS_THREADS` or detected cores).
    pub threads: usize,
    /// What `std::thread::available_parallelism` actually reported on
    /// the measuring machine. The configured count can silently exceed
    /// this (e.g. `"threads": 8` recorded on a 1-core CI container), so
    /// the record keeps both to make timings comparable across hosts.
    pub effective_parallelism: usize,
    /// Synthesis corpus tag (`"v1"`/`"v2"`, see `simlm::CorpusVersion`)
    /// the record was measured under. `None` on snapshots predating
    /// corpus versioning, which were all v1 — read it through
    /// [`PerfReport::corpus_tag`]. Stage times are incomparable across
    /// corpora (v2 exists precisely to make `trace_gen` faster), so
    /// the perf gate refuses cross-corpus comparisons.
    pub corpus: Option<String>,
    pub stages: Vec<StageTiming>,
    pub notes: Vec<String>,
    /// Online-serving measurement (absent on records from before the
    /// `rts-serve` engine existed; never gated — latencies are
    /// wall-clock under concurrency, not per-instance stage times).
    pub serving: Option<ServingRecord>,
    /// Open-loop throughput-vs-latency sweep against the sharded
    /// engine (absent on records from before the load harness
    /// existed; gated on peak throughput and knee latency).
    pub open_loop: Option<OpenLoopRecord>,
}

impl PerfReport {
    pub fn new(scale: f64, seed: u64, threads: usize, effective_parallelism: usize) -> Self {
        Self {
            scale,
            seed,
            threads,
            effective_parallelism,
            corpus: None,
            stages: Vec::new(),
            notes: Vec::new(),
            serving: None,
            open_loop: None,
        }
    }

    /// The synthesis corpus tag this record was measured under.
    /// Snapshots from before corpus versioning carry no field; every
    /// one of them was generated under the original streams, so the
    /// absent value reads as `"v1"`.
    pub fn corpus_tag(&self) -> &str {
        self.corpus.as_deref().unwrap_or("v1")
    }

    /// Record a stage measured over `n_instances` instances.
    pub fn push_stage(
        &mut self,
        stage: impl Into<String>,
        wall: std::time::Duration,
        n_instances: usize,
    ) {
        let wall_ms = wall.as_secs_f64() * 1e3;
        self.stages.push(StageTiming {
            stage: stage.into(),
            wall_ms,
            per_instance_us: wall_ms * 1e3 / n_instances.max(1) as f64,
            n_instances,
        });
    }

    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Wall-time of a stage by tag, if recorded.
    pub fn stage_ms(&self, stage: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.wall_ms)
    }

    /// Write `BENCH_rts.json` into `dir`.
    pub fn save_bench_json(&self, dir: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("perf report serialises");
        std::fs::write(dir.join("BENCH_rts.json"), json)
    }

    /// Console rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== BENCH_rts (scale {}, seed {:#x}, {} threads configured, {} effective, corpus {})",
            self.scale,
            self.seed,
            self.threads,
            self.effective_parallelism,
            self.corpus_tag()
        );
        let _ = writeln!(
            out,
            "{:<36} {:>12} {:>16}  n",
            "stage", "wall ms", "µs/instance"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<36} {:>12.2} {:>16.1}  {}",
                s.stage, s.wall_ms, s.per_instance_us, s.n_instances
            );
        }
        if let Some(serving) = &self.serving {
            out.push_str(&serving.render());
        }
        if let Some(open_loop) = &self.open_loop {
            out.push_str(&open_loop.render());
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

/// One stage's baseline-vs-fresh comparison (see [`compare_perf`]).
#[derive(Debug, Clone)]
pub struct StageComparison {
    pub stage: String,
    pub baseline_us: f64,
    pub fresh_us: f64,
    /// `fresh / baseline` per-instance time (> 1 = slower than the
    /// committed record).
    pub ratio: f64,
    /// Did this stage blow the gate's tolerance?
    pub regressed: bool,
}

/// Compare a freshly measured [`PerfReport`] against the committed
/// baseline, stage by stage: a stage regresses when its
/// `per_instance_us` exceeds `tolerance ×` the baseline's. Stages
/// present in only one record are skipped (renames and new stages must
/// not fail the gate — the fresh snapshot replaces the baseline when
/// the PR lands). This is the CI `perf-gate` job's comparison; the
/// tolerance is deliberately generous so shared runners don't flake.
pub fn compare_perf(
    baseline: &PerfReport,
    fresh: &PerfReport,
    tolerance: f64,
) -> Vec<StageComparison> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    baseline
        .stages
        .iter()
        .filter_map(|b| {
            let f = fresh.stages.iter().find(|f| f.stage == b.stage)?;
            // Sub-microsecond stages are noise-dominated; never gate them.
            if b.per_instance_us <= 1.0 {
                return None;
            }
            let ratio = f.per_instance_us / b.per_instance_us;
            Some(StageComparison {
                stage: b.stage.clone(),
                baseline_us: b.per_instance_us,
                fresh_us: f.per_instance_us,
                ratio,
                regressed: ratio > tolerance,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Report {
        let mut r = Report::new("table_x", "Demo", 1.0, 7);
        r.push("EM bird", Some(79.70), Some(81.2), "%");
        r.push("leaderboard", Some(73.01), None, "%");
        r.note("substituted workload");
        r
    }

    #[test]
    fn render_contains_rows_and_notes() {
        let text = demo().render();
        assert!(text.contains("EM bird"));
        assert!(text.contains("79.70"));
        assert!(text.contains("81.20"));
        assert!(text.contains("substituted workload"));
        assert!(text.contains("—"), "missing values render as dashes");
    }

    #[test]
    fn markdown_is_table_shaped() {
        let md = demo().render_markdown();
        assert!(md.contains("| row | paper | measured | unit |"));
        assert!(md.contains("| EM bird | 79.70 | 81.20 | % |"));
    }

    #[test]
    fn max_gap_ignores_one_sided_rows() {
        let r = demo();
        assert!((r.max_abs_gap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrip() {
        let r = demo();
        let json = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows.len(), r.rows.len());
        assert_eq!(back.id, r.id);
    }

    fn perf_with(stages: &[(&str, f64)]) -> PerfReport {
        let mut p = PerfReport::new(0.02, 7, 1, 1);
        for &(stage, us) in stages {
            p.stages.push(StageTiming {
                stage: stage.into(),
                wall_ms: us * 46.0 / 1e3,
                per_instance_us: us,
                n_instances: 46,
            });
        }
        p
    }

    #[test]
    fn compare_perf_flags_only_regressions_beyond_tolerance() {
        let base = perf_with(&[
            ("trace_gen", 300.0),
            ("linking", 50.0),
            ("monitoring", 40.0),
        ]);
        let fresh = perf_with(&[
            ("trace_gen", 450.0), // 1.5x: within a 2x gate
            ("linking", 140.0),   // 2.8x: regression
            ("monitoring", 20.0), // faster: fine
        ]);
        let cmp = compare_perf(&base, &fresh, 2.0);
        assert_eq!(cmp.len(), 3);
        let by_stage = |s: &str| cmp.iter().find(|c| c.stage == s).unwrap();
        assert!(!by_stage("trace_gen").regressed);
        assert!(by_stage("linking").regressed);
        assert!((by_stage("linking").ratio - 2.8).abs() < 1e-9);
        assert!(!by_stage("monitoring").regressed);
    }

    #[test]
    fn compare_perf_skips_unmatched_and_noise_stages() {
        let base = perf_with(&[("linking", 50.0), ("renamed_away", 10.0), ("tiny", 0.5)]);
        let fresh = perf_with(&[("linking", 49.0), ("brand_new", 10.0), ("tiny", 400.0)]);
        let cmp = compare_perf(&base, &fresh, 2.0);
        // Only "linking" is comparable: renames/new stages are skipped,
        // and sub-microsecond stages are noise.
        assert_eq!(cmp.len(), 1);
        assert_eq!(cmp[0].stage, "linking");
        assert!(!cmp[0].regressed);
    }

    fn demo_serving() -> ServingRecord {
        ServingRecord {
            workers: 2,
            clients: 4,
            queue_capacity: 64,
            cache_capacity: 8,
            deadline_ms: None,
            n_requests: 92,
            completed: 92,
            shed: 0,
            rejected_submits: 3,
            feedback_rounds: 41,
            p50_ms: 1.2,
            p95_ms: 3.4,
            p99_ms: 5.6,
            mean_ms: 1.5,
            max_ms: 7.0,
            throughput_rps: 800.0,
            queue_depth_max: 5,
            queue_depth_mean: 1.25,
            cache_hits: 180,
            cache_misses: 4,
            cache_evictions: 0,
            cache_hit_rate: 180.0 / 184.0,
            parked_bytes_peak: 65536,
            parked_sessions_peak: 6,
            wall_ms: 115.0,
            tenancy: Some(TenancyRecord {
                tenants: 3,
                quota_max_in_flight: 2,
                quota_max_parked: 0,
                feedback_timeout_ms: Some(40.0),
                parked_bytes_budget: 32768,
                rejected_quota: 5,
                timed_out_to_abstention: 2,
                checkpoints: 4,
                restores: 4,
                checkpoint_bytes_peak: 900,
                tenant_in_flight_peak: 2,
            }),
            fault: Some(FaultRecord {
                seed: 11,
                step_panic_rate: 0.05,
                panics_recovered: 7,
                panics_to_abstention: 1,
                corrupt_checkpoints_recovered: 2,
                context_build_fallbacks: 3,
                feedback_lost: 1,
                feedback_delayed: 4,
                drained_to_abstention: 0,
            }),
        }
    }

    #[test]
    fn serving_section_roundtrips() {
        let mut p = PerfReport::new(0.03, 7, 1, 1);
        p.serving = Some(demo_serving());
        let json = serde_json::to_string_pretty(&p).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        let s = back.serving.expect("serving section survives");
        assert_eq!(s.n_requests, 92);
        assert_eq!(s.deadline_ms, None);
        assert!((s.p99_ms - 5.6).abs() < 1e-12);
        let t = s.tenancy.expect("tenancy sub-record survives");
        assert_eq!(t.tenants, 3);
        assert_eq!(t.feedback_timeout_ms, Some(40.0));
        assert_eq!(t.timed_out_to_abstention, 2);
        assert_eq!(t.checkpoints, 4);
        let f = s.fault.expect("fault sub-record survives");
        assert_eq!(f.seed, 11);
        assert_eq!(f.panics_recovered, 7);
        let text = p.render();
        assert!(text.contains("serving: 92 requests"));
        assert!(text.contains("p99 5.600"));
        assert!(text.contains("tenancy: 3 tenants"));
        assert!(text.contains("2 timed out to abstention"));
        assert!(text.contains("faults (seed 11, rate 0.05)"));
        assert!(text.contains("7 step panics recovered (1 to abstention)"));
    }

    #[test]
    fn pre_tenancy_serving_sections_still_parse() {
        // A PR 4-era serving section has no "tenancy" key at all; the
        // gate must keep loading such baselines (tenancy reads as None).
        let json = r#"{
          "workers": 1, "clients": 4, "queue_capacity": 16,
          "cache_capacity": 8, "deadline_ms": null,
          "n_requests": 92, "completed": 92, "shed": 0,
          "rejected_submits": 0, "feedback_rounds": 84,
          "p50_ms": 1.9, "p95_ms": 3.3, "p99_ms": 4.4,
          "mean_ms": 2.0, "max_ms": 4.4, "throughput_rps": 1933.0,
          "queue_depth_max": 4, "queue_depth_mean": 3.9,
          "cache_hits": 182, "cache_misses": 2, "cache_evictions": 0,
          "cache_hit_rate": 0.989, "parked_bytes_peak": 23184,
          "parked_sessions_peak": 1, "wall_ms": 47.6
        }"#;
        let s: ServingRecord = serde_json::from_str(json).expect("old section parses");
        assert!(s.tenancy.is_none());
        assert!(s.fault.is_none(), "pre-chaos sections read as fault-free");
        assert_eq!(s.n_requests, 92);
        let text = s.render();
        assert!(!text.contains("tenancy:"), "no tenancy line to render");
        assert!(!text.contains("faults ("), "no fault line to render");
    }

    #[test]
    fn records_without_serving_section_still_parse() {
        // A BENCH_rts.json predating the serve engine has no "serving"
        // key at all; the perf gate must keep loading such snapshots.
        let json = r#"{
          "scale": 0.03,
          "seed": 7,
          "threads": 1,
          "effective_parallelism": 1,
          "stages": [
            { "stage": "linking", "wall_ms": 2.0,
              "per_instance_us": 43.5, "n_instances": 46 }
          ],
          "notes": ["pre-serving snapshot"]
        }"#;
        let back: PerfReport = serde_json::from_str(json).expect("old snapshot parses");
        assert!(back.serving.is_none());
        assert_eq!(back.stages.len(), 1);
        assert_eq!(back.stages[0].stage, "linking");
        // No "corpus" key either — such snapshots were all measured
        // under the original streams, so the tag reads v1.
        assert!(back.corpus.is_none());
        assert_eq!(back.corpus_tag(), "v1");
    }

    #[test]
    fn corpus_tag_roundtrips_and_renders() {
        let mut p = PerfReport::new(0.03, 7, 1, 1);
        assert_eq!(p.corpus_tag(), "v1", "unstamped record reads as v1");
        p.corpus = Some("v2".into());
        p.push_stage("linking", std::time::Duration::from_millis(2), 46);
        let json = serde_json::to_string(&p).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.corpus_tag(), "v2");
        assert!(back.render().contains("corpus v2"));
    }

    fn demo_open_loop() -> OpenLoopRecord {
        OpenLoopRecord {
            shards: 2,
            workers_per_shard: 1,
            users: 200,
            tenants: 4,
            zipf_s: 1.1,
            requests_per_point: 60,
            seed: 0xC0FFEE,
            queue_capacity: 32,
            cache_capacity: 8,
            points: vec![
                OpenLoopPoint {
                    offered_rps: 400.0,
                    achieved_rps: 398.0,
                    p50_ms: 2.0,
                    p95_ms: 4.0,
                    p99_ms: 5.0,
                    mean_ms: 2.2,
                    max_ms: 6.0,
                    completed: 60,
                    shed: 0,
                    timed_out: 0,
                    rejected_submits: 0,
                    wall_ms: 150.0,
                },
                OpenLoopPoint {
                    offered_rps: 3600.0,
                    achieved_rps: 1500.0,
                    p50_ms: 12.0,
                    p95_ms: 30.0,
                    p99_ms: 38.0,
                    mean_ms: 14.0,
                    max_ms: 41.0,
                    completed: 60,
                    shed: 0,
                    timed_out: 0,
                    rejected_submits: 7,
                    wall_ms: 40.0,
                },
            ],
            peak_throughput_rps: 1500.0,
            knee_offered_rps: 400.0,
            knee_p99_ms: 5.0,
            steals: 12,
            cache_hit_rate: 0.97,
        }
    }

    #[test]
    fn open_loop_section_roundtrips_and_renders() {
        let mut p = PerfReport::new(0.03, 7, 1, 1);
        p.open_loop = Some(demo_open_loop());
        let json = serde_json::to_string_pretty(&p).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        let o = back.open_loop.expect("open_loop section survives");
        assert_eq!(o.shards, 2);
        assert_eq!(o.points.len(), 2);
        assert!((o.points[1].offered_rps - 3600.0).abs() < 1e-12);
        assert!((o.knee_p99_ms - 5.0).abs() < 1e-12);
        assert_eq!(o.steals, 12);
        let text = p.render();
        assert!(text.contains("open loop: 2 shards x 1 workers"));
        assert!(text.contains("peak 1500 req/s; knee at 400 offered"));
    }

    #[test]
    fn pre_open_loop_records_still_parse() {
        // A PR 5-7-era BENCH_rts.json has a serving section but no
        // "open_loop" key; the perf gate must keep loading such
        // baselines (open_loop reads as None) — same pattern as the
        // tenancy/fault sub-records.
        let json = r#"{
          "scale": 0.03,
          "seed": 7,
          "threads": 1,
          "effective_parallelism": 1,
          "stages": [
            { "stage": "linking", "wall_ms": 2.0,
              "per_instance_us": 43.5, "n_instances": 46 }
          ],
          "notes": [],
          "serving": {
            "workers": 1, "clients": 4, "queue_capacity": 16,
            "cache_capacity": 8, "deadline_ms": null,
            "n_requests": 92, "completed": 92, "shed": 0,
            "rejected_submits": 0, "feedback_rounds": 84,
            "p50_ms": 1.9, "p95_ms": 3.3, "p99_ms": 4.4,
            "mean_ms": 2.0, "max_ms": 4.4, "throughput_rps": 1933.0,
            "queue_depth_max": 4, "queue_depth_mean": 3.9,
            "cache_hits": 182, "cache_misses": 2, "cache_evictions": 0,
            "cache_hit_rate": 0.989, "parked_bytes_peak": 23184,
            "parked_sessions_peak": 1, "wall_ms": 47.6
          }
        }"#;
        let back: PerfReport = serde_json::from_str(json).expect("old snapshot parses");
        assert!(back.open_loop.is_none());
        assert!(back.serving.is_some(), "serving section untouched");
        let text = back.render();
        assert!(!text.contains("open loop:"), "no open-loop block to render");
    }

    #[test]
    fn perf_report_roundtrips_and_renders() {
        let mut p = PerfReport::new(0.05, 7, 4, 1);
        p.push_stage("trace_gen", std::time::Duration::from_millis(120), 60);
        p.push_stage("monitoring", std::time::Duration::from_micros(900), 60);
        p.note("smoke");
        let json = serde_json::to_string_pretty(&p).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stages.len(), 2);
        assert_eq!(back.stages[0].stage, "trace_gen");
        assert!((back.stages[0].wall_ms - 120.0).abs() < 1e-9);
        assert_eq!(back.stage_ms("monitoring"), Some(p.stages[1].wall_ms));
        assert!((back.stages[0].per_instance_us - 2000.0).abs() < 1e-6);
        assert_eq!(back.effective_parallelism, 1);
        let text = p.render();
        assert!(text.contains("trace_gen"));
        assert!(text.contains("4 threads configured, 1 effective"));
        assert!(text.contains("BENCH_rts"));
    }
}

//! Byte-identity of the frozen v1 corpus: regenerating every committed
//! experiment record under `CorpusVersion::V1` reproduces the archived
//! `results/v1/*.json` exactly — same JSON bytes, row for row.
//!
//! Gated on `RTS_CORPUS=v1` (the CI parity matrix's v1 legs run it;
//! elsewhere it skips): the regeneration costs a full two-benchmark
//! context build, and under the default v2 corpus the records
//! legitimately differ. The scale and seed are pinned to the archive's
//! (0.02, 0xC0FFEE), not read from the environment — byte-identity is
//! only defined against the exact workload the archive was generated
//! under.

use rts_bench::experiments::ablation::{
    ablation_conformal, ablation_layer_selection, ablation_merge_sets, ablation_probe_depth,
};
use rts_bench::experiments::abstain::table5;
use rts_bench::experiments::linking::table2;
use rts_bench::experiments::sweeps::figure7;
use rts_bench::{Context, Which};
use simlm::CorpusVersion;

#[test]
fn v1_regeneration_is_byte_identical_to_archive() {
    if std::env::var("RTS_CORPUS").as_deref() != Ok("v1") {
        eprintln!("skipping corpus_v1_parity: RTS_CORPUS is not v1");
        return;
    }
    let ctx = Context::load_with_corpus(Which::Both, 0.02, 0xC0FFEE, CorpusVersion::V1);
    let archive = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/v1");
    for report in [
        table2(&ctx),
        table5(&ctx),
        figure7(&ctx),
        ablation_probe_depth(&ctx),
        ablation_conformal(&ctx),
        ablation_layer_selection(&ctx),
        ablation_merge_sets(&ctx),
    ] {
        let fresh = serde_json::to_string_pretty(&report).expect("report serialises");
        let path = archive.join(format!("{}.json", report.id));
        let archived = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing archived v1 record {}: {e}", path.display()));
        assert_eq!(
            fresh, archived,
            "{} regenerated under the v1 corpus differs from the archived bytes — \
             the frozen corpus drifted",
            report.id
        );
    }
}

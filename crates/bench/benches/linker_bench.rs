//! Criterion benches for the transparent-box linker simulator and the
//! probe stack: generation throughput (hidden states dominate) and
//! per-token mBPP flagging latency — the runtime overhead RTS adds to a
//! deployed pipeline.

use benchgen::BenchmarkProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use rts_core::bpp::{Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use simlm::{GenMode, LinkTarget, SchemaLinker, Vocab};
use std::hint::black_box;
use tinynn::rng::SplitMix64;

fn setup() -> (benchgen::Benchmark, SchemaLinker) {
    let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(21);
    let linker = SchemaLinker::new("bird", 3);
    (bench, linker)
}

fn bench_generation(c: &mut Criterion) {
    let (bench, linker) = setup();
    let inst = &bench.split.dev[0];
    let mut group = c.benchmark_group("simlm/generate");
    group.bench_function("tables_free", |b| {
        b.iter(|| {
            let mut vocab = Vocab::new();
            black_box(linker.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free))
        })
    });
    group.bench_function("columns_teacher_forced", |b| {
        b.iter(|| {
            let mut vocab = Vocab::new();
            black_box(linker.generate(
                inst,
                &mut vocab,
                LinkTarget::Columns,
                GenMode::TeacherForced,
            ))
        })
    });
    group.finish();
}

/// The gaussian samplers under trace-generation-shaped load: the
/// sequential `next_gaussian` (two uniforms per variate, `sin` twin
/// discarded — the stream the frozen v1 corpus and the corpus-shared
/// decision/softmax streams are pinned to) vs the paired
/// `fill_gaussian` (both Box–Muller variates kept, half the uniform
/// draws and `ln`/`sqrt` evaluations) the v2 synthesis streams were
/// re-keyed onto. The gap is the per-row headroom the v2 corpus
/// banked.
fn bench_gaussian_samplers(c: &mut Criterion) {
    const DIM: usize = 64; // two shared-content vectors of hidden_dim 32
    let mut group = c.benchmark_group("tinynn/gaussian_x64");
    group.bench_function("sequential_next_gaussian", |b| {
        let mut rng = SplitMix64::new(7);
        let mut buf = [0.0f64; DIM];
        b.iter(|| {
            for x in buf.iter_mut() {
                *x = rng.next_gaussian();
            }
            black_box(buf[DIM - 1])
        })
    });
    group.bench_function("paired_fill_gaussian", |b| {
        let mut rng = SplitMix64::new(7);
        let mut buf = [0.0f64; DIM];
        b.iter(|| {
            rng.fill_gaussian(&mut buf);
            black_box(buf[DIM - 1])
        })
    });
    group.finish();
}

/// The tentpole A/B: identical free-running trace generation under the
/// frozen v1 corpus (sequential per-layer sampling, two interleaved
/// streams per layer) vs the v2 corpus (chunked `fill_gaussian` rows,
/// one merged per-layer stream). Same instance, same lazily selected
/// layers — only the synthesis corpus differs.
fn bench_corpus_versions(c: &mut Criterion) {
    let (bench, linker_v2) = setup();
    let linker_v1 = SchemaLinker::new("bird", 3).with_corpus(simlm::CorpusVersion::V1);
    let inst = &bench.split.dev[0];
    let mut group = c.benchmark_group("trace_gen/corpus_v1_vs_v2");
    group.bench_function("v1_sequential", |b| {
        b.iter(|| {
            let mut vocab = Vocab::new();
            black_box(linker_v1.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free))
        })
    });
    group.bench_function("v2_chunked", |b| {
        b.iter(|| {
            let mut vocab = Vocab::new();
            black_box(linker_v2.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free))
        })
    });
    // The v2 corpus drawn one scalar at a time (the parity reference
    // path): isolates chunking/batched-trig gains from the stream
    // re-key itself.
    let linker_v2_seq = SchemaLinker::new("bird", 3).with_v2_sequential_reference();
    group.bench_function("v2_sequential_reference", |b| {
        b.iter(|| {
            let mut vocab = Vocab::new();
            black_box(linker_v2_seq.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free))
        })
    });
    group.finish();
}

fn bench_branch_dataset(c: &mut Criterion) {
    let (bench, linker) = setup();
    c.bench_function("rts/branch_dataset_40_instances", |b| {
        b.iter(|| {
            black_box(BranchDataset::build(
                &linker,
                &bench.split.train,
                LinkTarget::Tables,
                40,
            ))
        })
    });
}

fn bench_probe_training(c: &mut Criterion) {
    let (bench, linker) = setup();
    let ds = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 150);
    c.bench_function("rts/sbpp_train_single_layer", |b| {
        b.iter(|| {
            black_box(rts_core::bpp::Sbpp::train(
                &ds,
                20,
                0.1,
                &ProbeConfig {
                    epochs: 5,
                    ..ProbeConfig::default()
                },
            ))
        })
    });
}

fn bench_flagging(c: &mut Criterion) {
    let (bench, linker) = setup();
    let ds = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 150);
    let mbpp = Mbpp::train(
        &ds,
        &MbppConfig {
            probe: ProbeConfig {
                epochs: 5,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let inst = &bench.split.dev[0];
    let mut vocab = Vocab::new();
    let trace = linker.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
    c.bench_function("rts/mbpp_flag_trace", |b| {
        let mut rng = SplitMix64::new(17);
        b.iter(|| black_box(mbpp.flag_trace(&trace, &mut rng)))
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_gaussian_samplers,
    bench_corpus_versions,
    bench_branch_dataset,
    bench_probe_training,
    bench_flagging
);
criterion_main!(benches);

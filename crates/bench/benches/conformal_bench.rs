//! Criterion benches for the conformal substrate: calibration,
//! prediction-set construction, and the two merge methods.

use conformal::{majority_vote, random_permutation_merge, LabelSet, SplitConformal};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tinynn::rng::SplitMix64;

fn scores(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64()).collect()
}

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("conformal/calibrate");
    for n in [100usize, 1000, 10_000] {
        group.bench_function(format!("n={n}"), |b| {
            b.iter_batched(
                || scores(n, 7),
                |s| black_box(SplitConformal::from_scores(s, 0.1)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let cp = SplitConformal::from_scores(scores(1000, 3), 0.1);
    c.bench_function("conformal/predict_binary", |b| {
        let mut rng = SplitMix64::new(11);
        b.iter(|| black_box(cp.predict_binary(rng.next_f64())))
    });
}

fn bench_merges(c: &mut Criterion) {
    let mut rng = SplitMix64::new(5);
    let sets: Vec<LabelSet> = (0..30)
        .map(|_| {
            let mut s = LabelSet::EMPTY;
            if rng.next_bool(0.6) {
                s.insert(0);
            }
            if rng.next_bool(0.4) {
                s.insert(1);
            }
            s
        })
        .collect();
    let mut group = c.benchmark_group("conformal/merge");
    for k in [5usize, 15, 30] {
        group.bench_function(format!("majority_vote/k={k}"), |b| {
            b.iter(|| black_box(majority_vote(&sets[..k], 0.5, 2)))
        });
        group.bench_function(format!("random_permutation/k={k}"), |b| {
            let mut mrng = SplitMix64::new(9);
            b.iter(|| black_box(random_permutation_merge(&sets[..k], 2, &mut mrng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_calibration, bench_prediction, bench_merges);
criterion_main!(benches);

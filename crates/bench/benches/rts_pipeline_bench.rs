//! Criterion benches for the end-to-end RTS runtime: monitored linking
//! per instance under each mitigation policy, and the downstream SQL
//! generation + execution step.

use benchgen::BenchmarkProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use rts_core::abstention::{run_rts_linking, MitigationPolicy, RtsConfig};
use rts_core::bpp::{Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_core::human::{Expertise, HumanOracle};
use rts_core::sqlgen::{ProvidedSchema, SqlGenModel};
use rts_core::surrogate::SurrogateModel;
use simlm::{LinkTarget, SchemaLinker};
use std::hint::black_box;

struct Fx {
    bench: benchgen::Benchmark,
    linker: SchemaLinker,
    mbpp: Mbpp,
    surrogate: SurrogateModel,
}

fn setup() -> Fx {
    let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(33);
    let linker = SchemaLinker::new("bird", 3);
    let ds = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 150);
    let mbpp = Mbpp::train(
        &ds,
        &MbppConfig { probe: ProbeConfig { epochs: 6, ..Default::default() }, ..Default::default() },
    );
    let surrogate = SurrogateModel::train(&bench, 7);
    Fx { bench, linker, mbpp, surrogate }
}

fn bench_policies(c: &mut Criterion) {
    let fx = setup();
    let oracle = HumanOracle::new(Expertise::Expert, 5);
    let config = RtsConfig::default();
    let inst = &fx.bench.split.dev[0];
    let meta = fx.bench.meta(&inst.db_name).unwrap();
    let mut group = c.benchmark_group("rts/linking_per_instance");
    group.bench_function("abstain_only", |b| {
        b.iter(|| {
            black_box(run_rts_linking(
                &fx.linker,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                &MitigationPolicy::AbstainOnly,
                &config,
            ))
        })
    });
    group.bench_function("surrogate", |b| {
        b.iter(|| {
            black_box(run_rts_linking(
                &fx.linker,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                &MitigationPolicy::Surrogate(&fx.surrogate),
                &config,
            ))
        })
    });
    group.bench_function("human", |b| {
        b.iter(|| {
            black_box(run_rts_linking(
                &fx.linker,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                &MitigationPolicy::Human(&oracle),
                &config,
            ))
        })
    });
    group.finish();
}

fn bench_sqlgen(c: &mut Criterion) {
    let fx = setup();
    let generator = SqlGenModel::deepseek_7b("bird", 9);
    let inst = &fx.bench.split.dev[0];
    let meta = fx.bench.meta(&inst.db_name).unwrap();
    let db = fx.bench.database(&inst.db_name).unwrap();
    let schema = ProvidedSchema::full(meta);
    c.bench_function("rts/sqlgen_generate_and_execute", |b| {
        b.iter(|| {
            let stmt = generator.generate(inst, &schema, meta);
            black_box(nanosql::exec::execute(db, &stmt).unwrap())
        })
    });
}

criterion_group!(benches, bench_policies, bench_sqlgen);
criterion_main!(benches);

//! Criterion benches for the end-to-end RTS runtime: monitored linking
//! per instance under each mitigation policy, and the downstream SQL
//! generation + execution step.

use benchgen::BenchmarkProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use rts_core::abstention::{
    run_rts_linking, run_rts_linking_from, run_rts_linking_in, LinkScratch, MitigationPolicy,
    Round0, RtsConfig,
};
use rts_core::bpp::{BppScratch, Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_core::context::{implicated_elements_reference, LinkContext};
use rts_core::human::{Expertise, HumanOracle};
use rts_core::pipeline::{measure_ex, run_full_pipeline, SchemaSource};
use rts_core::sqlgen::{ProvidedSchema, SqlGenModel};
use rts_core::surrogate::SurrogateModel;
use simlm::{GenMode, LayerSet, LinkTarget, SchemaLinker, SynthScratch, Vocab};
use std::hint::black_box;
use tinynn::rng::SplitMix64;

struct Fx {
    bench: benchgen::Benchmark,
    linker: SchemaLinker,
    mbpp: Mbpp,
    surrogate: SurrogateModel,
}

fn setup() -> Fx {
    let bench = BenchmarkProfile::bird_like().scaled(0.02).generate(33);
    let linker = SchemaLinker::new("bird", 3);
    let ds = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 150);
    let mbpp = Mbpp::train(
        &ds,
        &MbppConfig {
            probe: ProbeConfig {
                epochs: 6,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let surrogate = SurrogateModel::train(&bench, 7);
    Fx {
        bench,
        linker,
        mbpp,
        surrogate,
    }
}

fn bench_policies(c: &mut Criterion) {
    let fx = setup();
    let oracle = HumanOracle::new(Expertise::Expert, 5);
    let config = RtsConfig::default();
    let reference_config = RtsConfig {
        reference_linking: true,
        ..RtsConfig::default()
    };
    let inst = &fx.bench.split.dev[0];
    let meta = fx.bench.meta(&inst.db_name).unwrap();
    let ctx = LinkContext::new(meta, LinkTarget::Tables);
    let mut group = c.benchmark_group("rts/linking_per_instance");
    group.bench_function("abstain_only", |b| {
        b.iter(|| {
            black_box(run_rts_linking(
                &fx.linker,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                &MitigationPolicy::AbstainOnly,
                &config,
            ))
        })
    });
    group.bench_function("abstain_only_shared_ctx", |b| {
        let mut scratch = LinkScratch::default();
        b.iter(|| {
            black_box(run_rts_linking_in(
                &fx.linker,
                &fx.mbpp,
                inst,
                meta,
                &ctx,
                &MitigationPolicy::AbstainOnly,
                &config,
                &mut scratch,
            ))
        })
    });
    group.bench_function("abstain_only_from_trace", |b| {
        let mut scratch = LinkScratch::default();
        let mut vocab = Vocab::new();
        let trace = fx.linker.generate_with_layers(
            inst,
            &mut vocab,
            LinkTarget::Tables,
            GenMode::Free,
            &fx.mbpp.layer_set(),
            &mut scratch.synth,
        );
        b.iter(|| {
            black_box(run_rts_linking_from(
                &fx.linker,
                &fx.mbpp,
                inst,
                meta,
                &ctx,
                Round0 {
                    trace: &trace,
                    vocab: &vocab,
                },
                &MitigationPolicy::AbstainOnly,
                &config,
                &mut scratch,
            ))
        })
    });
    group.bench_function("abstain_only_reference_path", |b| {
        b.iter(|| {
            black_box(run_rts_linking(
                &fx.linker,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                &MitigationPolicy::AbstainOnly,
                &reference_config,
            ))
        })
    });
    group.bench_function("surrogate", |b| {
        b.iter(|| {
            black_box(run_rts_linking(
                &fx.linker,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                &MitigationPolicy::Surrogate(&fx.surrogate),
                &config,
            ))
        })
    });
    group.bench_function("human", |b| {
        b.iter(|| {
            black_box(run_rts_linking(
                &fx.linker,
                &fx.mbpp,
                inst,
                meta,
                LinkTarget::Tables,
                &MitigationPolicy::Human(&oracle),
                &config,
            ))
        })
    });
    group.finish();
}

/// Trace generation by selected-layer count: the eager full stack
/// (pre-lazy behaviour) vs lazy synthesis of what the monitor actually
/// reads — the mBPP's k selected layers, a single layer, or none (the
/// unmonitored counterfactual the RTS runtime uses for TAR/FAR
/// accounting). Hidden-state synthesis dominates generation, so time
/// should fall roughly with the synthesized-layer count.
fn bench_trace_gen(c: &mut Criterion) {
    let fx = setup();
    let inst = &fx.bench.split.dev[0];
    let k_layers = fx.mbpp.layer_set();
    let top_layer = LayerSet::select([fx.mbpp.sbpps[fx.mbpp.selected[0]].layer]);
    let mut group = c.benchmark_group("rts/trace_gen");
    for (target, tag) in [
        (LinkTarget::Tables, "tables"),
        (LinkTarget::Columns, "columns"),
    ] {
        group.bench_function(format!("{tag}_eager_full_stack"), |b| {
            b.iter(|| {
                let mut vocab = Vocab::new();
                black_box(fx.linker.generate(inst, &mut vocab, target, GenMode::Free))
            })
        });
        for (layers, label) in [
            (
                &k_layers,
                format!("{tag}_lazy_k{}", k_layers.count(fx.linker.n_layers)),
            ),
            (&top_layer, format!("{tag}_lazy_k1")),
            (&LayerSet::none(), format!("{tag}_lazy_none")),
        ] {
            group.bench_function(label, |b| {
                let mut scratch = SynthScratch::default();
                b.iter(|| {
                    let mut vocab = Vocab::new();
                    black_box(fx.linker.generate_with_layers(
                        inst,
                        &mut vocab,
                        target,
                        GenMode::Free,
                        layers,
                        &mut scratch,
                    ))
                })
            });
        }
    }
    group.finish();
}

/// Algorithm 2 per flag: the precompiled `LinkContext` trie vs the
/// clone-the-vocab-and-rebuild path every flag used to pay, plus the
/// context build itself (paid once per database, amortised across all
/// of its instances, rounds and flags).
fn bench_traceback(c: &mut Criterion) {
    let fx = setup();
    // A flagged free generation: take the first dev instance whose
    // stream carries a branch token.
    let (inst, trace, vocab) = fx
        .bench
        .split
        .dev
        .iter()
        .find_map(|inst| {
            let mut vocab = Vocab::new();
            let trace = fx
                .linker
                .generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            trace
                .steps
                .iter()
                .any(|s| s.is_branch)
                .then_some((inst, trace, vocab))
        })
        .expect("a branching dev generation exists");
    let branch_pos = trace.steps.iter().position(|s| s.is_branch).unwrap();
    let meta = fx.bench.meta(&inst.db_name).unwrap();
    let ctx = LinkContext::new(meta, LinkTarget::Tables);
    let mut group = c.benchmark_group("rts/traceback");
    group.bench_function("cached_trie", |b| {
        b.iter(|| black_box(ctx.implicated_elements(&vocab, &trace.tokens, branch_pos)))
    });
    group.bench_function("rebuild_per_flag", |b| {
        b.iter(|| {
            black_box(implicated_elements_reference(
                &vocab,
                meta,
                LinkTarget::Tables,
                &trace.tokens,
                branch_pos,
            ))
        })
    });
    group.bench_function("context_build_tables", |b| {
        b.iter(|| black_box(LinkContext::new(meta, LinkTarget::Tables)))
    });
    group.bench_function("context_build_columns", |b| {
        b.iter(|| black_box(LinkContext::new(meta, LinkTarget::Columns)))
    });
    group.finish();
}

/// The monitored-generation hot path in isolation: per-token baseline
/// vs the batched scoring path over single traces (tables: short
/// streams; columns: the longer streams that dominate per-instance
/// monitoring cost).
fn bench_monitoring(c: &mut Criterion) {
    let fx = setup();
    let inst = &fx.bench.split.dev[0];
    let mut group = c.benchmark_group("rts/flag_trace");
    for (target, tag) in [
        (LinkTarget::Tables, "tables"),
        (LinkTarget::Columns, "columns"),
    ] {
        let mut vocab = Vocab::new();
        let trace = fx
            .linker
            .generate(inst, &mut vocab, target, GenMode::TeacherForced);
        group.bench_function(format!("{tag}_per_token"), |b| {
            let mut rng = SplitMix64::new(7);
            b.iter(|| black_box(fx.mbpp.flag_trace_per_token(&trace, &mut rng)))
        });
        group.bench_function(format!("{tag}_batched"), |b| {
            let mut rng = SplitMix64::new(7);
            let mut scratch = BppScratch::default();
            b.iter(|| {
                black_box(
                    fx.mbpp
                        .flag_trace_with_scratch(&trace, &mut rng, &mut scratch),
                )
            })
        });
    }
    group.finish();
}

/// The acceptance-bar measurement: monitored linking per instance, old
/// runtime (per-token monitoring, serial instance loop) vs new (batched
/// monitoring, instance-parallel fan-out). Identical outcomes, ≥ 3×
/// wall-clock on a multi-core machine.
fn bench_monitored_linking(c: &mut Criterion) {
    let fx = setup();
    let instances: Vec<benchgen::Instance> = fx.bench.split.dev.iter().take(32).cloned().collect();
    let per_token_cfg = RtsConfig {
        per_token_monitoring: true,
        ..RtsConfig::default()
    };
    let batched_cfg = RtsConfig::default();
    let link = |inst: &benchgen::Instance, cfg: &RtsConfig| {
        let meta = fx.bench.meta(&inst.db_name).unwrap();
        run_rts_linking(
            &fx.linker,
            &fx.mbpp,
            inst,
            meta,
            LinkTarget::Tables,
            &MitigationPolicy::AbstainOnly,
            cfg,
        )
    };
    let mut group = c.benchmark_group("rts/monitored_linking_per_instance_x32");
    group.bench_function("per_token_serial_baseline", |b| {
        b.iter(|| {
            black_box(
                instances
                    .iter()
                    .map(|inst| link(inst, &per_token_cfg))
                    .collect::<Vec<_>>(),
            )
        })
    });
    group.bench_function("batched_serial", |b| {
        b.iter(|| {
            black_box(
                instances
                    .iter()
                    .map(|inst| link(inst, &batched_cfg))
                    .collect::<Vec<_>>(),
            )
        })
    });
    group.bench_function("batched_parallel", |b| {
        b.iter(|| {
            black_box(rts_core::par::par_map(&instances, |inst| {
                link(inst, &batched_cfg)
            }))
        })
    });
    group.finish();
}

/// Instance-parallel full pipeline (linking → SQL → EX) vs the
/// schema-source EX measurement alone.
fn bench_parallel_pipeline(c: &mut Criterion) {
    let fx = setup();
    // The joint pipeline monitors the column stream with its own probes.
    let ds_c = BranchDataset::build(&fx.linker, &fx.bench.split.train, LinkTarget::Columns, 150);
    let mbpp_c = Mbpp::train(
        &ds_c,
        &MbppConfig {
            probe: ProbeConfig {
                epochs: 6,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let oracle = HumanOracle::new(Expertise::Expert, 5);
    let generator = SqlGenModel::deepseek_7b("bird", 9);
    let config = RtsConfig::default();
    let instances: Vec<benchgen::Instance> = fx.bench.split.dev.iter().take(64).cloned().collect();
    let mut group = c.benchmark_group("rts/pipeline_64_instances");
    group.bench_function("full_pipeline_parallel", |b| {
        b.iter(|| {
            black_box(run_full_pipeline(
                &fx.bench, &instances, &fx.linker, &fx.mbpp, &mbpp_c, &oracle, &generator, &config,
            ))
        })
    });
    group.bench_function("measure_ex_golden", |b| {
        b.iter(|| {
            black_box(measure_ex(
                &fx.bench,
                &instances,
                &generator,
                &SchemaSource::Golden,
            ))
        })
    });
    group.finish();
}

fn bench_sqlgen(c: &mut Criterion) {
    let fx = setup();
    let generator = SqlGenModel::deepseek_7b("bird", 9);
    let inst = &fx.bench.split.dev[0];
    let meta = fx.bench.meta(&inst.db_name).unwrap();
    let db = fx.bench.database(&inst.db_name).unwrap();
    let schema = ProvidedSchema::full(meta);
    c.bench_function("rts/sqlgen_generate_and_execute", |b| {
        b.iter(|| {
            let stmt = generator.generate(inst, &schema, meta);
            black_box(nanosql::exec::execute(db, &stmt).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_trace_gen,
    bench_monitoring,
    bench_traceback,
    bench_monitored_linking,
    bench_policies,
    bench_parallel_pipeline,
    bench_sqlgen
);
criterion_main!(benches);

//! Criterion benches for the SQL engine: parsing, planning, execution
//! and EX comparison on generated workloads.

use benchgen::BenchmarkProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use nanosql::exec::{execute, execute_sql};
use nanosql::plan::bind;
use nanosql::result::execution_accuracy;
use std::hint::black_box;

fn setup() -> benchgen::Benchmark {
    BenchmarkProfile::bird_like().scaled(0.01).generate(13)
}

fn bench_parse(c: &mut Criterion) {
    let bench = setup();
    let sqls: Vec<String> = bench
        .split
        .dev
        .iter()
        .take(50)
        .map(|i| i.gold_sql.to_string())
        .collect();
    c.bench_function("nanosql/parse_50_stmts", |b| {
        b.iter(|| {
            for s in &sqls {
                black_box(nanosql::parser::parse(s).unwrap());
            }
        })
    });
}

fn bench_bind(c: &mut Criterion) {
    let bench = setup();
    let work: Vec<_> = bench
        .split
        .dev
        .iter()
        .take(50)
        .map(|i| (bench.database(&i.db_name).unwrap(), i.gold_sql.clone()))
        .collect();
    c.bench_function("nanosql/bind_50_stmts", |b| {
        b.iter(|| {
            for (db, stmt) in &work {
                black_box(bind(db, stmt).unwrap());
            }
        })
    });
}

fn bench_execute(c: &mut Criterion) {
    let bench = setup();
    let work: Vec<_> = bench
        .split
        .dev
        .iter()
        .take(20)
        .map(|i| (bench.database(&i.db_name).unwrap(), i.gold_sql.clone()))
        .collect();
    c.bench_function("nanosql/execute_20_stmts", |b| {
        b.iter(|| {
            for (db, stmt) in &work {
                black_box(execute(db, stmt).unwrap());
            }
        })
    });
}

fn bench_execution_accuracy(c: &mut Criterion) {
    let bench = setup();
    let inst = &bench.split.dev[0];
    let db = bench.database(&inst.db_name).unwrap();
    let gold = inst.gold_sql.to_string();
    c.bench_function("nanosql/execution_accuracy", |b| {
        b.iter(|| black_box(execution_accuracy(db, &gold, &gold)))
    });
    // Sanity outside the timing loop.
    assert!(execute_sql(db, &gold).is_ok());
}

criterion_group!(
    benches,
    bench_parse,
    bench_bind,
    bench_execute,
    bench_execution_accuracy
);
criterion_main!(benches);

//! Multi-layer perceptron binary classifier.
//!
//! The paper's branching-point predictors are "two-layer perceptron (MLP)
//! classifier\[s\]" over hidden-state vectors (§3.1). [`Mlp`] generalises
//! that slightly (any number of hidden layers) because the ablation
//! benches compare probe depths, but the default configuration is exactly
//! the paper's: one ReLU hidden layer plus a sigmoid output.

use crate::data::Dataset;
use crate::layer::{Activation, Dense};
use crate::loss::bce_with_grad;
use crate::matrix::{MatmulHint, Matrix};
use crate::optim::{OptimKind, Optimizer};
use crate::rng::SplitMix64;

/// Training/shape configuration for an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    pub input_dim: usize,
    /// Hidden layer widths; `vec![32]` gives the paper's 2-layer probe.
    pub hidden_dims: Vec<usize>,
    pub lr: f32,
    pub epochs: usize,
    pub batch_size: usize,
    /// Weight applied to positive-class loss (branching points are rare).
    pub pos_weight: f32,
    pub weight_decay: f32,
    pub optimizer: OptimKind,
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            input_dim: 0,
            hidden_dims: vec![32],
            lr: 1e-3,
            epochs: 30,
            batch_size: 64,
            pos_weight: 1.0,
            weight_decay: 1e-5,
            optimizer: OptimKind::default(),
            seed: 0,
        }
    }
}

/// A feed-forward binary classifier.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    config: MlpConfig,
    /// Mean training loss per epoch, recorded by [`Mlp::fit`].
    pub loss_history: Vec<f32>,
}

/// Reusable activation buffers for [`Mlp::predict_proba_batch_into`].
/// One scratch can be shared across models and batch sizes; buffers
/// grow to the largest batch seen and are then reused.
#[derive(Debug, Default, Clone)]
pub struct MlpScratch {
    a: Matrix,
    b: Matrix,
}

impl Mlp {
    /// Construct with Xavier-initialised weights (deterministic in seed).
    pub fn new(config: MlpConfig) -> Self {
        assert!(config.input_dim > 0, "input_dim must be set");
        let mut rng = SplitMix64::new(config.seed ^ 0x4D4C_5000);
        let mut layers = Vec::with_capacity(config.hidden_dims.len() + 1);
        let mut prev = config.input_dim;
        for &h in &config.hidden_dims {
            layers.push(Dense::new(prev, h, Activation::Relu, &mut rng));
            prev = h;
        }
        layers.push(Dense::new(prev, 1, Activation::Sigmoid, &mut rng));
        Self {
            layers,
            config,
            loss_history: Vec::new(),
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Forward pass for a batch.
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    /// Train on `data` with mini-batch gradient descent. Returns the final
    /// epoch's mean loss. Calling `fit` again continues training.
    pub fn fit(&mut self, data: &Dataset) -> f32 {
        assert_eq!(data.dim(), self.config.input_dim, "dataset dim mismatch");
        let mut optims: Vec<(Optimizer, Optimizer)> = self
            .layers
            .iter()
            .map(|l| {
                (
                    Optimizer::new(
                        self.config.optimizer,
                        self.config.lr,
                        self.config.weight_decay,
                        l.w.rows() * l.w.cols(),
                    ),
                    Optimizer::new(self.config.optimizer, self.config.lr, 0.0, l.b.len()),
                )
            })
            .collect();

        let mut last_loss = f32::INFINITY;
        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0;
            let mut n_batches = 0;
            let batch_seed = self
                .config
                .seed
                .wrapping_add(epoch as u64)
                .wrapping_mul(0x9E37);
            for (bx, by) in data.batches(self.config.batch_size, batch_seed) {
                let probs = self.forward(&bx, true);
                let mut grad = Matrix::zeros(probs.rows(), 1);
                epoch_loss += bce_with_grad(&probs, &by, self.config.pos_weight, &mut grad);
                n_batches += 1;
                for layer in &mut self.layers {
                    layer.zero_grad();
                }
                let mut g = grad;
                for layer in self.layers.iter_mut().rev() {
                    g = layer.backward(g);
                }
                for (layer, (ow, ob)) in self.layers.iter_mut().zip(optims.iter_mut()) {
                    ow.step(layer.w.as_mut_slice(), layer.grad_w.as_slice());
                    ob.step(&mut layer.b, &layer.grad_b);
                }
            }
            last_loss = epoch_loss / n_batches.max(1) as f32;
            self.loss_history.push(last_loss);
        }
        last_loss
    }

    /// Probability that `x` belongs to the positive class.
    pub fn predict_proba(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.config.input_dim, "input dim mismatch");
        // Inference avoids the training-path caching by doing a manual
        // forward over immutable layers.
        let mut cur = Matrix::from_vec(1, x.len(), x.to_vec());
        for layer in &self.layers {
            let mut out = cur.matmul(&layer.w);
            out.add_row_broadcast(&layer.b);
            layer.act.forward(&mut out);
            cur = out;
        }
        cur.get(0, 0)
    }

    /// Batched probabilities.
    pub fn predict_proba_batch(&self, xs: &Matrix) -> Vec<f32> {
        let mut scratch = MlpScratch::default();
        let mut out = Vec::new();
        self.predict_proba_batch_into(xs, &mut scratch, &mut out);
        out
    }

    /// Batched probabilities with caller-owned scratch: after the first
    /// call no allocation happens on this path (buffers are reused even
    /// when the batch size changes), which is what the monitored-
    /// generation hot loop needs. Arithmetic is identical to
    /// [`Mlp::predict_proba`] row by row.
    pub fn predict_proba_batch_into(
        &self,
        xs: &Matrix,
        scratch: &mut MlpScratch,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(xs.cols(), self.config.input_dim, "input dim mismatch");
        // Ping-pong between the two scratch buffers: `a` always holds
        // the current activation, each layer writes into `b`, then the
        // buffers swap (a pointer swap — no copy, no allocation).
        scratch.a.copy_from(xs);
        let mut prev_act: Option<Activation> = None;
        for layer in &self.layers {
            // The input regime is known statically here: the raw batch
            // is dense (standardised features), post-ReLU activations
            // are sparse — no runtime sparsity probe needed.
            let hint = match prev_act {
                Some(Activation::Relu) => MatmulHint::Sparse,
                _ => MatmulHint::Dense,
            };
            scratch.a.matmul_into_hinted(&layer.w, &mut scratch.b, hint);
            scratch.b.add_row_broadcast(&layer.b);
            layer.act.forward(&mut scratch.b);
            prev_act = Some(layer.act);
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        out.clear();
        out.extend((0..scratch.a.rows()).map(|r| scratch.a.get(r, 0)));
    }

    /// Hard 0/1 prediction at threshold 0.5.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.predict_proba(x) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;

    fn linearly_separable(n: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x0 = rng.next_gaussian() as f32;
            let x1 = rng.next_gaussian() as f32;
            let y = if x0 + x1 > 0.0 { 1.0 } else { 0.0 };
            rows.push(vec![x0, x1]);
            ys.push(y);
        }
        Dataset::from_rows(&rows, &ys)
    }

    #[test]
    fn learns_linear_boundary() {
        let ds = linearly_separable(400, 3);
        let mut mlp = Mlp::new(MlpConfig {
            input_dim: 2,
            hidden_dims: vec![8],
            epochs: 60,
            lr: 0.01,
            seed: 5,
            ..MlpConfig::default()
        });
        mlp.fit(&ds);
        let test = linearly_separable(200, 99);
        let scores: Vec<f64> = (0..test.len())
            .map(|i| mlp.predict_proba(test.row(i)) as f64)
            .collect();
        let labels: Vec<bool> = test.targets().iter().map(|&t| t > 0.5).collect();
        let a = auc(&scores, &labels);
        assert!(a > 0.97, "AUC {a}");
    }

    #[test]
    fn learns_xor() {
        let xs = vec![vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]];
        let ys = vec![0.0, 1.0, 1.0, 0.0];
        let ds = Dataset::from_rows(&xs, &ys);
        let mut mlp = Mlp::new(MlpConfig {
            input_dim: 2,
            hidden_dims: vec![8],
            lr: 0.05,
            epochs: 800,
            batch_size: 4,
            seed: 7,
            ..MlpConfig::default()
        });
        mlp.fit(&ds);
        assert!(mlp.predict(&[0., 1.]));
        assert!(mlp.predict(&[1., 0.]));
        assert!(!mlp.predict(&[0., 0.]));
        assert!(!mlp.predict(&[1., 1.]));
    }

    #[test]
    fn loss_decreases() {
        let ds = linearly_separable(300, 11);
        let mut mlp = Mlp::new(MlpConfig {
            input_dim: 2,
            epochs: 40,
            lr: 0.01,
            seed: 1,
            ..MlpConfig::default()
        });
        mlp.fit(&ds);
        let first = mlp.loss_history.first().copied().unwrap();
        let last = mlp.loss_history.last().copied().unwrap();
        assert!(
            last < first * 0.5,
            "loss did not decrease: {first} -> {last}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let ds = linearly_separable(100, 2);
        let cfg = MlpConfig {
            input_dim: 2,
            epochs: 5,
            seed: 13,
            ..MlpConfig::default()
        };
        let mut a = Mlp::new(cfg.clone());
        let mut b = Mlp::new(cfg);
        a.fit(&ds);
        b.fit(&ds);
        assert_eq!(a.predict_proba(&[0.3, -0.2]), b.predict_proba(&[0.3, -0.2]));
    }

    #[test]
    fn batch_and_single_prediction_agree() {
        let ds = linearly_separable(50, 4);
        let mut mlp = Mlp::new(MlpConfig {
            input_dim: 2,
            epochs: 3,
            seed: 21,
            ..MlpConfig::default()
        });
        mlp.fit(&ds);
        let batch = mlp.predict_proba_batch(ds.features());
        for (i, &b) in batch.iter().enumerate() {
            assert!((b - mlp.predict_proba(ds.row(i))).abs() < 1e-6);
        }
    }

    #[test]
    fn scratch_forward_is_bit_identical_and_reusable() {
        let ds = linearly_separable(64, 8);
        let mut mlp = Mlp::new(MlpConfig {
            input_dim: 2,
            hidden_dims: vec![16, 8],
            epochs: 4,
            seed: 2,
            ..MlpConfig::default()
        });
        mlp.fit(&ds);
        let mut scratch = MlpScratch::default();
        let mut probs = Vec::new();
        // Reuse the same scratch across shrinking and growing batches.
        for take in [64usize, 5, 64, 1, 17] {
            let sub = ds.subset(&(0..take).collect::<Vec<_>>());
            mlp.predict_proba_batch_into(sub.features(), &mut scratch, &mut probs);
            assert_eq!(probs.len(), take);
            for (i, &p) in probs.iter().enumerate() {
                // Bit-identical to the per-row path.
                assert_eq!(p, mlp.predict_proba(sub.row(i)), "row {i} of batch {take}");
            }
        }
    }

    #[test]
    fn pos_weight_raises_recall_on_imbalanced_data() {
        // 5% positives with noisy boundary; weighted probe should catch
        // clearly more of them at threshold 0.5.
        let mut rng = SplitMix64::new(17);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..2000 {
            let pos = rng.next_bool(0.05);
            let centre = if pos { 0.8 } else { -0.2 };
            rows.push(vec![
                centre + 0.7 * rng.next_gaussian() as f32,
                centre + 0.7 * rng.next_gaussian() as f32,
            ]);
            ys.push(if pos { 1.0 } else { 0.0 });
        }
        let ds = Dataset::from_rows(&rows, &ys);
        let train = |w: f32| {
            let mut m = Mlp::new(MlpConfig {
                input_dim: 2,
                epochs: 25,
                lr: 0.005,
                pos_weight: w,
                seed: 3,
                ..MlpConfig::default()
            });
            m.fit(&ds);
            let mut tp = 0usize;
            let mut fn_ = 0usize;
            for i in 0..ds.len() {
                if ds.targets()[i] > 0.5 {
                    if m.predict(ds.row(i)) {
                        tp += 1;
                    } else {
                        fn_ += 1;
                    }
                }
            }
            tp as f64 / (tp + fn_) as f64
        };
        let recall_unweighted = train(1.0);
        let recall_weighted = train(10.0);
        assert!(
            recall_weighted > recall_unweighted + 0.1,
            "weighted {recall_weighted} vs unweighted {recall_unweighted}"
        );
    }
}

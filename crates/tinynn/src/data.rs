//! In-memory dataset container with deterministic shuffling, splits, and
//! mini-batching.

use crate::matrix::Matrix;
use crate::rng::{shuffle, SplitMix64};

/// A supervised dataset: row-major features plus one scalar target per row.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Matrix,
    targets: Vec<f32>,
}

impl Dataset {
    /// Build from row slices. All rows must share the same width.
    pub fn from_rows(rows: &[Vec<f32>], targets: &[f32]) -> Self {
        assert_eq!(rows.len(), targets.len(), "row/target count mismatch");
        assert!(!rows.is_empty(), "empty dataset");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged feature rows");
            data.extend_from_slice(row);
        }
        Self {
            features: Matrix::from_vec(rows.len(), cols, data),
            targets: targets.to_vec(),
        }
    }

    /// Build from an already-assembled matrix.
    pub fn from_matrix(features: Matrix, targets: Vec<f32>) -> Self {
        assert_eq!(features.rows(), targets.len(), "row/target count mismatch");
        Self { features, targets }
    }

    pub fn len(&self) -> usize {
        self.targets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    pub fn features(&self) -> &Matrix {
        &self.features
    }

    pub fn targets(&self) -> &[f32] {
        &self.targets
    }

    pub fn row(&self, i: usize) -> &[f32] {
        self.features.row(i)
    }

    /// Fraction of positive (`> 0.5`) targets — class balance diagnostics.
    pub fn positive_rate(&self) -> f64 {
        if self.targets.is_empty() {
            return 0.0;
        }
        self.targets.iter().filter(|&&t| t > 0.5).count() as f64 / self.targets.len() as f64
    }

    /// Deterministic split into `(train, held_out)` where `held_out` gets
    /// `frac` of the rows. Rows are shuffled first so splits are
    /// class-mixed; the shuffle order depends only on `seed`.
    pub fn split(&self, frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&frac), "frac must be in [0,1)");
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = SplitMix64::new(seed);
        shuffle(&mut idx, &mut rng);
        let n_held = ((n as f64) * frac).round() as usize;
        let (held_idx, train_idx) = idx.split_at(n_held);
        (self.subset(train_idx), self.subset(held_idx))
    }

    /// Materialise a subset of rows.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let cols = self.dim();
        let mut data = Vec::with_capacity(indices.len() * cols);
        let mut targets = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.features.row(i));
            targets.push(self.targets[i]);
        }
        Dataset {
            features: Matrix::from_vec(indices.len(), cols, data),
            targets,
        }
    }

    /// Iterate over mini-batches in a deterministic shuffled order.
    /// Yields `(features, targets)` pairs; the final batch may be short.
    pub fn batches(&self, batch_size: usize, seed: u64) -> Vec<(Matrix, Vec<f32>)> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = SplitMix64::new(seed);
        shuffle(&mut idx, &mut rng);
        idx.chunks(batch_size)
            .map(|chunk| {
                let sub = self.subset(chunk);
                (sub.features, sub.targets)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32, (i * 2) as f32]).collect();
        let ys: Vec<f32> = (0..n).map(|i| (i % 2) as f32).collect();
        Dataset::from_rows(&rows, &ys)
    }

    #[test]
    fn split_partitions_all_rows() {
        let ds = toy(100);
        let (train, cal) = ds.split(0.25, 7);
        assert_eq!(train.len() + cal.len(), 100);
        assert_eq!(cal.len(), 25);
        assert_eq!(train.dim(), 2);
    }

    #[test]
    fn split_is_deterministic() {
        let ds = toy(50);
        let (a1, b1) = ds.split(0.2, 9);
        let (a2, b2) = ds.split(0.2, 9);
        assert_eq!(a1.targets(), a2.targets());
        assert_eq!(b1.features().as_slice(), b2.features().as_slice());
    }

    #[test]
    fn split_differs_across_seeds() {
        let ds = toy(50);
        let (_, b1) = ds.split(0.2, 1);
        let (_, b2) = ds.split(0.2, 2);
        assert_ne!(b1.features().as_slice(), b2.features().as_slice());
    }

    #[test]
    fn batches_cover_dataset_once() {
        let ds = toy(23);
        let batches = ds.batches(5, 3);
        assert_eq!(batches.len(), 5); // 4 full + 1 short
        let total: usize = batches.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total, 23);
        // Every feature row must appear exactly once.
        let mut firsts: Vec<f32> = batches
            .iter()
            .flat_map(|(f, _)| (0..f.rows()).map(|r| f.get(r, 0)).collect::<Vec<_>>())
            .collect();
        firsts.sort_by(f32::total_cmp);
        let expect: Vec<f32> = (0..23).map(|i| i as f32).collect();
        assert_eq!(firsts, expect);
    }

    #[test]
    fn positive_rate() {
        let ds = toy(10);
        assert!((ds.positive_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Dataset::from_rows(&[vec![1.0], vec![1.0, 2.0]], &[0.0, 1.0]);
    }
}

//! # tinynn — a minimal, deterministic neural-network library
//!
//! This crate implements exactly the machine-learning machinery the RTS
//! paper needs, from scratch:
//!
//! * dense (fully connected) layers with ReLU / sigmoid / tanh / identity
//!   activations ([`layer`]),
//! * two-layer perceptron classifiers — the *branching point predictor*
//!   probes of §3.1 of the paper — via the [`mlp::Mlp`] builder,
//! * mini-batch training with SGD+momentum and Adam ([`optim`]),
//! * binary cross-entropy / MSE losses ([`loss`]),
//! * feature standardisation ([`scaler`]),
//! * ranking metrics, most importantly exact AUC ([`metrics`]), which the
//!   paper uses to rank per-layer probes when selecting the top-k layers
//!   for the multi-layer BPP.
//!
//! Everything is `f32`, row-major, allocation-conscious and fully
//! deterministic: all random initialisation and shuffling is driven by an
//! explicit seed.
//!
//! ```
//! use tinynn::mlp::{Mlp, MlpConfig};
//! use tinynn::data::Dataset;
//!
//! // XOR — the classic sanity check for a 2-layer perceptron.
//! let xs = vec![vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]];
//! let ys = vec![0.0, 1.0, 1.0, 0.0];
//! let ds = Dataset::from_rows(&xs, &ys);
//! let mut mlp = Mlp::new(MlpConfig {
//!     input_dim: 2,
//!     hidden_dims: vec![8],
//!     lr: 0.05,
//!     epochs: 800,
//!     batch_size: 4,
//!     seed: 7,
//!     ..MlpConfig::default()
//! });
//! mlp.fit(&ds);
//! assert!(mlp.predict_proba(&[1., 0.]) > 0.5);
//! assert!(mlp.predict_proba(&[1., 1.]) < 0.5);
//! ```

pub mod data;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod optim;
pub mod rng;
pub mod scaler;

pub use data::Dataset;
pub use matrix::Matrix;
pub use metrics::auc;
pub use mlp::{Mlp, MlpConfig, MlpScratch};
pub use scaler::StandardScaler;

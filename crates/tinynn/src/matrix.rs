//! A small row-major `f32` matrix.
//!
//! `tinynn` deliberately avoids a general tensor abstraction: the RTS
//! probes are 2-layer MLPs over hidden-state vectors of dimension ≤ 256,
//! so a plain contiguous `Vec<f32>` with `(rows, cols)` bookkeeping plus a
//! handful of fused kernels (`matmul`, `matmul_at`, `matmul_bt`) is both
//! the simplest and the fastest thing that works.

use crate::rng::SplitMix64;

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialisation: U(−√(6/(fan_in+fan_out)), +…).
    /// This is the standard choice for tanh/sigmoid nets and works well
    /// for the shallow ReLU probes we train.
    pub fn xavier(rows: usize, cols: usize, rng: &mut SplitMix64) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Self::from_fn(rows, cols, |_, _| ((rng.next_f64() * 2.0 - 1.0) * bound) as f32)
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Raw buffer access (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Raw mutable buffer access (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reset to zero without reallocating — used for gradient buffers.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self @ other` → (self.rows × other.cols). Classic ikj loop order so
    /// the inner loop streams both the output row and the rhs row.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue; // ReLU zeros are common; skip dead lanes.
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` without materialising the transpose.
    pub fn matmul_at(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_at shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` without materialising the transpose.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_bt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let dot: f32 = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
                out.set(i, j, dot);
            }
        }
        out
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// `self += alpha * other` (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.data.len(), other.data.len(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Add a row vector (bias) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *x += b;
            }
        }
    }

    /// Column sums — used for bias gradients.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(r).iter()) {
                *s += x;
            }
        }
        sums
    }

    /// Frobenius norm; handy for gradient-explosion assertions in tests.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let id = m(2, 2, &[1., 0., 0., 1.]);
        assert_eq!(a.matmul(&id).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[1., 1., 2., 2., 3., 3.]);
        let at = Matrix::from_fn(2, 3, |r, c| a.get(c, r));
        assert_eq!(a.matmul_at(&b).as_slice(), at.matmul(&b).as_slice());
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(2, 3, &[1., 0., 1., 0., 1., 0.]);
        let bt = Matrix::from_fn(3, 2, |r, c| b.get(c, r));
        assert_eq!(a.matmul_bt(&b).as_slice(), a.matmul(&bt).as_slice());
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = SplitMix64::new(1);
        let w = Matrix::xavier(10, 20, &mut rng);
        let bound = (6.0_f32 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() <= bound + 1e-6));
        // Not all identical (init actually random).
        assert!(w.as_slice().windows(2).any(|p| p[0] != p[1]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}

//! A small row-major `f32` matrix.
//!
//! `tinynn` deliberately avoids a general tensor abstraction: the RTS
//! probes are 2-layer MLPs over hidden-state vectors of dimension ≤ 256,
//! so a plain contiguous `Vec<f32>` with `(rows, cols)` bookkeeping plus a
//! handful of fused kernels (`matmul`, `matmul_at`, `matmul_bt`) is both
//! the simplest and the fastest thing that works.

use crate::rng::SplitMix64;

/// Kernel selection for [`Matrix::matmul_into_hinted`]. `Auto` probes
/// the input's sparsity at runtime; `Dense`/`Sparse` skip the probe
/// when the caller knows the input regime statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulHint {
    Auto,
    Dense,
    Sparse,
}

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialisation: U(−√(6/(fan_in+fan_out)), +…).
    /// This is the standard choice for tanh/sigmoid nets and works well
    /// for the shallow ReLU probes we train.
    pub fn xavier(rows: usize, cols: usize, rng: &mut SplitMix64) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Self::from_fn(rows, cols, |_, _| {
            ((rng.next_f64() * 2.0 - 1.0) * bound) as f32
        })
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Raw buffer access (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Raw mutable buffer access (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reset to zero without reallocating — used for gradient buffers.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Reshape in place to `rows × cols`, zero-filled, reusing the
    /// existing allocation when it is large enough. This is what makes
    /// the `*_into` kernels allocation-free across calls with varying
    /// batch sizes (traces differ in token count).
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape in place to `rows × cols` with **unspecified contents**
    /// (the existing prefix is kept, only a grown tail is zeroed).
    /// For destinations the caller fully overwrites — skips the
    /// whole-buffer zero-fill of [`Matrix::resize_zeroed`], halving
    /// memory traffic on the pack/transform hot paths.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Become a copy of `other`, reusing the existing allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Estimate the zero fraction of the buffer from an evenly strided
    /// sample. Cheap (≤ 128 probes) and good enough to pick a kernel.
    fn sparsity_probe(&self) -> f64 {
        let n = self.data.len();
        if n == 0 {
            return 0.0;
        }
        let samples = n.min(128);
        let stride = n.div_ceil(samples);
        let mut zeros = 0usize;
        let mut seen = 0usize;
        let mut i = 0;
        while i < n && seen < samples {
            if self.data[i] == 0.0 {
                zeros += 1;
            }
            seen += 1;
            i += stride;
        }
        zeros as f64 / seen as f64
    }

    /// Zero fraction above which the dead-lane-skipping kernel wins.
    /// Below it the `a_ik == 0.0` test is a mispredicted branch per
    /// element on dense (e.g. standardised-input) matrices.
    const SPARSE_KERNEL_THRESHOLD: f64 = 0.25;

    /// `self @ other` → (self.rows × other.cols). Allocates the output;
    /// see [`Matrix::matmul_into`] for the allocation-free form.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self @ other` written into `out` (resized as needed, allocation
    /// reused). The kernel is chosen by a sparsity probe of `self`: a
    /// dead-lane-skipping loop when inputs look post-ReLU, a branchless
    /// column-blocked loop when they look dense. Both kernels accumulate
    /// every output element over `k` in ascending order, so results are
    /// identical (up to the sign of exact zeros) whichever is picked.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_into_hinted(other, out, MatmulHint::Auto);
    }

    /// [`Matrix::matmul_into`] with a caller-supplied kernel choice for
    /// call sites that know their input statically (an MLP knows which
    /// layer inputs are post-ReLU), skipping the runtime probe. The
    /// hint affects speed only — both kernels produce the same result.
    pub fn matmul_into_hinted(&self, other: &Matrix, out: &mut Matrix, hint: MatmulHint) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let sparse = match hint {
            MatmulHint::Dense => false,
            MatmulHint::Sparse => true,
            MatmulHint::Auto => self.sparsity_probe() >= Self::SPARSE_KERNEL_THRESHOLD,
        };
        // The dense fixed-width kernels overwrite every output element
        // (register accumulators copied out whole), so they skip the
        // zero-fill; the sparse and generic tiled kernels accumulate
        // into `out` and need zeroed storage.
        let dense_overwrites = !sparse && matches!(other.cols, 1 | 8 | 16 | 32 | 64);
        if dense_overwrites {
            out.resize_for_overwrite(self.rows, other.cols);
        } else {
            out.resize_zeroed(self.rows, other.cols);
        }
        if sparse {
            self.matmul_sparse_kernel(other, out);
        } else {
            self.matmul_dense_kernel(other, out);
        }
    }

    /// ikj loop with the `a_ik == 0.0` skip — wins on post-ReLU inputs
    /// where a large fraction of lanes is dead.
    fn matmul_sparse_kernel(&self, other: &Matrix, out: &mut Matrix) {
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue; // ReLU zeros are common; skip dead lanes.
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
    }

    /// Branchless ikj kernel. The common probe widths get fully
    /// specialised fixed-size register tiles (the whole output row lives
    /// in registers across the `k` loop, and the compiler unrolls and
    /// vectorises the constant-width inner loop); other widths fall back
    /// to an 8-wide tile. All variants accumulate each output element
    /// over `k` in ascending order — identical results.
    fn matmul_dense_kernel(&self, other: &Matrix, out: &mut Matrix) {
        match other.cols {
            1 => self.matmul_dense_width1(other, out),
            8 => self.matmul_dense_fixed::<8>(other, out),
            16 => self.matmul_dense_fixed::<16>(other, out),
            32 => self.matmul_dense_fixed::<32>(other, out),
            64 => self.matmul_dense_fixed::<64>(other, out),
            _ => self.matmul_dense_tiled(other, out),
        }
    }

    /// Output width 1 (the probes' sigmoid head): one ascending-`k` dot
    /// product per row; `other`'s single column is its contiguous data.
    fn matmul_dense_width1(&self, other: &Matrix, out: &mut Matrix) {
        let b = &other.data;
        for i in 0..self.rows {
            let mut acc = 0.0f32;
            for (&a_ik, &bv) in self.row(i).iter().zip(b.iter()) {
                acc += a_ik * bv;
            }
            out.data[i] = acc;
        }
    }

    /// Fixed output width `W`: whole-row register accumulator.
    fn matmul_dense_fixed<const W: usize>(&self, other: &Matrix, out: &mut Matrix) {
        let b = &other.data;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let mut acc = [0.0f32; W];
            for (&a_ik, b_row) in a_row.iter().zip(b.chunks_exact(W)) {
                let b_row: &[f32; W] = b_row.try_into().expect("chunk width");
                for (o, &bv) in acc.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * bv;
                }
            }
            out.row_mut(i).copy_from_slice(&acc);
        }
    }

    /// Generic-width fallback: 8-wide column tiles.
    fn matmul_dense_tiled(&self, other: &Matrix, out: &mut Matrix) {
        const JB: usize = 8;
        let n_cols = other.cols;
        let full_tiles = n_cols / JB;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for jt in 0..full_tiles {
                let j0 = jt * JB;
                let mut acc = [0.0f32; JB];
                for (k, &a_ik) in a_row.iter().enumerate() {
                    let b_row = &other.row(k)[j0..j0 + JB];
                    for (a, &b) in acc.iter_mut().zip(b_row.iter()) {
                        *a += a_ik * b;
                    }
                }
                out_row[j0..j0 + JB].copy_from_slice(&acc);
            }
            let j0 = full_tiles * JB;
            if j0 < n_cols {
                for (k, &a_ik) in a_row.iter().enumerate() {
                    let b_row = &other.row(k)[j0..];
                    for (o, &b) in out_row[j0..].iter_mut().zip(b_row.iter()) {
                        *o += a_ik * b;
                    }
                }
            }
        }
    }

    /// `selfᵀ @ other` without materialising the transpose. The
    /// dead-lane skip is kept only when `self` actually looks sparse
    /// (it is the backward pass's post-ReLU activation matrix there);
    /// on dense inputs the branch is pure overhead.
    pub fn matmul_at(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_at shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let skip_zeros = self.sparsity_probe() >= Self::SPARSE_KERNEL_THRESHOLD;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if skip_zeros && a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` without materialising the transpose.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_bt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let dot: f32 = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
                out.set(i, j, dot);
            }
        }
        out
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// `self += alpha * other` (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.data.len(), other.data.len(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Add a row vector (bias) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *x += b;
            }
        }
    }

    /// Column sums — used for bias gradients.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(r).iter()) {
                *s += x;
            }
        }
        sums
    }

    /// Frobenius norm; handy for gradient-explosion assertions in tests.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let id = m(2, 2, &[1., 0., 0., 1.]);
        assert_eq!(a.matmul(&id).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[1., 1., 2., 2., 3., 3.]);
        let at = Matrix::from_fn(2, 3, |r, c| a.get(c, r));
        assert_eq!(a.matmul_at(&b).as_slice(), at.matmul(&b).as_slice());
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(2, 3, &[1., 0., 1., 0., 1., 0.]);
        let bt = Matrix::from_fn(3, 2, |r, c| b.get(c, r));
        assert_eq!(a.matmul_bt(&b).as_slice(), a.matmul(&bt).as_slice());
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = SplitMix64::new(1);
        let w = Matrix::xavier(10, 20, &mut rng);
        let bound = (6.0_f32 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() <= bound + 1e-6));
        // Not all identical (init actually random).
        assert!(w.as_slice().windows(2).any(|p| p[0] != p[1]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn dense_and_sparse_kernels_agree() {
        let mut rng = SplitMix64::new(9);
        // Mixed sparsity: roughly half the lanes are ReLU-dead.
        for (rows, inner, cols) in [(1, 32, 16), (7, 19, 8), (33, 32, 1), (5, 64, 24)] {
            let a = Matrix::from_fn(rows, inner, |_, _| {
                let v = rng.next_gaussian() as f32;
                if v < 0.0 {
                    0.0
                } else {
                    v
                }
            });
            let b = Matrix::from_fn(inner, cols, |_, _| rng.next_gaussian() as f32);
            let mut dense = Matrix::zeros(rows, cols);
            let mut sparse = Matrix::zeros(rows, cols);
            a.matmul_dense_kernel(&b, &mut dense);
            a.matmul_sparse_kernel(&b, &mut sparse);
            for (d, s) in dense.as_slice().iter().zip(sparse.as_slice()) {
                assert_eq!(d, s, "kernel mismatch at {rows}x{inner}x{cols}");
            }
        }
    }

    #[test]
    fn matmul_into_reuses_buffer_across_shapes() {
        let a1 = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b1 = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let mut out = Matrix::zeros(8, 8); // larger than needed
        a1.matmul_into(&b1, &mut out);
        assert_eq!(out.rows(), 2);
        assert_eq!(out.cols(), 2);
        assert_eq!(out.as_slice(), &[58., 64., 139., 154.]);
        // Shrink/regrow with stale contents present.
        let a2 = m(1, 2, &[1., 1.]);
        let b2 = m(2, 1, &[2., 3.]);
        a2.matmul_into(&b2, &mut out);
        assert_eq!(out.as_slice(), &[5.]);
    }

    #[test]
    fn sparsity_probe_distinguishes_regimes() {
        let dense = Matrix::from_fn(10, 10, |r, c| (r * 10 + c) as f32 + 1.0);
        assert!(dense.sparsity_probe() < Matrix::SPARSE_KERNEL_THRESHOLD);
        let sparse = Matrix::from_fn(10, 10, |r, _| if r % 2 == 0 { 0.0 } else { 1.0 });
        assert!(sparse.sparsity_probe() >= Matrix::SPARSE_KERNEL_THRESHOLD);
    }
}

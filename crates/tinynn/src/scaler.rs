//! Feature standardisation.
//!
//! Hidden-state magnitudes grow with layer depth in the simulated LLM
//! (residual accumulation), so each per-layer probe standardises its
//! inputs with statistics estimated on its own training split. The same
//! scaler is then applied to calibration and test points, which keeps the
//! exchangeability assumption of conformal prediction intact (the scaler
//! is part of the fixed predictor, not fitted on calibration data).

use serde::{Deserialize, Serialize};

/// Per-feature mean/std standardiser: `x' = (x - mean) · (1/std)`.
/// Only the reciprocal is stored — multiplication is several times
/// cheaper than division on the per-token monitoring hot path, and the
/// std itself is derivable when needed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f32>,
    inv_std: Vec<f32>,
}

impl StandardScaler {
    /// Estimate means and standard deviations from row-major samples.
    /// Features with (near-)zero variance get std 1 so they pass through
    /// centred but unscaled.
    pub fn fit(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "cannot fit scaler on empty data");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0_f64; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "ragged rows");
            for (m, &x) in mean.iter_mut().zip(row.iter()) {
                *m += x as f64;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut var = vec![0.0_f64; dim];
        for row in rows {
            for ((v, &x), &m) in var.iter_mut().zip(row.iter()).zip(mean.iter()) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let inv_std: Vec<f32> = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-8 {
                    1.0
                } else {
                    1.0 / s as f32
                }
            })
            .collect();
        Self {
            mean: mean.into_iter().map(|m| m as f32).collect(),
            inv_std,
        }
    }

    /// Dimensionality this scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardise one row into a fresh vector.
    pub fn transform(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.dim(), "dimension mismatch");
        row.iter()
            .zip(self.mean.iter().zip(self.inv_std.iter()))
            .map(|(&x, (&m, &inv))| (x - m) * inv)
            .collect()
    }

    /// Standardise in place.
    pub fn transform_inplace(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.dim(), "dimension mismatch");
        for (x, (&m, &inv)) in row
            .iter_mut()
            .zip(self.mean.iter().zip(self.inv_std.iter()))
        {
            *x = (*x - m) * inv;
        }
    }

    /// Standardise every row of a matrix into a fresh matrix.
    pub fn transform_batch(&self, rows: &crate::matrix::Matrix) -> crate::matrix::Matrix {
        let mut out = crate::matrix::Matrix::zeros(rows.rows(), rows.cols());
        self.transform_batch_into(rows, &mut out);
        out
    }

    /// Standardise every row of a matrix into `out` (allocation reused).
    /// Element-for-element the same arithmetic as [`Self::transform`],
    /// so batched and per-row paths produce bit-identical results.
    pub fn transform_batch_into(
        &self,
        rows: &crate::matrix::Matrix,
        out: &mut crate::matrix::Matrix,
    ) {
        assert_eq!(rows.cols(), self.dim(), "dimension mismatch");
        // Every element is overwritten below; no zero-fill needed.
        out.resize_for_overwrite(rows.rows(), rows.cols());
        let dim = self.dim();
        let src = rows.as_slice();
        let dst = out.as_mut_slice();
        for (src_row, dst_row) in src.chunks_exact(dim).zip(dst.chunks_exact_mut(dim)) {
            for ((d, &x), (&m, &inv)) in dst_row
                .iter_mut()
                .zip(src_row.iter())
                .zip(self.mean.iter().zip(self.inv_std.iter()))
            {
                *d = (x - m) * inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_transform_has_zero_mean_unit_std() {
        let raw: Vec<Vec<f32>> = (0..100)
            .map(|i| vec![i as f32, 100.0 + 3.0 * i as f32])
            .collect();
        let refs: Vec<&[f32]> = raw.iter().map(|r| r.as_slice()).collect();
        let scaler = StandardScaler::fit(&refs);
        let transformed: Vec<Vec<f32>> = raw.iter().map(|r| scaler.transform(r)).collect();
        for d in 0..2 {
            let mean: f32 = transformed.iter().map(|r| r[d]).sum::<f32>() / 100.0;
            let var: f32 = transformed
                .iter()
                .map(|r| (r[d] - mean).powi(2))
                .sum::<f32>()
                / 100.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn constant_feature_passes_through_centred() {
        let raw = [[5.0_f32, 1.0], [5.0, 2.0], [5.0, 3.0]];
        let refs: Vec<&[f32]> = raw.iter().map(|r| r.as_slice()).collect();
        let scaler = StandardScaler::fit(&refs);
        let t = scaler.transform(&raw[0]);
        assert_eq!(t[0], 0.0);
        assert!(t[0].is_finite() && t[1].is_finite());
    }

    #[test]
    fn batch_transform_matches_per_row_bitwise() {
        let raw: Vec<Vec<f32>> = (0..17)
            .map(|i| vec![i as f32 * 0.37, 5.0 - i as f32, (i * i) as f32])
            .collect();
        let refs: Vec<&[f32]> = raw.iter().map(|r| r.as_slice()).collect();
        let scaler = StandardScaler::fit(&refs);
        let m = crate::matrix::Matrix::from_fn(raw.len(), 3, |r, c| raw[r][c]);
        let mut out = crate::matrix::Matrix::zeros(1, 1);
        scaler.transform_batch_into(&m, &mut out);
        for (i, row) in raw.iter().enumerate() {
            let single = scaler.transform(row);
            assert_eq!(out.row(i), single.as_slice(), "row {i}");
        }
        // And the allocating variant agrees.
        assert_eq!(scaler.transform_batch(&m).as_slice(), out.as_slice());
    }

    #[test]
    fn inplace_matches_allocating() {
        let raw = [[1.0_f32, 2.0], [3.0, 4.0], [5.0, 6.0]];
        let refs: Vec<&[f32]> = raw.iter().map(|r| r.as_slice()).collect();
        let scaler = StandardScaler::fit(&refs);
        let mut row = raw[1];
        scaler.transform_inplace(&mut row);
        assert_eq!(row.to_vec(), scaler.transform(&raw[1]));
    }
}

//! Dense layers and activations with manual backpropagation.

use crate::matrix::Matrix;
use crate::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// 1 / (1 + e^{-x})
    Sigmoid,
    /// tanh(x)
    Tanh,
    /// x (no non-linearity — used for the output layer before the loss)
    Identity,
}

impl Activation {
    /// Apply the activation in place.
    pub fn forward(self, m: &mut Matrix) {
        match self {
            Activation::Relu => m.map_inplace(|x| if x > 0.0 { x } else { 0.0 }),
            Activation::Sigmoid => m.map_inplace(sigmoid),
            Activation::Tanh => m.map_inplace(|x| x.tanh()),
            Activation::Identity => {}
        }
    }

    /// Multiply `grad` by the activation derivative evaluated at the
    /// *post-activation* values `out` (all four activations here admit a
    /// derivative expressed in terms of their output).
    pub fn backward(self, grad: &mut Matrix, out: &Matrix) {
        match self {
            Activation::Relu => {
                for (g, &o) in grad.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    if o <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for (g, &o) in grad.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    *g *= o * (1.0 - o);
                }
            }
            Activation::Tanh => {
                for (g, &o) in grad.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    *g *= 1.0 - o * o;
                }
            }
            Activation::Identity => {}
        }
    }
}

/// Numerically stable logistic function.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// A fully connected layer `y = act(x W + b)`.
///
/// Stores its last input and output so that [`Dense::backward`] can be
/// called immediately after [`Dense::forward`] (the usual training loop
/// shape). Weight gradients are accumulated into `grad_w` / `grad_b` and
/// consumed by an optimiser.
#[derive(Debug, Clone)]
pub struct Dense {
    pub w: Matrix,
    pub b: Vec<f32>,
    pub act: Activation,
    pub grad_w: Matrix,
    pub grad_b: Vec<f32>,
    last_input: Option<Matrix>,
    last_output: Option<Matrix>,
}

impl Dense {
    /// New layer with Xavier-initialised weights and zero bias.
    pub fn new(input_dim: usize, output_dim: usize, act: Activation, rng: &mut SplitMix64) -> Self {
        Self {
            w: Matrix::xavier(input_dim, output_dim, rng),
            b: vec![0.0; output_dim],
            act,
            grad_w: Matrix::zeros(input_dim, output_dim),
            grad_b: vec![0.0; output_dim],
            last_input: None,
            last_output: None,
        }
    }

    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass for a batch (rows = samples). Caches activations when
    /// `train` is set so a subsequent backward pass can use them.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut out = x.matmul(&self.w);
        out.add_row_broadcast(&self.b);
        self.act.forward(&mut out);
        if train {
            self.last_input = Some(x.clone());
            self.last_output = Some(out.clone());
        }
        out
    }

    /// Backward pass. `grad_out` is ∂L/∂y for this layer's output; returns
    /// ∂L/∂x for the layer below. Accumulates weight/bias gradients.
    pub fn backward(&mut self, mut grad_out: Matrix) -> Matrix {
        let out = self
            .last_output
            .as_ref()
            .expect("backward called without a cached forward pass");
        let input = self
            .last_input
            .as_ref()
            .expect("backward called without a cached forward pass");
        self.act.backward(&mut grad_out, out);
        // dW = xᵀ (dL/dz); db = column sums of dL/dz; dx = (dL/dz) Wᵀ
        let gw = input.matmul_at(&grad_out);
        self.grad_w.add_scaled(&gw, 1.0);
        for (gb, s) in self.grad_b.iter_mut().zip(grad_out.col_sums()) {
            *gb += s;
        }
        grad_out.matmul_bt(&self.w)
    }

    /// Clear accumulated gradients (call once per optimiser step).
    pub fn zero_grad(&mut self) {
        self.grad_w.fill_zero();
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-5);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(-100.0) < 1e-6);
    }

    #[test]
    fn relu_forward_backward() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        Activation::Relu.forward(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
        let mut g = Matrix::from_vec(1, 4, vec![1.0; 4]);
        Activation::Relu.backward(&mut g, &m);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    /// Finite-difference check of the dense-layer gradient: the analytic
    /// gradient from backprop must match (L(w+h) − L(w−h)) / 2h for a
    /// scalar loss L = Σ y².
    #[test]
    fn dense_gradient_matches_finite_difference() {
        let mut rng = SplitMix64::new(42);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.3, -0.2, 0.5, 0.1, 0.8, -0.4]);

        // Analytic gradient of L = sum(y^2): dL/dy = 2y.
        let y = layer.forward(&x, true);
        let grad_out = Matrix::from_fn(2, 2, |r, c| 2.0 * y.get(r, c));
        layer.zero_grad();
        let _ = layer.backward(grad_out);

        let h = 1e-3_f32;
        for r in 0..3 {
            for c in 0..2 {
                let orig = layer.w.get(r, c);
                layer.w.set(r, c, orig + h);
                let yp = layer.forward(&x, false);
                let lp: f32 = yp.as_slice().iter().map(|v| v * v).sum();
                layer.w.set(r, c, orig - h);
                let ym = layer.forward(&x, false);
                let lm: f32 = ym.as_slice().iter().map(|v| v * v).sum();
                layer.w.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * h);
                let analytic = layer.grad_w.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 2e-2,
                    "grad mismatch at ({r},{c}): numeric {numeric}, analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn backward_panics_without_forward() {
        let mut rng = SplitMix64::new(1);
        let mut layer = Dense::new(2, 2, Activation::Relu, &mut rng);
        let g = Matrix::zeros(1, 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            layer.backward(g);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn param_count() {
        let mut rng = SplitMix64::new(1);
        let layer = Dense::new(10, 5, Activation::Relu, &mut rng);
        assert_eq!(layer.param_count(), 55);
    }
}

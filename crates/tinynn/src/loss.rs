//! Loss functions.
//!
//! The BPP probes are binary classifiers trained with (optionally
//! class-weighted) binary cross-entropy. Branching points are rare —
//! roughly one token in thirty in an erroneous generation, and none in a
//! correct one — so a positive-class weight is essential for the probes to
//! learn anything but the majority class.

use crate::matrix::Matrix;

/// Binary cross-entropy over sigmoid outputs.
///
/// `pos_weight` scales the loss (and gradient) of positive examples; 1.0
/// recovers plain BCE. Returns the mean loss; writes ∂L/∂p into `grad`.
pub fn bce_with_grad(probs: &Matrix, targets: &[f32], pos_weight: f32, grad: &mut Matrix) -> f32 {
    assert_eq!(probs.rows(), targets.len(), "target length mismatch");
    assert_eq!(
        probs.cols(),
        1,
        "binary loss expects a single output column"
    );
    let n = targets.len() as f32;
    let eps = 1e-7_f32;
    let mut total = 0.0;
    for (i, &t) in targets.iter().enumerate() {
        let p = probs.get(i, 0).clamp(eps, 1.0 - eps);
        let w = if t > 0.5 { pos_weight } else { 1.0 };
        total += -w * (t * p.ln() + (1.0 - t) * (1.0 - p).ln());
        // d/dp of the weighted BCE, averaged over the batch.
        grad.set(i, 0, w * ((p - t) / (p * (1.0 - p))) / n);
    }
    total / n
}

/// Mean squared error. Writes ∂L/∂y into `grad`. Used by regression-style
/// tests and for the calibration-curve smoother.
pub fn mse_with_grad(preds: &Matrix, targets: &[f32], grad: &mut Matrix) -> f32 {
    assert_eq!(preds.rows(), targets.len(), "target length mismatch");
    assert_eq!(preds.cols(), 1, "mse expects a single output column");
    let n = targets.len() as f32;
    let mut total = 0.0;
    for (i, &t) in targets.iter().enumerate() {
        let d = preds.get(i, 0) - t;
        total += d * d;
        grad.set(i, 0, 2.0 * d / n);
    }
    total / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_perfect_prediction_is_near_zero() {
        let probs = Matrix::from_vec(2, 1, vec![0.9999, 0.0001]);
        let mut grad = Matrix::zeros(2, 1);
        let loss = bce_with_grad(&probs, &[1.0, 0.0], 1.0, &mut grad);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn bce_wrong_prediction_is_large() {
        let probs = Matrix::from_vec(1, 1, vec![0.01]);
        let mut grad = Matrix::zeros(1, 1);
        let loss = bce_with_grad(&probs, &[1.0], 1.0, &mut grad);
        assert!(loss > 4.0, "loss {loss}");
        // Gradient pushes the probability up (negative dL/dp).
        assert!(grad.get(0, 0) < 0.0);
    }

    #[test]
    fn bce_pos_weight_scales_positive_loss() {
        let probs = Matrix::from_vec(1, 1, vec![0.5]);
        let mut g1 = Matrix::zeros(1, 1);
        let mut g5 = Matrix::zeros(1, 1);
        let l1 = bce_with_grad(&probs, &[1.0], 1.0, &mut g1);
        let l5 = bce_with_grad(&probs, &[1.0], 5.0, &mut g5);
        assert!((l5 / l1 - 5.0).abs() < 1e-4);
        assert!((g5.get(0, 0) / g1.get(0, 0) - 5.0).abs() < 1e-4);
    }

    #[test]
    fn bce_pos_weight_leaves_negatives_untouched() {
        let probs = Matrix::from_vec(1, 1, vec![0.5]);
        let mut g1 = Matrix::zeros(1, 1);
        let mut g5 = Matrix::zeros(1, 1);
        let l1 = bce_with_grad(&probs, &[0.0], 1.0, &mut g1);
        let l5 = bce_with_grad(&probs, &[0.0], 5.0, &mut g5);
        assert!((l1 - l5).abs() < 1e-6);
    }

    #[test]
    fn mse_basics() {
        let preds = Matrix::from_vec(2, 1, vec![1.0, 3.0]);
        let mut grad = Matrix::zeros(2, 1);
        let loss = mse_with_grad(&preds, &[0.0, 3.0], &mut grad);
        assert!((loss - 0.5).abs() < 1e-6);
        assert!((grad.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(grad.get(1, 0), 0.0);
    }
}

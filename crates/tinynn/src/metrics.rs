//! Classification metrics: AUC, accuracy, precision/recall/F1, Brier.
//!
//! AUC is the metric the paper uses to (a) report sBPP quality (Table 3)
//! and (b) rank per-layer probes when picking the top-k layers for mBPP,
//! so the implementation here is the exact rank-statistic (Mann–Whitney)
//! form with proper tie handling, not a trapezoid approximation.

/// Area under the ROC curve via the Mann–Whitney U statistic with midrank
/// tie correction. `scores` are arbitrary reals (higher = more positive),
/// `labels` are booleans. Returns 0.5 for degenerate one-class inputs so
/// callers can treat "no signal measurable" uniformly.
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort indices by score; assign midranks to ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0_f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // ranks are 1-based; tied block [i, j] shares the midrank.
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(ranks.iter())
        .filter_map(|(&l, &r)| if l { Some(r) } else { None })
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Binary classification counts at a threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions (`score >= threshold` ⇒ positive).
    pub fn from_scores(scores: &[f64], labels: &[bool], threshold: f64) -> Self {
        assert_eq!(scores.len(), labels.len());
        let mut c = Confusion::default();
        for (&s, &l) in scores.iter().zip(labels) {
            match (s >= threshold, l) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Brier score: mean squared error between probabilities and outcomes.
/// Lower is better; 0.25 is the score of a constant 0.5 forecaster.
pub fn brier(probs: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    probs
        .iter()
        .zip(labels)
        .map(|(&p, &l)| {
            let y = if l { 1.0 } else { 0.0 };
            (p - y) * (p - y)
        })
        .sum::<f64>()
        / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(auc(&scores, &labels), 1.0);
    }

    #[test]
    fn auc_perfect_inversion() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        assert_eq!(auc(&scores, &labels), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // All scores tied → AUC must be exactly 0.5 via midranks.
        let scores = [0.5; 10];
        let labels = [
            true, false, true, false, true, false, true, false, true, false,
        ];
        assert_eq!(auc(&scores, &labels), 0.5);
    }

    #[test]
    fn auc_handles_partial_ties() {
        let scores = [0.1, 0.5, 0.5, 0.9];
        let labels = [false, false, true, true];
        // Pairs: (0.5,0.1)✓ (0.5,0.5)=½ (0.9,0.1)✓ (0.9,0.5)✓ → (3+0.5)/4
        assert!((auc(&scores, &labels) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[false, false]), 0.5);
    }

    #[test]
    fn confusion_counts() {
        let scores = [0.9, 0.8, 0.3, 0.2];
        let labels = [true, false, true, false];
        let c = Confusion::from_scores(&scores, &labels, 0.5);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((c.accuracy() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn brier_bounds() {
        assert_eq!(brier(&[1.0, 0.0], &[true, false]), 0.0);
        assert_eq!(brier(&[0.0, 1.0], &[true, false]), 1.0);
        assert!((brier(&[0.5, 0.5], &[true, false]) - 0.25).abs() < 1e-12);
    }
}

//! Optimisers: SGD with momentum and Adam.
//!
//! Both operate on flat `(weights, grads)` slices so the same code path
//! serves matrices and bias vectors.

use serde::{Deserialize, Serialize};

/// Optimiser selection + hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum OptimKind {
    /// Stochastic gradient descent with momentum (0.0 = vanilla SGD).
    Sgd { momentum: f32 },
    /// Adam (Kingma & Ba 2015) with the usual β₁/β₂/ε defaults.
    Adam { beta1: f32, beta2: f32, eps: f32 },
}

impl Default for OptimKind {
    fn default() -> Self {
        OptimKind::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Per-parameter-tensor optimiser state.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimKind,
    lr: f32,
    weight_decay: f32,
    /// First-moment (momentum) buffer.
    m: Vec<f32>,
    /// Second-moment buffer (Adam only).
    v: Vec<f32>,
    /// Step counter for Adam bias correction.
    t: u64,
}

impl Optimizer {
    /// Create optimiser state for a parameter tensor of `len` scalars.
    pub fn new(kind: OptimKind, lr: f32, weight_decay: f32, len: usize) -> Self {
        let v_len = match kind {
            OptimKind::Sgd { .. } => 0,
            OptimKind::Adam { .. } => len,
        };
        Self {
            kind,
            lr,
            weight_decay,
            m: vec![0.0; len],
            v: vec![0.0; v_len],
            t: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Override the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update step: `params -= update(grads)`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        assert_eq!(
            params.len(),
            self.m.len(),
            "optimizer state length mismatch"
        );
        self.t += 1;
        match self.kind {
            OptimKind::Sgd { momentum } => {
                for i in 0..params.len() {
                    let g = grads[i] + self.weight_decay * params[i];
                    self.m[i] = momentum * self.m[i] + g;
                    params[i] -= self.lr * self.m[i];
                }
            }
            OptimKind::Adam { beta1, beta2, eps } => {
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                for i in 0..params.len() {
                    let g = grads[i] + self.weight_decay * params[i];
                    self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
                    self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
                    let m_hat = self.m[i] / bc1;
                    let v_hat = self.v[i] / bc2;
                    params[i] -= self.lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x-3)² with each optimiser; both must converge.
    fn run(kind: OptimKind, lr: f32, steps: usize) -> f32 {
        let mut x = vec![0.0_f32];
        let mut opt = Optimizer::new(kind, lr, 0.0, 1);
        for _ in 0..steps {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run(OptimKind::Sgd { momentum: 0.0 }, 0.1, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let x = run(OptimKind::Sgd { momentum: 0.9 }, 0.02, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run(OptimKind::default(), 0.1, 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn weight_decay_shrinks_toward_zero() {
        // Pure decay: zero task gradient, nonzero weight decay.
        let mut x = vec![5.0_f32];
        let mut opt = Optimizer::new(OptimKind::Sgd { momentum: 0.0 }, 0.1, 0.5, 1);
        for _ in 0..100 {
            opt.step(&mut x, &[0.0]);
        }
        assert!(x[0].abs() < 0.1, "x = {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Optimizer::new(OptimKind::default(), 0.1, 0.0, 2);
        let mut p = vec![0.0; 2];
        opt.step(&mut p, &[0.0]);
    }
}

//! Small deterministic random-number utilities.
//!
//! `tinynn` (and the crates above it) must be bit-for-bit reproducible for
//! a given seed, so all stochastic choices flow through either
//! `rand::rngs::StdRng` seeded explicitly, or — on hot paths where we
//! want a tiny, inlineable generator — the [`SplitMix64`] implemented
//! here. SplitMix64 is the statistically solid 64-bit mixer from Steele,
//! Lea & Flood (OOPSLA'14); it is also what `rand` itself uses to seed
//! larger generators.

/// A 64-bit SplitMix generator. One `u64` of state, passes BigCrush when
/// used as a stream, and is ideal for deriving per-entity deterministic
/// pseudo-randomness from stable identifiers (hashes of names, positions,
/// seeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw generator state. `SplitMix64::new(rng.state())` rebuilds
    /// a generator whose future output is identical — the whole state is
    /// one `u64`, which is what lets suspended linking sessions
    /// checkpoint their merge RNG to disk and resume bit-exactly.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "next_below(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-53 for the
        // n values used in this workspace (all far below 2^32).
        (self.next_f64() * n as f64) as usize
    }

    /// Standard normal via Box–Muller. Two uniforms per call; the second
    /// variate is discarded. Kept byte-for-byte as-is because frozen
    /// streams are pinned to this consumption pattern under the
    /// workspace's corpus-version contract (`simlm::CorpusVersion`):
    /// the archived v1 hidden-state corpus (`results/v1/*.json`),
    /// probe training, and every corpus-shared stream (decisions,
    /// s-signal, softmax) consume it sequentially. The v2 synthesis
    /// streams were re-keyed onto [`SplitMix64::fill_gaussian`], which
    /// keeps both variates and wastes nothing — new bulk streams
    /// should start there; moving an existing stream means minting a
    /// new corpus version, never editing this sampler.
    #[inline]
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Both Box–Muller variates from one pair of uniforms. The first
    /// element is exactly what [`SplitMix64::next_gaussian`] returns
    /// from the same state (and both consume two uniforms), so taking
    /// `.0` is stream-compatible with the sequential sampler; the
    /// second element is the `r·sin θ` twin that `next_gaussian`
    /// throws away.
    #[inline]
    pub fn next_gaussian_pair(&mut self) -> (f64, f64) {
        // Avoid ln(0).
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }

    /// Fill `out` with standard normals using both Box–Muller variates:
    /// two uniforms per *two* outputs instead of the two-per-one of
    /// repeated [`SplitMix64::next_gaussian`] calls — half the RNG
    /// draws and half the `ln`/`sqrt` evaluations for bulk synthesis.
    ///
    /// The resulting stream is NOT the same as `n` sequential
    /// `next_gaussian` calls (those discard every `sin` twin), so this
    /// must only be used where no consumer depends on the legacy
    /// stream.
    #[inline]
    pub fn fill_gaussian(&mut self, out: &mut [f64]) {
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            let (a, b) = self.next_gaussian_pair();
            pair[0] = a;
            pair[1] = b;
        }
        if let [last] = chunks.into_remainder() {
            *last = self.next_gaussian();
        }
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derive an independent child generator. Mixing the child index with
    /// a large odd constant keeps sibling streams decorrelated.
    #[inline]
    pub fn fork(&mut self, salt: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

/// Stable 64-bit hash of a byte string (FNV-1a folded through SplitMix).
/// Used to derive deterministic pseudo-randomness from names: the same
/// table/column/question name always maps to the same latent draws, which
/// keeps whole-dataset regeneration stable across runs and platforms.
#[inline]
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // One SplitMix finalisation round to spread low-entropy inputs.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fisher–Yates shuffle driven by a [`SplitMix64`].
pub fn shuffle<T>(items: &mut [T], rng: &mut SplitMix64) {
    for i in (1..items.len()).rev() {
        let j = rng.next_below(i + 1);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrips_mid_stream() {
        let mut a = SplitMix64::new(77);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = SplitMix64::new(a.state());
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SplitMix64::new(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SplitMix64::new(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_pair_first_matches_sequential_sampler() {
        // The pair sampler is a strict extension of `next_gaussian`:
        // same uniforms consumed, same first variate, same state after.
        let mut a = SplitMix64::new(99);
        let mut b = a;
        for _ in 0..200 {
            let lone = a.next_gaussian();
            let (first, second) = b.next_gaussian_pair();
            assert_eq!(lone.to_bits(), first.to_bits());
            assert_eq!(a, b, "pair call consumed a different uniform count");
            assert!(second.is_finite());
        }
    }

    #[test]
    fn gaussian_pair_second_variate_is_standard_normal() {
        // The recovered `sin` twin must be N(0,1) too — the whole point
        // of not discarding it.
        let mut rng = SplitMix64::new(21);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_gaussian_pair().1).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fill_gaussian_matches_pair_stream_and_halves_draws() {
        let mut filled = SplitMix64::new(5);
        let mut paired = SplitMix64::new(5);
        let mut buf = [0.0f64; 33]; // odd length exercises the tail
        filled.fill_gaussian(&mut buf);
        for pair in buf.chunks_exact(2) {
            let (a, b) = paired.next_gaussian_pair();
            assert_eq!(pair[0].to_bits(), a.to_bits());
            assert_eq!(pair[1].to_bits(), b.to_bits());
        }
        // Odd tail falls back to the sequential sampler.
        assert_eq!(buf[32].to_bits(), paired.next_gaussian().to_bits());
        assert_eq!(filled, paired);
        // 33 outputs cost 17 pairs of uniforms (16 full + 1 tail), vs 33
        // pairs for the sequential sampler.
        let mut counter = SplitMix64::new(5);
        for _ in 0..34 {
            counter.next_u64();
        }
        assert_eq!(filled, counter, "fill consumed an unexpected draw count");
    }

    #[test]
    fn fill_gaussian_moments() {
        let mut rng = SplitMix64::new(17);
        let mut xs = vec![0.0f64; 50_000];
        rng.fill_gaussian(&mut xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        // Adjacent cos/sin twins share a radius but must be linearly
        // uncorrelated.
        let corr: f64 = xs.chunks_exact(2).map(|p| p[0] * p[1]).sum::<f64>() / (n / 2.0);
        assert!(corr.abs() < 0.05, "pair correlation {corr}");
    }

    #[test]
    fn next_below_covers_range() {
        let mut rng = SplitMix64::new(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.next_below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stable_hash_is_stable_and_spread() {
        assert_eq!(stable_hash(b"races"), stable_hash(b"races"));
        assert_ne!(stable_hash(b"races"), stable_hash(b"race"));
        assert_ne!(stable_hash(b""), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = SplitMix64::new(9);
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input ordered");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SplitMix64::new(123);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let matches = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(matches, 0);
    }
}

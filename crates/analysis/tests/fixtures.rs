//! Fixture tests: each pass runs over a known-bad and a waived
//! example, asserting exact finding counts, kinds, spans, and waiver
//! handling — and that stripping any waiver turns the run red.

use rts_analysis::{analyze, FileSpec, PassSet, Report};

const PANIC: PassSet = PassSet {
    panic: true,
    determinism: false,
    corpus: false,
    locks: false,
    std_sync: false,
    unsafety: false,
};
const DETERMINISM: PassSet = PassSet {
    panic: false,
    determinism: true,
    corpus: false,
    locks: false,
    std_sync: false,
    unsafety: false,
};
const CORPUS: PassSet = PassSet {
    panic: false,
    determinism: false,
    corpus: true,
    locks: false,
    std_sync: false,
    unsafety: false,
};
const LOCKS: PassSet = PassSet {
    panic: false,
    determinism: false,
    corpus: false,
    locks: true,
    std_sync: false,
    unsafety: false,
};
const SHIM: PassSet = PassSet {
    panic: false,
    determinism: false,
    corpus: false,
    locks: false,
    std_sync: true,
    unsafety: true,
};

fn run(name: &str, src: &str, passes: PassSet) -> Report {
    analyze(&[FileSpec {
        label: name.to_string(),
        src: src.to_string(),
        passes,
    }])
}

/// (kind, line) pairs of all findings, in report order.
fn spans(r: &Report) -> Vec<(&str, u32)> {
    r.findings.iter().map(|f| (f.kind, f.line)).collect()
}

/// Disable every `rts-allow` annotation in a source text without
/// moving any line numbers.
fn strip_waivers(src: &str) -> String {
    src.replace("rts-allow(", "rts-off(")
}

#[test]
fn panic_bad_finds_every_kind_at_exact_spans() {
    let r = run("panic_bad.rs", include_str!("fixtures/panic_bad.rs"), PANIC);
    assert_eq!(
        spans(&r),
        vec![
            ("unwrap", 4),
            ("expect", 5),
            ("panic-macro", 7),
            ("panic-macro", 10),
            ("panic-macro", 11),
            ("slice-index", 14),
        ]
    );
    assert_eq!(r.unwaived_count(), 6, "cfg(test) unwraps must not leak in");
    assert_eq!(r.exit_code(), 1);
}

#[test]
fn panic_waivers_cover_trailing_and_preceding_placement() {
    let src = include_str!("fixtures/panic_waived.rs");
    let r = run("panic_waived.rs", src, PANIC);
    assert_eq!(r.findings.len(), 4);
    assert_eq!(r.waived_count(), 3);
    assert_eq!(r.unwaived_count(), 1, "empty-reason waiver must not waive");
    let red: Vec<_> = r.unwaived().collect();
    assert_eq!(red[0].line, 16);
    assert!(
        red[0].message.contains("missing its reason"),
        "the report must say why the annotation did not count: {}",
        red[0].message
    );
    // Deleting the waivers turns every finding red.
    let stripped = run("panic_waived.rs", &strip_waivers(src), PANIC);
    assert_eq!(stripped.unwaived_count(), 4);
    assert_eq!(stripped.exit_code(), 1);
}

#[test]
fn determinism_bad_flags_clock_and_hash_iteration() {
    let r = run(
        "determinism_bad.rs",
        include_str!("fixtures/determinism_bad.rs"),
        DETERMINISM,
    );
    assert_eq!(
        spans(&r),
        vec![
            ("clock", 10),
            ("clock", 11),
            ("hash-iter", 12),
            ("hash-iter", 13),
            ("hash-iter", 17),
        ]
    );
    assert_eq!(r.unwaived_count(), 5);
}

#[test]
fn determinism_waivers_are_key_checked() {
    let src = include_str!("fixtures/determinism_waived.rs");
    let r = run("determinism_waived.rs", src, DETERMINISM);
    assert_eq!(r.findings.len(), 3);
    assert_eq!(r.waived_count(), 2);
    let red: Vec<_> = r.unwaived().collect();
    assert_eq!(
        (red[0].kind, red[0].line),
        ("clock", 19),
        "an iter-order waiver must not cover a clock finding"
    );
    let stripped = run("determinism_waived.rs", &strip_waivers(src), DETERMINISM);
    assert_eq!(stripped.unwaived_count(), 3);
}

#[test]
fn corpus_bad_flags_only_sequential_sampling() {
    let r = run(
        "corpus_bad.rs",
        include_str!("fixtures/corpus_bad.rs"),
        CORPUS,
    );
    // fill_gaussian and next_gaussian_pair are corpus-v2-clean; only
    // the two lone next_gaussian() calls trip the pass.
    assert_eq!(
        spans(&r),
        vec![("sequential-sampler", 8), ("sequential-sampler", 9)]
    );
    assert_eq!(r.unwaived_count(), 2);
    assert_eq!(r.exit_code(), 1);
}

#[test]
fn corpus_waivers_are_key_checked() {
    let src = include_str!("fixtures/corpus_waived.rs");
    let r = run("corpus_waived.rs", src, CORPUS);
    assert_eq!(r.findings.len(), 3);
    assert_eq!(r.waived_count(), 2, "above-line and trailing placements");
    let red: Vec<_> = r.unwaived().collect();
    assert_eq!(
        (red[0].kind, red[0].line),
        ("sequential-sampler", 15),
        "an iter-order waiver must not cover a corpus finding"
    );
    let stripped = run("corpus_waived.rs", &strip_waivers(src), CORPUS);
    assert_eq!(stripped.unwaived_count(), 3);
    assert_eq!(stripped.exit_code(), 1);
}

#[test]
fn lock_pass_finds_cycle_wait_and_relock() {
    let r = run("locks_bad.rs", include_str!("fixtures/locks_bad.rs"), LOCKS);
    let mut kinds: Vec<&str> = r.findings.iter().map(|f| f.kind).collect();
    kinds.sort_unstable();
    assert_eq!(
        kinds,
        vec![
            "lock-cycle",
            "lock-cycle",
            "lock-cycle",
            "lock-relock",
            "wait-holds-other-lock",
        ]
    );
    let wait = r
        .findings
        .iter()
        .find(|f| f.kind == "wait-holds-other-lock")
        .unwrap();
    assert_eq!(wait.line, 25);
    assert!(wait.message.contains('b') && wait.message.contains('a'));
    let relock = r.findings.iter().find(|f| f.kind == "lock-relock").unwrap();
    assert_eq!(relock.line, 30);
    // The statement-scoped chained locks contribute no edges: every
    // cycle finding sits on the held-guard lines.
    for f in r.findings.iter().filter(|f| f.kind == "lock-cycle") {
        assert!(
            [13, 19, 24].contains(&f.line),
            "unexpected edge at {}",
            f.line
        );
    }
}

#[test]
fn waiving_the_closing_edge_breaks_the_cycle() {
    let src = include_str!("fixtures/locks_waived.rs");
    let r = run("locks_waived.rs", src, LOCKS);
    assert_eq!(r.findings.len(), 0, "waived edge leaves an acyclic graph");
    assert_eq!(r.exit_code(), 0);
    let stripped = run("locks_waived.rs", &strip_waivers(src), LOCKS);
    assert_eq!(stripped.unwaived_count(), 2, "both edges now close a cycle");
    assert_eq!(stripped.exit_code(), 1);
}

#[test]
fn shim_pass_flags_std_sync_and_uncommented_unsafe() {
    let r = run("shim_bad.rs", include_str!("fixtures/shim_bad.rs"), SHIM);
    assert_eq!(
        spans(&r),
        vec![("std-sync", 4), ("std-sync", 4), ("unsafe-no-safety", 12),]
    );
    assert_eq!(r.unwaived_count(), 3);
}

#[test]
fn shim_waivers_and_safety_comments_start_green() {
    let src = include_str!("fixtures/shim_waived.rs");
    let r = run("shim_waived.rs", src, SHIM);
    assert_eq!(r.findings.len(), 1);
    assert_eq!(r.waived_count(), 1);
    assert_eq!(r.exit_code(), 0);
    // Stripping the std-sync waiver and the SAFETY comment reddens
    // both sites.
    let broken = src
        .replace("rts-allow(", "rts-off(")
        .replace("SAFETY:", "safety note");
    let stripped = run("shim_waived.rs", &broken, SHIM);
    assert_eq!(stripped.unwaived_count(), 2);
    assert_eq!(stripped.exit_code(), 1);
}

#[test]
fn json_report_round_trips_counts() {
    let r = run("panic_bad.rs", include_str!("fixtures/panic_bad.rs"), PANIC);
    let json = r.json();
    assert!(json.contains("\"total\": 6"));
    assert!(json.contains("\"unwaived\": 6"));
    assert!(json.contains("\"kind\": \"slice-index\""));
    assert!(json.contains("\"file\": \"panic_bad.rs\""));
}

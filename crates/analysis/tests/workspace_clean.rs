//! The live workspace must analyze clean — this test makes `cargo
//! test` itself enforce the static gate — and every waiver must be
//! load-bearing: disabling any single `rts-allow` annotation makes
//! the analysis fail.

use rts_analysis::{analyze, workspace_specs, FileSpec};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_unwaived_findings() {
    let specs = workspace_specs(&workspace_root()).expect("workspace sources readable");
    assert!(!specs.is_empty(), "workspace walk found no sources");
    let report = analyze(&specs);
    let red: Vec<String> = report
        .unwaived()
        .map(|f| {
            format!(
                "{}:{}:{} [{}/{}] {}",
                f.file, f.line, f.col, f.pass, f.kind, f.message
            )
        })
        .collect();
    assert!(
        red.is_empty(),
        "unwaived findings in the workspace:\n{}",
        red.join("\n")
    );
    // Waived findings exist (the triage left reasoned waivers) and
    // each carries its reason.
    assert!(report.waived_count() > 0);
    for f in report.findings.iter().filter(|f| f.waived) {
        assert!(
            f.waiver_reason.as_deref().is_some_and(|r| !r.is_empty()),
            "waived finding without a reason at {}:{}",
            f.file,
            f.line
        );
    }
}

#[test]
fn every_waiver_is_load_bearing() {
    let specs = workspace_specs(&workspace_root()).expect("workspace sources readable");
    // Only files with waived findings carry real annotations — other
    // occurrences of the marker are documentation or test strings
    // (e.g. the analyzer's own sources).
    let baseline = analyze(&specs);
    let mut checked = 0usize;
    for (si, spec) in specs.iter().enumerate() {
        if !baseline
            .findings
            .iter()
            .any(|f| f.waived && f.file == spec.label)
        {
            continue;
        }
        for (li, line) in spec.src.lines().enumerate() {
            if !line.contains("rts-allow(") {
                continue;
            }
            // Disable exactly this annotation, keeping line numbers
            // stable, and re-analyze the whole workspace.
            let mutated_src: String = spec
                .src
                .lines()
                .enumerate()
                .map(|(i, l)| {
                    if i == li {
                        l.replace("rts-allow(", "rts-off(")
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let mutated: Vec<FileSpec> = specs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let mut s = s.clone();
                    if i == si {
                        s.src = mutated_src.clone();
                    }
                    s
                })
                .collect();
            let report = analyze(&mutated);
            assert!(
                report.unwaived_count() > 0,
                "annotation at {}:{} waives nothing — delete it",
                spec.label,
                li + 1
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "expected at least one waiver in the workspace");
}

//! Fixture: the same shapes, each carrying a reasoned waiver — except
//! the last one, whose waiver is missing its reason and therefore
//! does not waive.

pub fn waived(v: Vec<u32>, o: Option<u32>) -> u32 {
    let a = o.unwrap(); // rts-allow(panic): caller checked is_some
    // rts-allow(panic): index 0 exists — caller rejects empty input
    let c = v[0];
    // rts-allow(panic): reason given on its own line above the site,
    // spanning a contiguous comment block.
    let b = o.expect("present");
    a + b + c
}

pub fn empty_reason(o: Option<u32>) -> u32 {
    o.unwrap() // rts-allow(panic)
}

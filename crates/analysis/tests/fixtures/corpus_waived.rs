//! Fixture: sequential sampling under corpus-v1 waivers — plus one
//! waiver whose key does not match, which therefore stays red.

pub fn frozen_v1(rng: &mut Rng) -> f64 {
    // rts-allow(corpus-v1): frozen v1 per-layer stream, reproduced
    // byte-identically for the archived records
    let base = rng.next_gaussian();
    let shared = rng.next_gaussian(); // rts-allow(corpus-v1): corpus-shared decision stream
    base + shared
}

pub fn wrong_key(rng: &mut Rng) -> f64 {
    // rts-allow(iter-order): wrong key — a sequential-sampler finding
    // needs the corpus-v1 key, so this annotation does not cover it
    rng.next_gaussian()
}

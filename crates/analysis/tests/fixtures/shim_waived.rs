//! Fixture: the shim-policy exceptions done right — a reasoned
//! std-sync waiver and a SAFETY-commented unsafe block.

// rts-allow(std-sync): fixture-documented escape hatch; real code
// would cite why the shim cannot serve this use
use std::sync::Mutex;

pub static CELL: Mutex<u32> = Mutex::new(0);

pub fn read(v: &[u8]) -> u8 {
    // SAFETY: callers pass a non-empty slice, so the pointer read
    // stays in bounds.
    unsafe { *v.as_ptr() }
}

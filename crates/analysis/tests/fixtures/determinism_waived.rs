//! Fixture: determinism findings under waivers — plus one waiver
//! whose key does not match the finding, which therefore stays red.

use std::collections::HashMap;

pub fn waived(m: HashMap<u32, u32>) -> Vec<u32> {
    // rts-allow(clock): timing-only — reported in logs, never part
    // of an outcome
    let _when = std::time::Instant::now();
    // rts-allow(iter-order): sorted right below
    let mut out: Vec<u32> = m.keys().copied().collect();
    out.sort_unstable();
    out
}

pub fn wrong_key(m: &HashMap<u32, u32>) -> usize {
    // rts-allow(iter-order): wrong key — a clock finding needs the
    // clock key, so this annotation does not cover it
    let _t = std::time::Instant::now();
    m.len()
}

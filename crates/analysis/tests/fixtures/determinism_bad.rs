//! Fixture: determinism violations, none waived.

use std::collections::HashMap;

pub fn table() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn bad(m: HashMap<u32, u32>) -> Vec<u32> {
    let _when = std::time::Instant::now();
    let _epoch = std::time::SystemTime::now();
    let mut out: Vec<u32> = m.keys().copied().collect();
    for (_k, v) in m.iter() {
        out.push(*v);
    }
    let t = table();
    out.extend(t.values());
    out
}

//! Fixture: the same two-lock topology, with the cycle-closing edge
//! carrying a reasoned waiver — the graph analyzed is acyclic.

pub struct Engine {
    a: parking_lot::Mutex<u32>,
    b: parking_lot::Mutex<u32>,
}

impl Engine {
    pub fn ab(&self) {
        let _ga = self.a.lock();
        let _gb = self.b.lock();
    }

    pub fn ba(&self) {
        let _gb = self.b.lock();
        // rts-allow(lock): fixture-documented exception — in real
        // code this would cite a try_lock or a proven external order
        let _ga = self.a.lock();
    }
}

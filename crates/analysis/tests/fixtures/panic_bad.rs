//! Fixture: one of every panic-pass finding kind, none waived.

pub fn bad(v: Vec<u32>, o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect("present");
    if v.is_empty() {
        panic!("empty");
    }
    match a {
        0 => unreachable!(),
        1 => todo!(),
        _ => {}
    }
    let c = v[0];
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_freely() {
        let x: Option<u32> = Some(1);
        x.unwrap();
        let v = vec![1u32];
        let _ = v[0];
        panic!("never flagged: stripped with the cfg(test) item");
    }
}

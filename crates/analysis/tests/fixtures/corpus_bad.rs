//! Fixture: corpus-version violations, none waived — direct
//! sequential sampling on a synthesis path. The paired samplers are
//! corpus-v2-clean and must not trip the pass.

pub fn synthesize(rng: &mut Rng, row: &mut [f64]) -> f64 {
    rng.fill_gaussian(row);
    let (a, _b) = rng.next_gaussian_pair();
    let tail = rng.next_gaussian();
    a + tail + rng.next_gaussian()
}

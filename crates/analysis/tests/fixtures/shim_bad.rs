//! Fixture: std::sync primitives where the parking_lot shim is
//! mandated, and an unsafe block with no SAFETY comment.

use std::sync::{Condvar, Mutex};

pub struct S {
    pub m: Mutex<u32>,
    pub cv: Condvar,
}

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}

//! Fixture: a lock-order cycle, a guard held across a foreign
//! condvar wait, and a self-deadlocking relock.

pub struct Engine {
    a: parking_lot::Mutex<u32>,
    b: parking_lot::Mutex<u32>,
    cv: parking_lot::Condvar,
}

impl Engine {
    pub fn ab(&self) {
        let ga = self.a.lock();
        let _gb = self.b.lock();
        drop(ga);
    }

    pub fn ba(&self) {
        let _gb = self.b.lock();
        let _ga = self.a.lock();
    }

    pub fn bad_wait(&self) {
        let _gb = self.b.lock();
        let mut ga = self.a.lock();
        self.cv.wait(&mut ga);
    }

    pub fn relock(&self) {
        let _g1 = self.a.lock();
        let _g2 = self.a.lock();
    }

    pub fn transient_is_fine(&self) {
        // A chained call holds the guard for one statement only: no
        // edge, because nothing is held when the statement ends.
        let _n = *self.a.lock();
        let _m = *self.b.lock();
    }
}

//! The four analysis passes. Each works on the cfg(test)-stripped
//! token stream of one file and reports [`Finding`]s; the lock pass
//! additionally exports acquisition-order edges that the orchestrator
//! aggregates workspace-wide before cycle detection.

use crate::lexer::{Tok, TokKind};
use crate::waiver::CommentMap;
use std::collections::{BTreeMap, BTreeSet};

/// One analysis finding. `waived` is true only when a matching
/// `rts-allow` (or `SAFETY:`) annotation with a non-empty reason
/// covers the line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub pass: &'static str,
    pub kind: &'static str,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    pub waived: bool,
    pub waiver_reason: Option<String>,
}

/// Everything a pass needs about one file.
pub struct FileCtx<'a> {
    pub path: &'a str,
    pub toks: &'a [Tok],
    pub comments: &'a CommentMap,
}

impl FileCtx<'_> {
    /// Build a finding, applying the waiver rule for `key`. A waiver
    /// with an empty reason does not waive — it is reported as a
    /// finding of its own shape (the reason *is* the audit trail).
    fn finding(
        &self,
        pass: &'static str,
        kind: &'static str,
        key: &str,
        line: u32,
        col: u32,
        message: String,
    ) -> Finding {
        let (waived, reason, message) = match self.comments.waiver(line, key) {
            Some(reason) if !reason.is_empty() => (true, Some(reason), message),
            Some(_) => (
                false,
                None,
                format!("{message} [rts-allow({key}) present but missing its reason]"),
            ),
            None => (false, None, message),
        };
        Finding {
            pass,
            kind,
            file: self.path.to_string(),
            line,
            col,
            message,
            waived,
            waiver_reason: reason,
        }
    }
}

/// Walk back from `j` (inclusive) over one balanced `(...)`/`[...]`
/// group to the identifier that heads the receiver — the lock or
/// collection name a method was invoked on.
fn receiver_ident(toks: &[Tok], mut j: isize) -> Option<&str> {
    if j < 0 {
        return None;
    }
    let t = &toks[j as usize];
    if t.is_punct(")") || t.is_punct("]") {
        let (open, close) = if t.text == ")" {
            ("(", ")")
        } else {
            ("[", "]")
        };
        let mut depth = 0isize;
        while j >= 0 {
            let t = &toks[j as usize];
            if t.is_punct(close) {
                depth += 1;
            } else if t.is_punct(open) {
                depth -= 1;
                if depth == 0 {
                    j -= 1;
                    break;
                }
            }
            j -= 1;
        }
    }
    if j >= 0 && toks[j as usize].kind == TokKind::Ident {
        Some(&toks[j as usize].text)
    } else {
        None
    }
}

/// Does `toks[i..]` spell the path `segs[0]::segs[1]::…`?
fn is_path(toks: &[Tok], i: usize, segs: &[&str]) -> bool {
    let mut j = i;
    for (n, seg) in segs.iter().enumerate() {
        if n > 0 {
            if !(j + 1 < toks.len() && toks[j].is_punct(":") && toks[j + 1].is_punct(":")) {
                return false;
            }
            j += 2;
        }
        if !(j < toks.len() && toks[j].is_ident(seg)) {
            return false;
        }
        j += 1;
    }
    true
}

// ---------------------------------------------------------------------------
// Pass 1: panic-freedom
// ---------------------------------------------------------------------------

/// Flag every potentially-panicking expression on the serving paths:
/// `.unwrap()`, `.expect(…)`, `panic!`/`unreachable!`/`todo!`,
/// `panic_any(…)`, and direct slice indexing. Waiver key: `panic`.
pub fn panic_pass(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    let mut f = |kind: &'static str, line: u32, col: u32, msg: String| {
        out.push(ctx.finding("panic", kind, "panic", line, col, msg));
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            // Direct indexing: `expr[…]` panics out of bounds. `[`
            // directly after an identifier or a closing bracket is an
            // index expression (attributes follow `#`, macro brackets
            // follow `!`, array types follow `:`/`<`/`(` — all
            // excluded by the previous-token rule). The full-range
            // `[..]` cannot panic and is skipped.
            if t.is_punct("[")
                && i > 0
                && (toks[i - 1].kind == TokKind::Ident
                    || toks[i - 1].is_punct(")")
                    || toks[i - 1].is_punct("]"))
                && !(i + 3 < toks.len()
                    && toks[i + 1].is_punct(".")
                    && toks[i + 2].is_punct(".")
                    && toks[i + 3].is_punct("]"))
            {
                f(
                    "slice-index",
                    t.line,
                    t.col,
                    "direct indexing panics out of bounds; use get()/get_mut() or waive with a bounds argument".into(),
                );
            }
            continue;
        }
        let dotted = i > 0 && toks[i - 1].is_punct(".");
        let called = i + 1 < toks.len() && toks[i + 1].is_punct("(");
        match t.text.as_str() {
            "unwrap" if dotted && called && i + 2 < toks.len() && toks[i + 2].is_punct(")") => f(
                "unwrap",
                t.line,
                t.col,
                "unwrap() panics on the error path; degrade or waive with an infallibility argument"
                    .into(),
            ),
            "expect" if dotted && called => f(
                "expect",
                t.line,
                t.col,
                "expect() panics on the error path; degrade or waive with an infallibility argument"
                    .into(),
            ),
            "panic" | "unreachable" | "todo"
                if i + 1 < toks.len() && toks[i + 1].is_punct("!") =>
            {
                f(
                    "panic-macro",
                    t.line,
                    t.col,
                    format!("{}! aborts the worker; degrade to abstention instead", t.text),
                )
            }
            "panic_any" if called => f(
                "panic-macro",
                t.line,
                t.col,
                "panic_any() raises a panic; degrade to abstention instead".into(),
            ),
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Pass 2: determinism
// ---------------------------------------------------------------------------

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
/// Methods that are hash-iteration on any receiver (only hash-ordered
/// collections in this workspace expose them).
const ITER_ALWAYS: [&str; 3] = ["keys", "values", "values_mut"];
/// Methods that are hash-iteration when the receiver is known to be a
/// HashMap/HashSet (they also exist on Vec & friends).
const ITER_NAMED: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
    "retain",
    "intersection",
    "union",
    "difference",
];

/// Names in one file bound to hash-ordered collections, plus functions
/// returning them — a deliberately lexical approximation of type
/// inference. Conservative by design: a Vec that shares a field name
/// with a HashMap elsewhere in the file is flagged too and needs a
/// waiver saying so.
fn hash_names(toks: &[Tok]) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut names = BTreeSet::new();
    let mut fns = BTreeSet::new();
    // Functions whose return type mentions a hash type.
    for i in 0..toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            let mut arrow = None;
            while j + 1 < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                if toks[j].is_punct("-") && toks[j + 1].is_punct(">") {
                    arrow = Some(j + 2);
                    break;
                }
                j += 1;
            }
            if let Some(start) = arrow {
                let mut j = start;
                while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                    if HASH_TYPES.contains(&toks[j].text.as_str()) {
                        fns.insert(name.clone());
                        break;
                    }
                    j += 1;
                }
            }
        }
    }
    for i in 0..toks.len() {
        // `name: …HashMap…` — field declarations, parameters, struct
        // literal initializers, and ascribed lets alike.
        if toks[i].kind == TokKind::Ident
            && i + 1 < toks.len()
            && toks[i + 1].is_punct(":")
            && !(i + 2 < toks.len() && toks[i + 2].is_punct(":"))
            && !(i > 0 && toks[i - 1].is_punct(":"))
        {
            let mut angle = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle -= 1;
                } else if angle <= 0
                    && (t.is_punct(",")
                        || t.is_punct(";")
                        || t.is_punct("=")
                        || t.is_punct(")")
                        || t.is_punct("{")
                        || t.is_punct("}"))
                {
                    break;
                }
                if HASH_TYPES.contains(&t.text.as_str()) {
                    names.insert(toks[i].text.clone());
                    break;
                }
                j += 1;
            }
        }
        // `let [mut] name = …HashMap…;` and RHS calling a
        // hash-returning function.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 1 < toks.len() && toks[j].kind == TokKind::Ident && toks[j + 1].is_punct("=") {
                let name = toks[j].text.clone();
                let mut depth = 0i32;
                let mut k = j + 2;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.is_punct("(") || t.is_punct("{") || t.is_punct("[") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("}") || t.is_punct("]") {
                        depth -= 1;
                    } else if t.is_punct(";") && depth <= 0 {
                        break;
                    }
                    if HASH_TYPES.contains(&t.text.as_str())
                        || (t.kind == TokKind::Ident && fns.contains(&t.text))
                    {
                        names.insert(name.clone());
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    (names, fns)
}

/// Flag nondeterminism sources in the pinned crates: wall-clock reads,
/// thread identity, nondeterministic hashers, pointer-identity casts,
/// and iteration over hash-ordered collections. Waiver keys: `clock`
/// (timing) and `iter-order` (ordering).
pub fn determinism_pass(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks;
    let (names, fns) = hash_names(toks);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" if is_path(toks, i, &["Instant", "now"]) => out.push(
                ctx.finding(
                    "determinism",
                    "clock",
                    "clock",
                    t.line,
                    t.col,
                    "Instant::now() reads the wall clock; outputs must be pure functions of seeds"
                        .into(),
                ),
            ),
            "SystemTime" => out.push(ctx.finding(
                "determinism",
                "clock",
                "clock",
                t.line,
                t.col,
                "SystemTime reads the wall clock; outputs must be pure functions of seeds".into(),
            )),
            "thread" if is_path(toks, i, &["thread", "current"]) => out.push(ctx.finding(
                "determinism",
                "thread-id",
                "clock",
                t.line,
                t.col,
                "thread identity varies across runs and schedulers".into(),
            )),
            "ThreadId" => out.push(ctx.finding(
                "determinism",
                "thread-id",
                "clock",
                t.line,
                t.col,
                "thread identity varies across runs and schedulers".into(),
            )),
            "DefaultHasher" | "RandomState" => out.push(ctx.finding(
                "determinism",
                "hasher",
                "iter-order",
                t.line,
                t.col,
                format!("{} is seeded per-process; hashes are not stable", t.text),
            )),
            "as" if i + 2 < toks.len()
                && toks[i + 1].is_punct("*")
                && (toks[i + 2].is_ident("const") || toks[i + 2].is_ident("mut")) =>
            {
                out.push(ctx.finding(
                    "determinism",
                    "ptr-identity",
                    "iter-order",
                    t.line,
                    t.col,
                    "pointer identity is allocation-dependent, not seed-dependent".into(),
                ))
            }
            "ptr" if is_path(toks, i, &["ptr", "eq"]) => out.push(ctx.finding(
                "determinism",
                "ptr-identity",
                "iter-order",
                t.line,
                t.col,
                "ptr::eq compares allocation identity, which is not seed-dependent".into(),
            )),
            m if i > 0
                && toks[i - 1].is_punct(".")
                && i + 1 < toks.len()
                && toks[i + 1].is_punct("(") =>
            {
                let named_hit = ITER_NAMED.contains(&m)
                    && receiver_ident(toks, i as isize - 2)
                        .is_some_and(|r| names.contains(r) || fns.contains(r));
                if ITER_ALWAYS.contains(&m) || named_hit {
                    out.push(ctx.finding(
                        "determinism",
                        "hash-iter",
                        "iter-order",
                        t.line,
                        t.col,
                        format!(
                            ".{m}() iterates in hash order; sort the result or waive with an order-independence argument"
                        ),
                    ));
                }
            }
            "in" => {
                // `for x in [&[mut]] name {` over a known hash name.
                let mut j = i + 1;
                if j < toks.len() && toks[j].is_punct("&") {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_ident("mut") {
                    j += 1;
                }
                if j + 1 < toks.len()
                    && toks[j].kind == TokKind::Ident
                    && toks[j + 1].is_punct("{")
                    && names.contains(&toks[j].text)
                {
                    out.push(ctx.finding(
                        "determinism",
                        "hash-iter",
                        "iter-order",
                        toks[j].line,
                        toks[j].col,
                        format!("`for … in {}` iterates in hash order", toks[j].text),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Pass 2b: corpus-version stream discipline
// ---------------------------------------------------------------------------

/// Flag every direct `next_gaussian` call in a synthesis-owning file.
/// The v2 corpus draws its hidden-state streams through
/// `fill_gaussian`/`next_gaussian_pair` (both Box–Muller variates
/// kept); a lone `.next_gaussian()` on such a path is either a frozen
/// v1 site or a corpus-shared stream — both legitimate, both required
/// to say so with `// rts-allow(corpus-v1): <reason>`. An unwaived
/// call is a new sequential-sampler dependency silently minting a
/// third corpus. `next_gaussian_pair` lexes as a single identifier,
/// so it never trips this pass. Waiver key: `corpus-v1`.
pub fn corpus_pass(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("next_gaussian") && i + 1 < toks.len() && toks[i + 1].is_punct("(") {
            out.push(
                ctx.finding(
                    "corpus",
                    "sequential-sampler",
                    "corpus-v1",
                    t.line,
                    t.col,
                    "direct next_gaussian() call on a synthesis path: v2 streams draw via \
                 fill_gaussian/next_gaussian_pair; waive frozen v1 or corpus-shared \
                 streams with rts-allow(corpus-v1)"
                        .into(),
                ),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Pass 3: lock discipline
// ---------------------------------------------------------------------------

/// One lock-acquisition-order edge: `from` was held when `to` was
/// acquired, at `file:line:col`.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Waived at the acquisition site (`rts-allow(lock)`).
    pub waived: bool,
    pub waiver_reason: Option<String>,
}

#[derive(Debug)]
struct HeldGuard {
    var: Option<String>,
    lock: String,
    depth: i32,
}

/// Extract lock-order edges and cross-lock condvar waits from one
/// file. Locks are identified by the receiver field/binding name
/// (`self.state.lock()` → `state`): names merge across types, which is
/// conservative in the right direction. Scope tracking is lexical —
/// a guard lives until `drop(guard)` or the end of its block; a
/// `.lock()` not bound by a plain `let guard = …lock();` is transient
/// (guard dropped at the end of the statement).
pub fn lock_pass(ctx: &FileCtx) -> (Vec<Finding>, Vec<LockEdge>) {
    let toks = ctx.toks;
    let mut findings = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut held: Vec<HeldGuard> = Vec::new();
    let mut depth = 0i32;
    // The pending `let name =` of the current statement, if any, with
    // the index of its `=` token.
    let mut pending_let: Option<(String, usize)> = None;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            held.retain(|h| h.depth <= depth);
            pending_let = None;
        } else if t.is_punct(";") {
            pending_let = None;
        } else if t.is_ident("fn") {
            // Guards never cross a function boundary.
            held.clear();
            pending_let = None;
        } else if t.is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            pending_let =
                (j + 1 < toks.len() && toks[j].kind == TokKind::Ident && toks[j + 1].is_punct("="))
                    .then(|| (toks[j].text.clone(), j + 1));
        } else if t.is_ident("drop")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct("(")
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 3].is_punct(")")
        {
            let var = &toks[i + 2].text;
            held.retain(|h| h.var.as_deref() != Some(var));
        } else if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "lock" | "read" | "write")
            && i > 0
            && toks[i - 1].is_punct(".")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("(")
            && toks[i + 2].is_punct(")")
        {
            if let Some(lock) = receiver_ident(toks, i as isize - 2) {
                let lock = lock.to_string();
                for h in &held {
                    if h.lock == lock {
                        findings.push(ctx.finding(
                            "locks",
                            "lock-relock",
                            "lock",
                            t.line,
                            t.col,
                            format!("`{lock}` acquired while already held (self-deadlock)"),
                        ));
                    } else {
                        let (waived, reason) = match ctx.comments.waiver(t.line, "lock") {
                            Some(r) if !r.is_empty() => (true, Some(r)),
                            _ => (false, None),
                        };
                        edges.push(LockEdge {
                            from: h.lock.clone(),
                            to: lock.clone(),
                            file: ctx.path.to_string(),
                            line: t.line,
                            col: t.col,
                            waived,
                            waiver_reason: reason,
                        });
                    }
                }
                // Held past the statement only when bound as the whole
                // RHS of a `let`: `let g = x.lock();` — the RHS must
                // start with the receiver chain itself (an identifier)
                // and end at this call, so `let n = *x.lock();` (a
                // deref of the statement-scoped temporary) stays
                // transient.
                let bound = pending_let.as_ref().is_some_and(|(_, eq)| {
                    eq + 1 < toks.len() && toks[eq + 1].kind == TokKind::Ident
                }) && i + 3 < toks.len()
                    && toks[i + 3].is_punct(";");
                if bound {
                    held.push(HeldGuard {
                        var: pending_let.take().map(|(name, _)| name),
                        lock,
                        depth,
                    });
                }
            }
        } else if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "wait" | "wait_for" | "wait_while" | "wait_timeout"
            )
            && i > 0
            && toks[i - 1].is_punct(".")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
        {
            // `cv.wait(&mut guard)`: which lock does `guard` guard?
            let mut j = i + 2;
            while j < toks.len() && (toks[j].is_punct("&") || toks[j].is_ident("mut")) {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Ident {
                let var = &toks[j].text;
                if let Some(waited) = held
                    .iter()
                    .find(|h| h.var.as_deref() == Some(var.as_str()))
                    .map(|h| h.lock.clone())
                {
                    for h in &held {
                        if h.lock != waited {
                            findings.push(ctx.finding(
                                "locks",
                                "wait-holds-other-lock",
                                "lock",
                                t.line,
                                t.col,
                                format!(
                                    "guard of `{}` held across Condvar::{} on `{}` — the wait \
                                     releases only `{}`, deadlocking anyone needing `{}`",
                                    h.lock, t.text, waited, waited, h.lock
                                ),
                            ));
                        }
                    }
                }
            }
        }
        i += 1;
    }
    (findings, edges)
}

/// Workspace-level cycle detection over the aggregated acquisition
/// graph. Every unwaived edge participating in a cycle becomes a
/// finding anchored at its acquisition site; waiving an edge
/// (`rts-allow(lock)`) removes it from the graph.
pub fn lock_cycles(edges: &[LockEdge]) -> Vec<Finding> {
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges.iter().filter(|e| !e.waived) {
        graph.entry(&e.from).or_default().insert(&e.to);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = graph.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    let mut out = Vec::new();
    for e in edges.iter().filter(|e| !e.waived) {
        if reaches(&e.to, &e.from) {
            out.push(Finding {
                pass: "locks",
                kind: "lock-cycle",
                file: e.file.clone(),
                line: e.line,
                col: e.col,
                message: format!(
                    "acquisition edge `{}` → `{}` closes a cycle: lock order must be a DAG",
                    e.from, e.to
                ),
                waived: false,
                waiver_reason: None,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Pass 4: shim-surface drift
// ---------------------------------------------------------------------------

/// Flag direct `std::sync::{Mutex,RwLock,Condvar}` where the
/// `parking_lot` shim is mandated (waiver key: `std-sync`), and — in
/// `check_unsafe` mode — `unsafe` blocks without a covering
/// `// SAFETY:` comment (fixed by writing the comment, not waivable).
pub fn shim_pass(ctx: &FileCtx, check_std_sync: bool, check_unsafe: bool) -> Vec<Finding> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    const SHIMMED: [&str; 3] = ["Mutex", "RwLock", "Condvar"];
    for i in 0..toks.len() {
        let t = &toks[i];
        if check_std_sync && t.is_ident("std") && is_path(toks, i, &["std", "sync"]) {
            // `std::sync::X` or `use std::sync::{A, B, …}`. The path
            // `std::sync` spans tokens i..i+4 (`std` `:` `:` `sync`).
            if i + 5 < toks.len() && toks[i + 4].is_punct(":") && toks[i + 5].is_punct(":") {
                let j = i + 6;
                if j < toks.len() && toks[j].kind == TokKind::Ident {
                    if SHIMMED.contains(&toks[j].text.as_str()) {
                        out.push(ctx.finding(
                            "shim",
                            "std-sync",
                            "std-sync",
                            toks[j].line,
                            toks[j].col,
                            format!(
                                "std::sync::{} bypasses the mandated parking_lot shim",
                                toks[j].text
                            ),
                        ));
                    }
                } else if j < toks.len() && toks[j].is_punct("{") {
                    let mut k = j + 1;
                    let mut depth = 1i32;
                    while k < toks.len() && depth > 0 {
                        if toks[k].is_punct("{") {
                            depth += 1;
                        } else if toks[k].is_punct("}") {
                            depth -= 1;
                        } else if toks[k].kind == TokKind::Ident
                            && SHIMMED.contains(&toks[k].text.as_str())
                        {
                            out.push(ctx.finding(
                                "shim",
                                "std-sync",
                                "std-sync",
                                toks[k].line,
                                toks[k].col,
                                format!(
                                    "std::sync::{} bypasses the mandated parking_lot shim",
                                    toks[k].text
                                ),
                            ));
                        }
                        k += 1;
                    }
                }
            }
        }
        if check_unsafe
            && t.is_ident("unsafe")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("{")
            && !ctx.comments.has_safety(t.line)
        {
            out.push(Finding {
                pass: "shim",
                kind: "unsafe-no-safety",
                file: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                message: "unsafe block without a covering `// SAFETY:` comment — write one \
                          stating the invariant that makes it sound"
                    .into(),
                waived: false,
                waiver_reason: None,
            });
        }
    }
    out
}

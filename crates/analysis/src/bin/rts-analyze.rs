//! `rts-analyze` — run the workspace static-analysis passes.
//!
//! Usage: `cargo run -p rts-analysis --bin rts-analyze -- [--json] [--root PATH]`
//!
//! Exits 0 when every finding is waived, 1 on unwaived findings,
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("rts-analyze: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: rts-analyze [--json] [--root PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rts-analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let specs = match rts_analysis::workspace_specs(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "rts-analyze: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if specs.is_empty() {
        eprintln!(
            "rts-analyze: no sources found under {} — wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }
    let report = rts_analysis::analyze(&specs);
    if json {
        print!("{}", report.json());
    } else {
        print!("{}", report.human());
    }
    ExitCode::from(report.exit_code() as u8)
}

/// Walk up from the current directory to the first ancestor holding a
/// `Cargo.toml` with a `[workspace]` table; fall back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

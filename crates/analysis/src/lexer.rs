//! A minimal Rust lexer: just enough structure for the analysis
//! passes — identifiers, punctuation, literals, and comments with
//! line/column spans — while never being fooled by `unwrap()` inside a
//! string literal or a doc comment.
//!
//! This is deliberately not a full parser. The passes work on token
//! patterns (`.` `unwrap` `(` `)`, `std` `::` `sync` `::` `Mutex`, …)
//! plus light structure: brace depth, `#[cfg(test)]` item spans, and
//! per-line comments for waiver lookup.

/// Token kind. Literals carry no sub-kind — no pass needs one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
    Literal,
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    pub fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.is(TokKind::Ident, text)
    }

    pub fn is_punct(&self, text: &str) -> bool {
        self.is(TokKind::Punct, text)
    }
}

/// A comment, kept out of the token stream. `own_line` means nothing
/// but whitespace precedes it on its line — the shape waivers and
/// `SAFETY:` annotations use when they sit above the annotated line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
    pub own_line: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    // Does anything other than whitespace precede position `i` on the
    // current line? Tracks comment `own_line`.
    let mut line_has_code = false;

    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                        line_has_code = false;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        // Line comment (includes doc comments).
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let start = i;
            let at_line = line;
            let own = !line_has_code;
            while i < bytes.len() && bytes[i] != b'\n' {
                advance!(1);
            }
            comments.push(Comment {
                line: at_line,
                text: src[start..i].to_string(),
                own_line: own,
            });
            continue;
        }
        // Block comment (nested, as in Rust).
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start = i;
            let at_line = line;
            let own = !line_has_code;
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    advance!(2);
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    advance!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    advance!(1);
                }
            }
            comments.push(Comment {
                line: at_line,
                text: src[start..i.min(src.len())].to_string(),
                own_line: own,
            });
            continue;
        }
        line_has_code = true;
        // Identifier / keyword — or a raw/byte string prefix.
        if c.is_ascii_alphabetic() || c == b'_' {
            // Raw and byte strings: r"..", r#".."#, b"..", br#".."#.
            if (c == b'r' || c == b'b') && is_string_prefix(bytes, i) {
                let (at_line, at_col) = (line, col);
                let n = raw_or_byte_string_len(bytes, i);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("\"…\""),
                    line: at_line,
                    col: at_col,
                });
                advance!(n);
                continue;
            }
            let start = i;
            let (at_line, at_col) = (line, col);
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                advance!(1);
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                line: at_line,
                col: at_col,
            });
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            let (at_line, at_col) = (line, col);
            while i < bytes.len() {
                let b = bytes[i];
                if b.is_ascii_alphanumeric() || b == b'_' {
                    advance!(1);
                } else if b == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1] != b'.'
                    && !bytes[i + 1].is_ascii_alphabetic()
                {
                    // Decimal point, but never a range (`1..5`) or a
                    // method call on a literal (`1.max(2)`).
                    advance!(1);
                } else if (b == b'+' || b == b'-')
                    && i > 0
                    && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')
                {
                    advance!(1); // exponent sign in 1e-3
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                text: String::from("#"),
                line: at_line,
                col: at_col,
            });
            continue;
        }
        // String literal.
        if c == b'"' {
            let (at_line, at_col) = (line, col);
            advance!(1);
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    advance!(2);
                } else {
                    advance!(1);
                }
            }
            advance!(1); // closing quote
            toks.push(Tok {
                kind: TokKind::Literal,
                text: String::from("\"…\""),
                line: at_line,
                col: at_col,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let (at_line, at_col) = (line, col);
            if is_lifetime(bytes, i) {
                advance!(1);
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    advance!(1);
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: src[start..i].to_string(),
                    line: at_line,
                    col: at_col,
                });
            } else {
                advance!(1);
                while i < bytes.len() && bytes[i] != b'\'' {
                    if bytes[i] == b'\\' {
                        advance!(2);
                    } else {
                        advance!(1);
                    }
                }
                advance!(1);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("'…'"),
                    line: at_line,
                    col: at_col,
                });
            }
            continue;
        }
        // Single-character punctuation; the passes match multi-char
        // operators (`::`, `->`) as token sequences.
        let (at_line, at_col) = (line, col);
        toks.push(Tok {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line: at_line,
            col: at_col,
        });
        advance!(1);
    }
    Lexed { toks, comments }
}

/// Is the `r`/`b` at `i` the prefix of a raw/byte string literal?
fn is_string_prefix(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if bytes[i] == b'b' && j < bytes.len() && bytes[j] == b'r' {
        j += 1;
    }
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && (bytes[j] == b'"' || (bytes[i] == b'b' && bytes[j] == b'\''))
}

/// Length in bytes of the raw/byte string starting at `i`.
fn raw_or_byte_string_len(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'\'' {
        // b'x' byte char.
        j += 1;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += if bytes[j] == b'\\' { 2 } else { 1 };
        }
        return j + 1 - i;
    }
    j += 1; // opening quote
    let raw = hashes > 0 || bytes[i] == b'r' || (i + 1 < bytes.len() && bytes[i + 1] == b'r');
    while j < bytes.len() {
        if bytes[j] == b'\\' && !raw {
            j += 2;
            continue;
        }
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k - i;
            }
        }
        j += 1;
    }
    bytes.len() - i
}

/// Is the `'` at `i` a lifetime (rather than a char literal)? A
/// lifetime is `'ident` NOT followed by a closing `'`.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if j >= bytes.len() || !(bytes[j].is_ascii_alphabetic() || bytes[j] == b'_') {
        return false;
    }
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    !(j < bytes.len() && bytes[j] == b'\'')
}

/// Remove tokens belonging to `#[cfg(test)]`-gated items (and the
/// attributes themselves): test code may unwrap, index, and time
/// freely. Conservative attribute match: any `#[cfg(...)]` whose
/// argument mentions `test` without a `not` counts as test-gated.
pub fn strip_cfg_test(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            // Parse the attribute to its matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut names: Vec<&str> = Vec::new();
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].kind == TokKind::Ident {
                    names.push(&toks[j].text);
                }
                j += 1;
            }
            let is_cfg_test =
                names.first() == Some(&"cfg") && names.contains(&"test") && !names.contains(&"not");
            if is_cfg_test {
                // Skip this attribute, any further attributes, and the
                // item they gate: everything to the matching `}` of the
                // item's first top-level brace, or to a `;` before one.
                i = j + 1;
                while i < toks.len() && toks[i].is_punct("#") {
                    let mut d = 0usize;
                    i += 1; // at `[`
                    while i < toks.len() {
                        if toks[i].is_punct("[") {
                            d += 1;
                        } else if toks[i].is_punct("]") {
                            d -= 1;
                            if d == 0 {
                                i += 1;
                                break;
                            }
                        }
                        i += 1;
                    }
                }
                let mut brace = 0usize;
                while i < toks.len() {
                    if toks[i].is_punct(";") && brace == 0 {
                        i += 1;
                        break;
                    }
                    if toks[i].is_punct("{") {
                        brace += 1;
                    } else if toks[i].is_punct("}") {
                        brace = brace.saturating_sub(1);
                        if brace == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                continue;
            }
            // A non-test attribute: keep it verbatim.
            while i <= j && i < toks.len() {
                out.push(toks[i].clone());
                i += 1;
            }
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

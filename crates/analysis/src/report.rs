//! Rendering: human-readable report and hand-rolled JSON (the
//! analyzer is dependency-free, so JSON is emitted by hand with
//! proper string escaping).

use crate::passes::Finding;

/// The aggregated result of an analysis run.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line, col, pass, kind).
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn new(mut findings: Vec<Finding>) -> Self {
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.pass, a.kind).cmp(&(&b.file, b.line, b.col, b.pass, b.kind))
        });
        Report { findings }
    }

    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    pub fn unwaived_count(&self) -> usize {
        self.findings.len() - self.waived_count()
    }

    /// 0 when every finding is waived, 1 otherwise.
    pub fn exit_code(&self) -> i32 {
        if self.unwaived_count() == 0 {
            0
        } else {
            1
        }
    }

    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in self.unwaived() {
            out.push_str(&format!(
                "{}:{}:{} [{}/{}] {}\n",
                f.file, f.line, f.col, f.pass, f.kind, f.message
            ));
        }
        let waived = self.waived_count();
        if waived > 0 {
            out.push_str(&format!("waived ({waived}):\n"));
            for f in self.findings.iter().filter(|f| f.waived) {
                out.push_str(&format!(
                    "  {}:{}:{} [{}/{}] — {}\n",
                    f.file,
                    f.line,
                    f.col,
                    f.pass,
                    f.kind,
                    f.waiver_reason.as_deref().unwrap_or("")
                ));
            }
        }
        out.push_str(&format!(
            "rts-analyze: {} findings — {} unwaived, {} waived\n",
            self.findings.len(),
            self.unwaived_count(),
            waived
        ));
        out
    }

    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"total\": {},\n  \"unwaived\": {},\n  \"waived\": {},\n  \"findings\": [",
            self.findings.len(),
            self.unwaived_count(),
            self.waived_count()
        ));
        for (n, f) in self.findings.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"pass\": {}, \"kind\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
                 \"waived\": {}, \"reason\": {}, \"message\": {}",
                json_str(f.pass),
                json_str(f.kind),
                json_str(&f.file),
                f.line,
                f.col,
                f.waived,
                f.waiver_reason
                    .as_deref()
                    .map_or_else(|| "null".to_string(), json_str),
                json_str(&f.message)
            ));
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Escape a string into a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::new(Vec::new());
        assert_eq!(r.exit_code(), 0);
        assert!(r.json().contains("\"total\": 0"));
    }
}

//! `rts-analysis` — static analysis that proves the workspace's two
//! load-bearing invariants at the source level:
//!
//! 1. **Degrade-only serving**: `crates/serve` never panics on a
//!    client-facing path — it degrades to abstention (panic-freedom
//!    pass), and its locks form an acquisition-order DAG with no guard
//!    held across a foreign `Condvar::wait` (lock-discipline pass).
//! 2. **Determinism**: the pinned crates (`core`, `simlm`, `tinynn`,
//!    `conformal`, `nanosql`) compute outputs as pure functions of
//!    seeds — no wall clock, thread identity, nondeterministic
//!    hashing, pointer identity, or hash-order iteration
//!    (determinism pass).
//!
//! A fourth pass guards the offline shim policy: no direct
//! `std::sync::{Mutex,RwLock,Condvar}` outside the shims, and every
//! `unsafe` block carries a `// SAFETY:` comment. A fifth (the corpus
//! pass, scoped to the synthesis-owning `simlm/src/model.rs`) keeps
//! the corpus-version contract honest: direct `next_gaussian` calls
//! there are frozen v1 or corpus-shared streams and must carry
//! `rts-allow(corpus-v1)` waivers — v2 synthesis draws via
//! `fill_gaussian`.
//!
//! Violations are waived — never silenced — with
//! `// rts-allow(<key>): <reason>`; an empty reason does not waive.
//! The `rts-analyze` binary exits nonzero on any unwaived finding,
//! which makes the CI job a ratchet: the workspace ships clean, and
//! every future regression is a build failure.

pub mod lexer;
pub mod passes;
pub mod report;
pub mod waiver;

pub use passes::{Finding, LockEdge};
pub use report::Report;

use std::io;
use std::path::{Path, PathBuf};

/// Which passes to run on a file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassSet {
    pub panic: bool,
    pub determinism: bool,
    /// Corpus-version stream discipline: direct `next_gaussian` calls
    /// on hidden-state synthesis paths must carry
    /// `rts-allow(corpus-v1)` waivers (frozen v1 or corpus-shared
    /// streams) — v2 streams draw via `fill_gaussian`.
    pub corpus: bool,
    pub locks: bool,
    pub std_sync: bool,
    pub unsafety: bool,
}

/// One source file queued for analysis. `label` is the path as
/// reported in findings (workspace-relative for real files, a bare
/// name for fixtures).
#[derive(Debug, Clone)]
pub struct FileSpec {
    pub label: String,
    pub src: String,
    pub passes: PassSet,
}

/// Run the configured passes over every file and aggregate the
/// result, including workspace-level lock-cycle detection over the
/// union of all acquisition edges.
pub fn analyze(specs: &[FileSpec]) -> Report {
    let mut findings = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    for spec in specs {
        let lexed = lexer::lex(&spec.src);
        let comments = waiver::CommentMap::new(&lexed.comments);
        let toks = lexer::strip_cfg_test(lexed.toks);
        let ctx = passes::FileCtx {
            path: &spec.label,
            toks: &toks,
            comments: &comments,
        };
        if spec.passes.panic {
            findings.extend(passes::panic_pass(&ctx));
        }
        if spec.passes.determinism {
            findings.extend(passes::determinism_pass(&ctx));
        }
        if spec.passes.corpus {
            findings.extend(passes::corpus_pass(&ctx));
        }
        if spec.passes.locks {
            let (f, e) = passes::lock_pass(&ctx);
            findings.extend(f);
            edges.extend(e);
        }
        if spec.passes.std_sync || spec.passes.unsafety {
            findings.extend(passes::shim_pass(
                &ctx,
                spec.passes.std_sync,
                spec.passes.unsafety,
            ));
        }
    }
    findings.extend(passes::lock_cycles(&edges));
    Report::new(findings)
}

/// Crates whose outputs must be bit-identical functions of seeds.
const PINNED_CRATES: [&str; 5] = ["core", "simlm", "tinynn", "conformal", "nanosql"];

/// Map one workspace-relative `.rs` path to the passes that apply to
/// it under the workspace policy. Returns the default (empty) set for
/// files outside every pass's scope.
pub fn workspace_passes(rel: &str) -> PassSet {
    let mut p = PassSet::default();
    let rel = rel.replace('\\', "/");
    if !rel.starts_with("crates/") || !rel.ends_with(".rs") {
        return p;
    }
    // Analyzer fixtures are input *data* — deliberately-violating
    // snippets — not workspace source.
    if rel.contains("/tests/fixtures/") {
        return p;
    }
    // Integration-test harnesses (`crates/*/tests/`) assert loudly by
    // design, like the workspace-root suites: the degrade-only and
    // lock-discipline passes bind shipped sources, not the tests that
    // hold them to it. (Inline `#[cfg(test)]` modules are already
    // stripped by the scanner.)
    let harness = rel.contains("/tests/");
    // Every crate: unsafe blocks need SAFETY comments.
    p.unsafety = true;
    // Every crate except the shims themselves: no direct std::sync
    // primitives (the parking_lot shim implements *over* std::sync,
    // and other shims may legitimately reach for it).
    p.std_sync = !rel.starts_with("crates/shims/");
    if rel.starts_with("crates/serve/") && !harness {
        // Serving paths must degrade, never panic — except fault.rs,
        // which exists to inject panics deterministically.
        p.panic = !rel.ends_with("/fault.rs");
        p.locks = true;
    }
    // The wire server and client extend the serving surface across a
    // socket: same degrade-only contract, same lock discipline. A
    // malformed or hostile peer must read as a typed error, never a
    // panic; waivers are reasoned and live only at the I/O boundary.
    if (rel.starts_with("crates/served/") || rel.starts_with("crates/client/")) && !harness {
        p.panic = true;
        p.locks = true;
    }
    if PINNED_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/")))
    {
        p.determinism = true;
    }
    // The open-loop harness's arrival schedule is a pure function of
    // its seed (the sharded↔single-shard parity checks depend on it),
    // so the bench crate's openloop module is determinism-pinned too;
    // its deliberate wall-clock *measurement* carries `rts-allow`
    // waivers.
    if rel == "crates/bench/src/openloop.rs" {
        p.determinism = true;
    }
    // The file that owns hidden-state synthesis: every direct
    // `next_gaussian` call there is either a frozen v1 stream or a
    // corpus-shared stream, and must say which via
    // `rts-allow(corpus-v1)` — the v2 streams draw via fill_gaussian.
    if rel == "crates/simlm/src/model.rs" {
        p.corpus = true;
    }
    p
}

/// Collect every `.rs` file under `root/crates` (sorted, so runs are
/// deterministic) with its policy-assigned passes. Files whose pass
/// set is empty are skipped.
pub fn workspace_specs(root: &Path) -> io::Result<Vec<FileSpec>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("crates"), &mut paths)?;
    paths.sort();
    let mut specs = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let passes = workspace_passes(&rel);
        if passes == PassSet::default() {
            continue;
        }
        specs.push(FileSpec {
            label: rel,
            src: std::fs::read_to_string(&path)?,
            passes,
        });
    }
    Ok(specs)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // `target/` never lives under crates/<name>/src, but a
            // workspace-level build dir could be symlinked oddly;
            // skip it defensively.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_policy_scopes_passes_correctly() {
        let serve = workspace_passes("crates/serve/src/engine.rs");
        assert!(serve.panic && serve.locks && serve.std_sync && serve.unsafety);
        assert!(!serve.determinism);

        let fault = workspace_passes("crates/serve/src/fault.rs");
        assert!(!fault.panic, "fault.rs injects panics by design");
        assert!(fault.locks);

        let pinned = workspace_passes("crates/simlm/src/trie.rs");
        assert!(pinned.determinism && !pinned.panic && !pinned.locks);
        assert!(
            !pinned.corpus,
            "only the synthesis-owning file is corpus-pinned"
        );

        let model = workspace_passes("crates/simlm/src/model.rs");
        assert!(
            model.corpus && model.determinism,
            "model.rs owns the synthesis streams"
        );

        let served = workspace_passes("crates/served/src/lib.rs");
        assert!(
            served.panic && served.locks,
            "the wire server inherits the serve crate's degrade-only contract"
        );
        assert!(!served.determinism, "I/O timing is inherently wall-clock");
        let client = workspace_passes("crates/client/src/lib.rs");
        assert!(
            client.panic && client.locks,
            "the wire client must surface typed errors, never panic"
        );
        let wire_tests = workspace_passes("crates/served/tests/wire.rs");
        assert!(
            !wire_tests.panic && !wire_tests.locks,
            "integration harnesses assert loudly by design"
        );
        assert!(
            wire_tests.std_sync && wire_tests.unsafety,
            "hygiene passes still bind test harnesses"
        );

        let shim = workspace_passes("crates/shims/parking_lot/src/lib.rs");
        assert!(shim.unsafety, "shims still need SAFETY comments");
        assert!(!shim.std_sync, "the shim wraps std::sync by design");

        let openloop = workspace_passes("crates/bench/src/openloop.rs");
        assert!(openloop.determinism, "the arrival schedule is seed-pure");
        assert!(!openloop.panic, "the bench crate may assert freely");
        let bench = workspace_passes("crates/bench/src/serving.rs");
        assert!(
            !bench.determinism,
            "only the openloop module is determinism-pinned in rts-bench"
        );

        assert_eq!(workspace_passes("README.md"), PassSet::default());
    }
}

//! Waiver annotations: `// rts-allow(<key>): <reason>`.
//!
//! A finding is *waived* when a matching annotation sits on the same
//! line (trailing) or on the contiguous run of comment-only lines
//! immediately above it, and carries a non-empty reason. A waiver with
//! an empty reason does **not** waive — the reason is the audit trail,
//! and an unexplained exemption is itself a finding.
//!
//! The `unsafe`-block pass uses the same placement rule with a
//! `SAFETY:` comment instead of `rts-allow`.

use crate::lexer::Comment;
use std::collections::HashMap;

/// Comment geography of one file, indexed for waiver lookup.
#[derive(Debug, Default)]
pub struct CommentMap {
    /// line → concatenated comment text on that line.
    by_line: HashMap<u32, String>,
    /// Lines that contain a comment and nothing else.
    comment_only: HashMap<u32, ()>,
}

impl CommentMap {
    pub fn new(comments: &[Comment]) -> Self {
        let mut map = CommentMap::default();
        for c in comments {
            map.by_line.entry(c.line).or_default().push_str(&c.text);
            if c.own_line {
                map.comment_only.insert(c.line, ());
            }
        }
        map
    }

    /// Find an annotation for a finding at `line`: the trailing comment
    /// on the line itself, or the contiguous comment-only block above.
    /// `probe` extracts the annotation payload from one comment's text.
    fn lookup<T>(&self, line: u32, probe: impl Fn(&str) -> Option<T>) -> Option<T> {
        if let Some(text) = self.by_line.get(&line) {
            if let Some(found) = probe(text) {
                return Some(found);
            }
        }
        let mut l = line.saturating_sub(1);
        while l > 0 && self.comment_only.contains_key(&l) {
            if let Some(found) = self.by_line.get(&l).and_then(|t| probe(t)) {
                return Some(found);
            }
            l -= 1;
        }
        None
    }

    /// The `rts-allow(key)` reason covering `line`, if any. Returns the
    /// reason text — possibly empty, which the caller must treat as
    /// *not waived* (but reportable as "waiver missing its reason").
    pub fn waiver(&self, line: u32, key: &str) -> Option<String> {
        let needle = format!("rts-allow({key})");
        self.lookup(line, |text| {
            let at = text.find(&needle)?;
            let rest = &text[at + needle.len()..];
            let rest = rest.strip_prefix(':').unwrap_or(rest);
            Some(rest.trim().trim_end_matches("*/").trim().to_string())
        })
    }

    /// Does a `SAFETY:` comment cover `line`?
    pub fn has_safety(&self, line: u32) -> bool {
        self.lookup(line, |text| text.contains("SAFETY:").then_some(()))
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn map(src: &str) -> CommentMap {
        CommentMap::new(&lex(src).comments)
    }

    #[test]
    fn trailing_waiver_is_found() {
        let m = map("let x = v.unwrap(); // rts-allow(panic): checked above\n");
        assert_eq!(m.waiver(1, "panic").as_deref(), Some("checked above"));
        assert_eq!(m.waiver(1, "clock"), None, "key must match");
    }

    #[test]
    fn preceding_comment_block_is_searched_contiguously() {
        let src = "\
fn f() {
    // rts-allow(iter-order): sorted right after
    // (two-line justification)
    let v: Vec<_> = set.iter().collect();
}
";
        let m = map(src);
        assert_eq!(
            m.waiver(4, "iter-order").as_deref(),
            Some("sorted right after")
        );
        // A code line breaks contiguity: line 1 cannot inherit it.
        assert_eq!(m.waiver(1, "iter-order"), None);
    }

    #[test]
    fn empty_reason_is_surfaced_as_empty_string() {
        let m = map("x.unwrap(); // rts-allow(panic):\n");
        assert_eq!(m.waiver(1, "panic").as_deref(), Some(""));
        let m = map("x.unwrap(); // rts-allow(panic)\n");
        assert_eq!(m.waiver(1, "panic").as_deref(), Some(""));
    }

    #[test]
    fn safety_comments_cover_the_block_below() {
        let src = "\
// SAFETY: the guard is written back before returning.
unsafe {
}
";
        let m = map(src);
        assert!(m.has_safety(2));
        assert!(!m.has_safety(5));
    }
}

//! # nanosql — a small in-memory relational engine
//!
//! The RTS paper measures text-to-SQL systems by **execution accuracy
//! (EX)**: run the predicted SQL and the gold SQL against the database
//! and compare result sets. Reproducing that requires an actual SQL
//! engine; `nanosql` is that engine, built from scratch:
//!
//! * typed [`value::Value`]s with SQL three-valued NULL semantics,
//! * a catalog of tables/columns/foreign keys ([`schema`]) with
//!   BIRD-style per-column natural-language descriptions (the metadata
//!   the paper's Figure 1(b) shows being *missing* when linking fails),
//! * row storage ([`storage`]),
//! * a SQL AST ([`ast`]) with pretty-printing,
//! * a recursive-descent parser ([`parser`]) for the emitted dialect
//!   (`SELECT [DISTINCT] … FROM … [JOIN … ON …] [WHERE …] [GROUP BY …]
//!   [HAVING …] [ORDER BY …] [LIMIT n]`),
//! * a name-resolving planner ([`plan`]) and a materialising executor
//!   ([`exec`]),
//! * multiset result comparison for EX ([`result`]).
//!
//! ```
//! use nanosql::{Database, exec::execute_sql};
//! use nanosql::schema::{TableSchema, ColumnDef, DataType};
//! use nanosql::value::Value;
//!
//! let mut db = Database::new("demo");
//! db.create_table(
//!     TableSchema::new("races")
//!         .column(ColumnDef::new("raceId", DataType::Int).primary_key())
//!         .column(ColumnDef::new("name", DataType::Text)),
//! ).unwrap();
//! db.insert("races", vec![Value::Int(1), Value::text("Monaco GP")]).unwrap();
//! db.insert("races", vec![Value::Int(2), Value::text("Suzuka GP")]).unwrap();
//!
//! let result = execute_sql(&db, "SELECT name FROM races WHERE raceId = 2").unwrap();
//! assert_eq!(result.rows[0][0], Value::text("Suzuka GP"));
//! ```

pub mod ast;
pub mod error;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod result;
pub mod schema;
pub mod storage;
pub mod value;

pub use error::{Error, Result};
pub use result::QueryResult;
pub use schema::{ColumnDef, DataType, Database, TableSchema};
pub use value::Value;

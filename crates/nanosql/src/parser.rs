//! Tokeniser + recursive-descent parser for the nanosql dialect.
//!
//! The grammar (lowercase = nonterminal):
//!
//! ```text
//! select    := SELECT [DISTINCT] items FROM ident join* [WHERE expr]
//!              [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
//!              [LIMIT int]
//! join      := [LEFT] JOIN ident ON colref '=' colref
//! items     := item (',' item)*          item := expr [AS ident]
//! expr      := or_expr
//! or_expr   := and_expr (OR and_expr)*
//! and_expr  := not_expr (AND not_expr)*
//! not_expr  := NOT not_expr | cmp_expr
//! cmp_expr  := add_expr [cmpop add_expr | IS [NOT] NULL |
//!              [NOT] LIKE string | [NOT] IN '(' literals ')']
//! add_expr  := mul_expr (('+'|'-') mul_expr)*
//! mul_expr  := primary (('*'|'/') primary)*
//! primary   := literal | aggcall | colref | '(' expr ')'
//! aggcall   := (COUNT|SUM|AVG|MIN|MAX) '(' ('*' | [DISTINCT] expr) ')'
//! colref    := ident ['.' ident]
//! ```
//!
//! The parser is the inverse of the AST pretty-printer: for every
//! generated statement `s`, `parse(s.to_string()) == s` (round-trip
//! property, tested here and fuzzed from `benchgen`).

use crate::ast::*;
use crate::error::{Error, Result};
use crate::value::Value;

/// Lexical token.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str),
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(i) => format!("integer {i}"),
            Tok::Float(f) => format!("float {f}"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::Symbol(s) => format!("`{s}`"),
            Tok::Eof => "end of input".to_string(),
        }
    }
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '.' | '+' | '*' | '/' | '=' => {
                toks.push(Tok::Symbol(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '+' => "+",
                    '*' => "*",
                    '/' => "/",
                    _ => "=",
                }));
                i += 1;
            }
            '-' => {
                // `--` comments run to end of line.
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    toks.push(Tok::Symbol("-"));
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push(Tok::Symbol("<>"));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Tok::Symbol("<="));
                    i += 2;
                } else {
                    toks.push(Tok::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Tok::Symbol(">="));
                    i += 2;
                } else {
                    toks.push(Tok::Symbol(">"));
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Tok::Symbol("<>")); // normalise != to <>
                    i += 2;
                } else {
                    return Err(Error::Parse("stray `!`".into()));
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                toks.push(Tok::Str(s));
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    if bytes[i] == b'.' {
                        // A second dot ends the number (e.g. `1.5.x` is
                        // malformed and will fail later anyway).
                        if is_float {
                            break;
                        }
                        // Digit must follow the dot, else it's `tbl.col`
                        // style punctuation — but numbers never precede
                        // dots in this dialect, so consume greedily.
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_float {
                    let f: f64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad float literal {text}")))?;
                    toks.push(Tok::Float(f));
                } else {
                    let n: i64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad int literal {text}")))?;
                    toks.push(Tok::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(input[start..i].to_string()));
            }
            other => return Err(Error::Parse(format!("unexpected character `{other}`"))),
        }
    }
    toks.push(Tok::Eof);
    Ok(toks)
}

/// Parser state: token stream + cursor.
struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// Is the current token the given (case-insensitive) keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {kw}, found {}",
                self.peek().describe()
            )))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Tok::Symbol(s) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected `{sym}`, found {}",
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(Error::Parse(format!(
                "expected identifier, found {}",
                other.describe()
            ))),
        }
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projections = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let alias = if self.eat_kw("AS") {
                Some(self.expect_ident()?)
            } else {
                None
            };
            projections.push(SelectItem { expr, alias });
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.expect_ident()?;
        let mut stmt = SelectStmt::from_table(from);
        stmt.distinct = distinct;
        stmt.projections = projections;

        loop {
            let kind = if self.at_kw("LEFT") {
                self.pos += 1;
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.at_kw("JOIN") {
                self.pos += 1;
                JoinKind::Inner
            } else {
                break;
            };
            let table = self.expect_ident()?;
            self.expect_kw("ON")?;
            let left = self.parse_colref()?;
            self.expect_sym("=")?;
            let right = self.parse_colref()?;
            stmt.joins.push(JoinClause {
                kind,
                table,
                left,
                right,
            });
        }

        if self.eat_kw("WHERE") {
            stmt.where_clause = Some(self.parse_expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                stmt.group_by.push(self.parse_expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            stmt.having = Some(self.parse_expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                stmt.order_by.push(OrderByItem { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            match self.next() {
                Tok::Int(n) if n >= 0 => stmt.limit = Some(n as u64),
                other => {
                    return Err(Error::Parse(format!(
                        "expected LIMIT count, found {}",
                        other.describe()
                    )))
                }
            }
        }
        if !matches!(self.peek(), Tok::Eof) {
            return Err(Error::Parse(format!(
                "trailing input starting at {}",
                self.peek().describe()
            )));
        }
        Ok(stmt)
    }

    fn parse_colref(&mut self) -> Result<ColumnRef> {
        let first = self.expect_ident()?;
        if self.eat_sym(".") {
            let col = self.expect_ident()?;
            Ok(ColumnRef::new(first, col))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let left = self.parse_add()?;
        // IS [NOT] NULL
        if self.at_kw("IS") {
            self.pos += 1;
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] LIKE / [NOT] IN
        let negated = if self.at_kw("NOT") {
            // Lookahead: NOT LIKE / NOT IN only; bare NOT handled above.
            let save = self.pos;
            self.pos += 1;
            if self.at_kw("LIKE") || self.at_kw("IN") {
                true
            } else {
                self.pos = save;
                false
            }
        } else {
            false
        };
        if self.eat_kw("LIKE") {
            match self.next() {
                Tok::Str(pattern) => {
                    return Ok(Expr::Like {
                        expr: Box::new(left),
                        pattern,
                        negated,
                    })
                }
                other => {
                    return Err(Error::Parse(format!(
                        "expected LIKE pattern, found {}",
                        other.describe()
                    )))
                }
            }
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_literal()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        for (sym, op) in [
            ("<>", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("=", BinOp::Eq),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_sym(sym) {
                let right = self.parse_add()?;
                return Ok(Expr::binary(op, left, right));
            }
        }
        Ok(left)
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut left = self.parse_mul()?;
        loop {
            if self.eat_sym("+") {
                left = Expr::binary(BinOp::Add, left, self.parse_mul()?);
            } else if self.eat_sym("-") {
                left = Expr::binary(BinOp::Sub, left, self.parse_mul()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut left = self.parse_primary()?;
        loop {
            if self.eat_sym("*") {
                left = Expr::binary(BinOp::Mul, left, self.parse_primary()?);
            } else if self.eat_sym("/") {
                left = Expr::binary(BinOp::Div, left, self.parse_primary()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_literal(&mut self) -> Result<Value> {
        match self.next() {
            Tok::Int(n) => Ok(Value::Int(n)),
            Tok::Float(f) => Ok(Value::Float(f)),
            Tok::Str(s) => Ok(Value::Text(s)),
            Tok::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Tok::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Tok::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            other => Err(Error::Parse(format!(
                "expected literal, found {}",
                other.describe()
            ))),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        // Unary minus on numeric literal.
        if self.eat_sym("-") {
            return match self.next() {
                Tok::Int(n) => Ok(Expr::lit(Value::Int(-n))),
                Tok::Float(f) => Ok(Expr::lit(Value::Float(-f))),
                other => Err(Error::Parse(format!(
                    "expected number after `-`, found {}",
                    other.describe()
                ))),
            };
        }
        match self.peek().clone() {
            Tok::Int(_) | Tok::Float(_) | Tok::Str(_) => Ok(Expr::lit(self.parse_literal()?)),
            Tok::Symbol("(") => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                // Aggregate call?
                let func = match name.to_ascii_uppercase().as_str() {
                    "COUNT" => Some(AggFunc::Count),
                    "SUM" => Some(AggFunc::Sum),
                    "AVG" => Some(AggFunc::Avg),
                    "MIN" => Some(AggFunc::Min),
                    "MAX" => Some(AggFunc::Max),
                    _ => None,
                };
                if let Some(func) = func {
                    // Only a call if followed by `(` — MIN/MAX are common
                    // column names otherwise.
                    if matches!(&self.toks[self.pos + 1], Tok::Symbol("(")) {
                        self.pos += 2;
                        if self.eat_sym("*") {
                            self.expect_sym(")")?;
                            return Ok(Expr::Agg {
                                func,
                                arg: None,
                                distinct: false,
                            });
                        }
                        let distinct = self.eat_kw("DISTINCT");
                        let arg = self.parse_expr()?;
                        self.expect_sym(")")?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                            distinct,
                        });
                    }
                }
                if name.eq_ignore_ascii_case("NULL")
                    || name.eq_ignore_ascii_case("TRUE")
                    || name.eq_ignore_ascii_case("FALSE")
                {
                    return Ok(Expr::lit(self.parse_literal()?));
                }
                Ok(Expr::Column(self.parse_colref()?))
            }
            other => Err(Error::Parse(format!("unexpected {}", other.describe()))),
        }
    }
}

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> Result<SelectStmt> {
    let toks = lex(sql)?;
    Parser { toks, pos: 0 }.parse_select()
}

/// Parse a standalone expression (used in tests and by the surrogate
/// prompt formatter).
pub fn parse_expr(text: &str) -> Result<Expr> {
    let toks = lex(text)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.parse_expr()?;
    if !matches!(p.peek(), Tok::Eof) {
        return Err(Error::Parse("trailing input after expression".into()));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) {
        let stmt = parse(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let printed = stmt.to_string();
        assert_eq!(printed, sql, "round-trip mismatch");
        // Second parse must be a fixpoint.
        let stmt2 = parse(&printed).unwrap();
        assert_eq!(stmt, stmt2);
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("SELECT name FROM races");
        roundtrip("SELECT DISTINCT name FROM races");
        roundtrip("SELECT name FROM races WHERE raceId = 2");
        roundtrip("SELECT name FROM races LIMIT 5");
    }

    #[test]
    fn roundtrip_join_aggregate() {
        roundtrip(
            "SELECT races.name, MIN(lapTimes.time) AS fastest FROM lapTimes \
             JOIN races ON lapTimes.raceId = races.raceId WHERE lapTimes.lap = 1 \
             GROUP BY races.name ORDER BY MIN(lapTimes.time) LIMIT 1",
        );
    }

    #[test]
    fn roundtrip_left_join() {
        roundtrip("SELECT a.x FROM a LEFT JOIN b ON a.id = b.id WHERE b.id IS NULL");
    }

    #[test]
    fn roundtrip_predicates() {
        roundtrip("SELECT x FROM t WHERE x IN (1, 2, 3)");
        roundtrip("SELECT x FROM t WHERE x NOT IN (1, 2)");
        roundtrip("SELECT x FROM t WHERE name LIKE 'Mon%'");
        roundtrip("SELECT x FROM t WHERE name NOT LIKE '%GP'");
        roundtrip("SELECT x FROM t WHERE x IS NOT NULL");
        roundtrip("SELECT x FROM t WHERE NOT (x = 1)");
        roundtrip("SELECT x FROM t WHERE x = 1 OR y = 2 AND z = 3");
        roundtrip("SELECT x FROM t WHERE (x = 1 OR y = 2) AND z = 3");
    }

    #[test]
    fn roundtrip_arithmetic() {
        roundtrip("SELECT x + y * 2 FROM t");
        roundtrip("SELECT (x + y) * 2 FROM t");
        roundtrip("SELECT x / 2 - 1 FROM t");
    }

    #[test]
    fn roundtrip_aggregates() {
        roundtrip("SELECT COUNT(*) FROM t");
        roundtrip("SELECT COUNT(DISTINCT x) FROM t");
        roundtrip("SELECT SUM(x), AVG(y), MAX(z) FROM t GROUP BY g HAVING COUNT(*) > 2");
    }

    #[test]
    fn parses_string_escapes() {
        let stmt = parse("SELECT x FROM t WHERE name = 'it''s'").unwrap();
        match stmt.where_clause.unwrap() {
            Expr::Binary { right, .. } => assert_eq!(*right, Expr::lit(Value::text("it's"))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn normalises_bang_equals() {
        let stmt = parse("SELECT x FROM t WHERE x != 1").unwrap();
        assert_eq!(stmt.to_string(), "SELECT x FROM t WHERE x <> 1");
    }

    #[test]
    fn negative_literals() {
        let stmt = parse("SELECT x FROM t WHERE x > -5").unwrap();
        assert!(stmt.to_string().contains("> -5"));
    }

    #[test]
    fn case_insensitive_keywords() {
        let stmt = parse("select x from t where x = 1 order by x desc limit 3").unwrap();
        assert_eq!(
            stmt.to_string(),
            "SELECT x FROM t WHERE x = 1 ORDER BY x DESC LIMIT 3"
        );
    }

    #[test]
    fn error_messages_are_specific() {
        let err = parse("SELECT FROM t").unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
        let err = parse("SELECT x FROM t WHERE").unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
        let err = parse("SELECT x FROM t extra garbage").unwrap_err();
        assert!(err.to_string().contains("trailing input"), "{err}");
        let err = parse("SELECT x FROM t WHERE name = 'unterminated").unwrap_err();
        assert!(err.to_string().contains("unterminated"), "{err}");
    }

    #[test]
    fn min_as_column_name_is_not_a_call() {
        let stmt = parse("SELECT min FROM t").unwrap();
        assert_eq!(stmt.projections[0].expr, Expr::bare_col("min"));
    }

    #[test]
    fn comments_are_skipped() {
        let stmt = parse("SELECT x FROM t -- trailing comment\n WHERE x = 1").unwrap();
        assert!(stmt.where_clause.is_some());
    }
}

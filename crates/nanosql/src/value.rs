//! Runtime values with SQL semantics.
//!
//! `Value` implements SQL's three-valued logic at the comparison level:
//! any comparison involving `Null` yields "unknown", which the engine
//! represents as `None` from [`Value::sql_cmp`] and treats as *false* in
//! filter predicates (matching SQLite/standard behaviour for WHERE).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single SQL value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to float); `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL (unknown)
    /// or the types are incomparable. Ints and floats compare numerically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic (`None` = unknown).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total order for sorting / grouping: NULLs first, then by type
    /// class, then by value. This is a *deterministic engine order*, not
    /// SQL comparison — used by ORDER BY (NULLS FIRST, SQLite default)
    /// and result-set canonicalisation.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn class(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) | Float(_) => 1,
                Text(_) => 2,
                Bool(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => class(self).cmp(&class(other)),
        }
    }

    /// Key for hashing/equality in GROUP BY and result multiset
    /// comparison. Floats are bucketed to 9 decimal places so that values
    /// equal up to accumulation error in aggregates compare equal (the
    /// tolerance BIRD's EX comparison effectively applies).
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Int(i) => GroupKey::Int(*i),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 9e15 {
                    // Integral floats group with their integer twins, so
                    // SUM(int) and equivalent float expressions agree.
                    GroupKey::Int(*f as i64)
                } else {
                    GroupKey::FloatBits(((*f) * 1e9).round() as i64)
                }
            }
            Value::Text(s) => GroupKey::Text(s.clone()),
            Value::Bool(b) => GroupKey::Int(*b as i64),
        }
    }
}

/// Hashable, `Eq` projection of a [`Value`] (see [`Value::group_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    Null,
    Int(i64),
    FloatBits(i64),
    Text(String),
}

impl PartialEq for Value {
    /// Structural equality (NULL == NULL here): used by tests and result
    /// comparison, *not* by SQL predicates (those go through `sql_eq`).
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn text_comparison_is_lexicographic() {
        assert_eq!(
            Value::text("abc").sql_cmp(&Value::text("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incompatible_types_unknown() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::text("1")), None);
    }

    #[test]
    fn total_order_sorts_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn group_keys_unify_int_and_integral_float() {
        assert_eq!(Value::Int(3).group_key(), Value::Float(3.0).group_key());
        assert_ne!(Value::Float(3.5).group_key(), Value::Int(3).group_key());
    }

    #[test]
    fn group_keys_tolerate_float_jitter() {
        let a = Value::Float(0.333_333_333_1);
        let b = Value::Float(0.333_333_333_4);
        assert_eq!(a.group_key(), b.group_key());
    }

    #[test]
    fn display_quotes_text() {
        assert_eq!(Value::text("it's").to_string(), "'it''s'");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn structural_eq_counts_null_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }
}

//! Catalog: databases, tables, columns, foreign keys.
//!
//! Besides the relational essentials, the catalog carries the metadata
//! the RTS paper's schema-linking story revolves around: per-column
//! natural-language **descriptions** (which BIRD provides and whose
//! absence causes the Figure 1(b) failures) and a DDL pretty-printer,
//! since RTS presents schemas to users "in a DDL format" (§4.3, user
//! study discussion).

use crate::error::{Error, Result};
use crate::storage::TableData;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Text,
    Bool,
}

impl DataType {
    /// SQL spelling used by the DDL printer.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Int => "INTEGER",
            DataType::Float => "REAL",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOLEAN",
        }
    }

    /// Does `v` inhabit this type? NULL inhabits every type; ints are
    /// accepted where floats are expected (SQL numeric widening).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_))
                | (DataType::Float, Value::Int(_))
                | (DataType::Text, Value::Text(_))
                | (DataType::Bool, Value::Bool(_))
        )
    }
}

/// A column definition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub primary_key: bool,
    /// BIRD-style natural-language description ("type of education
    /// offered" for `EdOps`). Empty = missing metadata, the failure mode
    /// of Figure 1(b).
    pub description: String,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Self {
            name: name.into(),
            ty,
            primary_key: false,
            description: String::new(),
        }
    }

    pub fn primary_key(mut self) -> Self {
        self.primary_key = true;
        self
    }

    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }
}

/// A foreign-key edge `from_table.from_column → to_table.to_column`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub from_table: String,
    pub from_column: String,
    pub to_table: String,
    pub to_column: String,
}

/// A table schema (no data; see [`crate::storage::TableData`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Optional one-line table description.
    pub description: String,
}

impl TableSchema {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            columns: Vec::new(),
            description: String::new(),
        }
    }

    /// Builder-style column append.
    pub fn column(mut self, col: ColumnDef) -> Self {
        self.columns.push(col);
        self
    }

    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }

    /// Render as `CREATE TABLE` DDL, with descriptions as trailing `--`
    /// comments when present (the format RTS shows to humans).
    pub fn to_ddl(&self) -> String {
        let mut out = format!("CREATE TABLE {} (\n", self.name);
        for (i, col) in self.columns.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&col.name);
            out.push(' ');
            out.push_str(col.ty.sql_name());
            if col.primary_key {
                out.push_str(" PRIMARY KEY");
            }
            if i + 1 < self.columns.len() {
                out.push(',');
            }
            if !col.description.is_empty() {
                out.push_str(" -- ");
                out.push_str(&col.description);
            }
            out.push('\n');
        }
        out.push_str(");");
        out
    }
}

/// An in-memory database: schemas, foreign keys, and row data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    pub name: String,
    tables: Vec<TableSchema>,
    data: Vec<TableData>,
    foreign_keys: Vec<ForeignKey>,
    /// Domain tag (e.g. "formula_1", "california_schools") used by the
    /// workload generator and reporting.
    pub domain: String,
}

impl Database {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tables: Vec::new(),
            data: Vec::new(),
            foreign_keys: Vec::new(),
            domain: String::new(),
        }
    }

    /// Register a table. Fails on duplicate names or empty column lists.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        if schema.columns.is_empty() {
            return Err(Error::Catalog(format!(
                "table {} has no columns",
                schema.name
            )));
        }
        if self.table(&schema.name).is_some() {
            return Err(Error::Catalog(format!("duplicate table {}", schema.name)));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &schema.columns {
            if !seen.insert(c.name.to_ascii_lowercase()) {
                return Err(Error::Catalog(format!(
                    "duplicate column {} in table {}",
                    c.name, schema.name
                )));
            }
        }
        self.data.push(TableData::new(schema.columns.len()));
        self.tables.push(schema);
        Ok(())
    }

    /// Declare a foreign key; both endpoints must exist.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        let from = self
            .table(&fk.from_table)
            .ok_or_else(|| Error::UnknownTable(fk.from_table.clone()))?;
        if from.column_index(&fk.from_column).is_none() {
            return Err(Error::UnknownColumn(format!(
                "{}.{}",
                fk.from_table, fk.from_column
            )));
        }
        let to = self
            .table(&fk.to_table)
            .ok_or_else(|| Error::UnknownTable(fk.to_table.clone()))?;
        if to.column_index(&fk.to_column).is_none() {
            return Err(Error::UnknownColumn(format!(
                "{}.{}",
                fk.to_table, fk.to_column
            )));
        }
        self.foreign_keys.push(fk);
        Ok(())
    }

    /// Insert one row (type-checked against the schema).
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        let idx = self
            .table_index(table)
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        let schema = &self.tables[idx];
        if row.len() != schema.columns.len() {
            return Err(Error::Catalog(format!(
                "arity mismatch inserting into {}: got {}, want {}",
                table,
                row.len(),
                schema.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&schema.columns) {
            if !c.ty.admits(v) {
                return Err(Error::Type(format!(
                    "value {v} does not fit column {}.{} of type {}",
                    table,
                    c.name,
                    c.ty.sql_name()
                )));
            }
        }
        self.data[idx].push(row);
        Ok(())
    }

    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables
            .iter()
            .position(|t| t.name.eq_ignore_ascii_case(name))
    }

    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.table_index(name).map(|i| &self.tables[i])
    }

    pub fn table_data(&self, name: &str) -> Option<&TableData> {
        self.table_index(name).map(|i| &self.data[i])
    }

    pub fn tables(&self) -> &[TableSchema] {
        &self.tables
    }

    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Foreign keys touching `table` (either direction).
    pub fn foreign_keys_of<'a>(
        &'a self,
        table: &'a str,
    ) -> impl Iterator<Item = &'a ForeignKey> + 'a {
        self.foreign_keys.iter().filter(move |fk| {
            fk.from_table.eq_ignore_ascii_case(table) || fk.to_table.eq_ignore_ascii_case(table)
        })
    }

    /// Total row count across tables.
    pub fn total_rows(&self) -> usize {
        self.data.iter().map(|d| d.len()).sum()
    }

    /// Full-schema DDL dump (every table).
    pub fn to_ddl(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&t.to_ddl());
            out.push('\n');
        }
        for fk in &self.foreign_keys {
            out.push_str(&format!(
                "-- FOREIGN KEY {}.{} REFERENCES {}.{}\n",
                fk.from_table, fk.from_column, fk.to_table, fk.to_column
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_db() -> Database {
        let mut db = Database::new("f1");
        db.create_table(
            TableSchema::new("races")
                .column(ColumnDef::new("raceId", DataType::Int).primary_key())
                .column(ColumnDef::new("name", DataType::Text).description("race name")),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("lapTimes")
                .column(ColumnDef::new("raceId", DataType::Int))
                .column(ColumnDef::new("lap", DataType::Int))
                .column(ColumnDef::new("time", DataType::Float)),
        )
        .unwrap();
        db.add_foreign_key(ForeignKey {
            from_table: "lapTimes".into(),
            from_column: "raceId".into(),
            to_table: "races".into(),
            to_column: "raceId".into(),
        })
        .unwrap();
        db
    }

    #[test]
    fn create_and_lookup() {
        let db = demo_db();
        assert!(db.table("races").is_some());
        assert!(db.table("RACES").is_some(), "lookup is case-insensitive");
        assert!(db.table("pitstops").is_none());
        assert_eq!(db.table("lapTimes").unwrap().columns.len(), 3);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = demo_db();
        let err = db
            .create_table(TableSchema::new("races").column(ColumnDef::new("x", DataType::Int)))
            .unwrap_err();
        assert!(matches!(err, Error::Catalog(_)));
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut db = Database::new("d");
        let err = db
            .create_table(
                TableSchema::new("t")
                    .column(ColumnDef::new("a", DataType::Int))
                    .column(ColumnDef::new("A", DataType::Text)),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Catalog(_)));
    }

    #[test]
    fn insert_type_checked() {
        let mut db = demo_db();
        db.insert("races", vec![Value::Int(1), Value::text("Monaco")])
            .unwrap();
        let err = db
            .insert("races", vec![Value::text("oops"), Value::text("x")])
            .unwrap_err();
        assert!(matches!(err, Error::Type(_)));
        let err = db.insert("races", vec![Value::Int(2)]).unwrap_err();
        assert!(matches!(err, Error::Catalog(_)));
        // Int widens into Float column.
        db.insert(
            "lapTimes",
            vec![Value::Int(1), Value::Int(1), Value::Int(90)],
        )
        .unwrap();
        // NULL fits everywhere.
        db.insert("lapTimes", vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        assert_eq!(db.total_rows(), 3);
    }

    #[test]
    fn foreign_key_endpoints_validated() {
        let mut db = demo_db();
        let err = db
            .add_foreign_key(ForeignKey {
                from_table: "lapTimes".into(),
                from_column: "nope".into(),
                to_table: "races".into(),
                to_column: "raceId".into(),
            })
            .unwrap_err();
        assert!(matches!(err, Error::UnknownColumn(_)));
        assert_eq!(db.foreign_keys_of("races").count(), 1);
    }

    #[test]
    fn ddl_rendering_includes_descriptions() {
        let db = demo_db();
        let ddl = db.table("races").unwrap().to_ddl();
        assert!(ddl.contains("CREATE TABLE races"));
        assert!(ddl.contains("raceId INTEGER PRIMARY KEY"));
        assert!(ddl.contains("-- race name"));
        let full = db.to_ddl();
        assert!(full.contains("FOREIGN KEY lapTimes.raceId REFERENCES races.raceId"));
    }
}

//! SQL abstract syntax tree and pretty-printer.
//!
//! The dialect covers everything the workload generator emits and the
//! paper's benchmark queries need: single-table and multi-way equi-join
//! SELECTs with DISTINCT, WHERE, GROUP BY/HAVING, ORDER BY and LIMIT;
//! scalar expressions with arithmetic, comparisons, boolean logic,
//! LIKE, IN-lists and IS \[NOT\] NULL; aggregates COUNT/SUM/AVG/MIN/MAX
//! (with DISTINCT and `COUNT(*)`).
//!
//! `Display` renders canonical SQL text; [`crate::parser`] parses it
//! back, and the two round-trip (tested property-style in the parser).

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }

    /// Binding power for the pretty-printer/parser (higher = tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// A (possibly qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: Some(table.into()),
            column: column.into(),
        }
    }

    pub fn bare(column: impl Into<String>) -> Self {
        Self {
            table: None,
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Scalar / boolean / aggregate expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    Literal(Value),
    Column(ColumnRef),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `arg = None` means `COUNT(*)`.
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
}

impl Expr {
    pub fn col(table: impl Into<String>, column: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::new(table, column))
    }

    pub fn bare_col(column: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(column))
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Eq, left, right)
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::And, left, right)
    }

    pub fn agg(func: AggFunc, arg: Expr) -> Expr {
        Expr::Agg {
            func,
            arg: Some(Box::new(arg)),
            distinct: false,
        }
    }

    pub fn count_star() -> Expr {
        Expr::Agg {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }
    }

    /// Does this expression (sub)tree contain an aggregate call?
    pub fn contains_agg(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Literal(_) | Expr::Column(_) => false,
            Expr::Binary { left, right, .. } => left.contains_agg() || right.contains_agg(),
            Expr::Not(e) => e.contains_agg(),
            Expr::IsNull { expr, .. } => expr.contains_agg(),
            Expr::Like { expr, .. } => expr.contains_agg(),
            Expr::InList { expr, .. } => expr.contains_agg(),
        }
    }

    /// Collect every column referenced anywhere in the tree.
    pub fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) => e.collect_columns(out),
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::InList { expr, .. } => expr.collect_columns(out),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Binary { op, left, right } => {
                let prec = op.precedence();
                let need_parens = prec < parent_prec;
                if need_parens {
                    write!(f, "(")?;
                }
                left.fmt_prec(f, prec)?;
                write!(f, " {} ", op.sql())?;
                // Right side binds one tighter so chains print left-assoc.
                right.fmt_prec(f, prec + 1)?;
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Not(e) => {
                write!(f, "NOT ")?;
                e.fmt_prec(f, 6)
            }
            Expr::IsNull { expr, negated } => {
                expr.fmt_prec(f, 6)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                expr.fmt_prec(f, 6)?;
                write!(
                    f,
                    " {}LIKE '{}'",
                    if *negated { "NOT " } else { "" },
                    pattern.replace('\'', "''")
                )
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                expr.fmt_prec(f, 6)?;
                write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                write!(f, "{}(", func.sql())?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    Some(a) => a.fmt_prec(f, 0)?,
                    None => write!(f, "*")?,
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// Join flavour. The generator emits INNER and LEFT joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    Inner,
    Left,
}

/// One `JOIN table ON left = right` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinClause {
    pub kind: JoinKind,
    pub table: String,
    pub left: ColumnRef,
    pub right: ColumnRef,
}

/// A projection with optional alias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl SelectItem {
    pub fn plain(expr: Expr) -> Self {
        Self { expr, alias: None }
    }

    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        Self {
            expr,
            alias: Some(alias.into()),
        }
    }

    /// Output column name: alias if present, else the printed expression.
    pub fn output_name(&self) -> String {
        self.alias.clone().unwrap_or_else(|| self.expr.to_string())
    }
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A full SELECT statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    pub from: String,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

impl SelectStmt {
    /// Minimal statement scaffold: `SELECT <nothing> FROM <table>`.
    pub fn from_table(table: impl Into<String>) -> Self {
        Self {
            distinct: false,
            projections: Vec::new(),
            from: table.into(),
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// All table names mentioned in FROM/JOIN, in clause order.
    pub fn tables(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(1 + self.joins.len());
        out.push(self.from.as_str());
        out.extend(self.joins.iter().map(|j| j.table.as_str()));
        out
    }

    /// Every column reference in the statement (projections, join keys,
    /// predicates, grouping, ordering) — the ground truth for *column
    /// linking* in the RTS sense.
    pub fn referenced_columns(&self) -> Vec<ColumnRef> {
        let mut refs: Vec<&ColumnRef> = Vec::new();
        for p in &self.projections {
            p.expr.collect_columns(&mut refs);
        }
        for j in &self.joins {
            refs.push(&j.left);
            refs.push(&j.right);
        }
        if let Some(w) = &self.where_clause {
            w.collect_columns(&mut refs);
        }
        for g in &self.group_by {
            g.collect_columns(&mut refs);
        }
        if let Some(h) = &self.having {
            h.collect_columns(&mut refs);
        }
        for o in &self.order_by {
            o.expr.collect_columns(&mut refs);
        }
        let mut owned: Vec<ColumnRef> = refs.into_iter().cloned().collect();
        owned.sort_by(|a, b| (a.table.as_deref(), &a.column).cmp(&(b.table.as_deref(), &b.column)));
        owned.dedup();
        owned
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if self.projections.is_empty() {
            write!(f, "*")?;
        }
        for (i, p) in self.projections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", p.expr)?;
            if let Some(a) = &p.alias {
                write!(f, " AS {a}")?;
            }
        }
        write!(f, " FROM {}", self.from)?;
        for j in &self.joins {
            let kw = match j.kind {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT JOIN",
            };
            write!(f, " {kw} {} ON {} = {}", j.table, j.left, j.right)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_precedence_printing() {
        // (a + b) * c needs parens; a + b * c does not.
        let e = Expr::binary(
            BinOp::Mul,
            Expr::binary(BinOp::Add, Expr::bare_col("a"), Expr::bare_col("b")),
            Expr::bare_col("c"),
        );
        assert_eq!(e.to_string(), "(a + b) * c");
        let e = Expr::binary(
            BinOp::Add,
            Expr::bare_col("a"),
            Expr::binary(BinOp::Mul, Expr::bare_col("b"), Expr::bare_col("c")),
        );
        assert_eq!(e.to_string(), "a + b * c");
    }

    #[test]
    fn boolean_precedence_printing() {
        let e = Expr::binary(
            BinOp::Or,
            Expr::eq(Expr::bare_col("x"), Expr::lit(Value::Int(1))),
            Expr::and(
                Expr::eq(Expr::bare_col("y"), Expr::lit(Value::Int(2))),
                Expr::eq(Expr::bare_col("z"), Expr::lit(Value::Int(3))),
            ),
        );
        assert_eq!(e.to_string(), "x = 1 OR y = 2 AND z = 3");
    }

    #[test]
    fn full_statement_rendering() {
        let mut stmt = SelectStmt::from_table("lapTimes");
        stmt.projections
            .push(SelectItem::plain(Expr::col("races", "name")));
        stmt.projections.push(SelectItem::aliased(
            Expr::agg(AggFunc::Min, Expr::col("lapTimes", "time")),
            "fastest",
        ));
        stmt.joins.push(JoinClause {
            kind: JoinKind::Inner,
            table: "races".into(),
            left: ColumnRef::new("lapTimes", "raceId"),
            right: ColumnRef::new("races", "raceId"),
        });
        stmt.where_clause = Some(Expr::eq(
            Expr::col("lapTimes", "lap"),
            Expr::lit(Value::Int(1)),
        ));
        stmt.group_by.push(Expr::col("races", "name"));
        stmt.order_by.push(OrderByItem {
            expr: Expr::agg(AggFunc::Min, Expr::col("lapTimes", "time")),
            desc: false,
        });
        stmt.limit = Some(1);
        assert_eq!(
            stmt.to_string(),
            "SELECT races.name, MIN(lapTimes.time) AS fastest FROM lapTimes \
             JOIN races ON lapTimes.raceId = races.raceId WHERE lapTimes.lap = 1 \
             GROUP BY races.name ORDER BY MIN(lapTimes.time) LIMIT 1"
        );
    }

    #[test]
    fn referenced_columns_dedup_and_sort() {
        let mut stmt = SelectStmt::from_table("t");
        stmt.projections
            .push(SelectItem::plain(Expr::col("t", "b")));
        stmt.projections
            .push(SelectItem::plain(Expr::col("t", "a")));
        stmt.where_clause = Some(Expr::eq(Expr::col("t", "a"), Expr::lit(Value::Int(1))));
        let cols = stmt.referenced_columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].column, "a");
        assert_eq!(cols[1].column, "b");
    }

    #[test]
    fn contains_agg() {
        assert!(Expr::count_star().contains_agg());
        assert!(Expr::binary(
            BinOp::Gt,
            Expr::agg(AggFunc::Sum, Expr::bare_col("x")),
            Expr::lit(Value::Int(10))
        )
        .contains_agg());
        assert!(!Expr::bare_col("x").contains_agg());
    }

    #[test]
    fn in_list_and_like_printing() {
        let e = Expr::InList {
            expr: Box::new(Expr::bare_col("x")),
            list: vec![Value::Int(1), Value::Int(2)],
            negated: true,
        };
        assert_eq!(e.to_string(), "x NOT IN (1, 2)");
        let e = Expr::Like {
            expr: Box::new(Expr::bare_col("name")),
            pattern: "Mon%".into(),
            negated: false,
        };
        assert_eq!(e.to_string(), "name LIKE 'Mon%'");
    }

    #[test]
    fn is_null_printing() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::bare_col("x")),
            negated: true,
        };
        assert_eq!(e.to_string(), "x IS NOT NULL");
    }
}

//! Query execution.
//!
//! The executor is a straight-line materialising pipeline over the bound
//! plan: scan → hash-join* → filter → (group/aggregate → having) →
//! project → distinct → sort → limit. Joins build a hash table on the
//! newly joined table and probe with the accumulated rows; NULL join
//! keys never match (SQL semantics), and LEFT JOIN pads non-matching
//! probe rows with NULLs.

use crate::ast::SelectStmt;
use crate::error::{Error, Result};
use crate::parser::parse;
use crate::plan::{bind, AggregatePlan, BoundAgg, BoundExpr, JoinStep, Plan};
use crate::result::QueryResult;
use crate::schema::Database;
use crate::value::{GroupKey, Value};
use std::collections::{HashMap, HashSet};

/// Evaluation context: the joined input row, and (in the output phase)
/// the group keys and aggregate results.
struct EvalCtx<'a> {
    row: &'a [Value],
    group_keys: &'a [Value],
    agg_values: &'a [Value],
}

impl<'a> EvalCtx<'a> {
    fn row(row: &'a [Value]) -> Self {
        EvalCtx {
            row,
            group_keys: &[],
            agg_values: &[],
        }
    }

    fn group(group_keys: &'a [Value], agg_values: &'a [Value]) -> Self {
        EvalCtx {
            row: &[],
            group_keys,
            agg_values,
        }
    }
}

/// Truth value under SQL three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Truth {
    True,
    False,
    Unknown,
}

impl Truth {
    fn from_value(v: &Value) -> Result<Truth> {
        match v {
            Value::Null => Ok(Truth::Unknown),
            Value::Bool(true) => Ok(Truth::True),
            Value::Bool(false) => Ok(Truth::False),
            // Numeric truthiness (SQLite-style): nonzero = true.
            Value::Int(i) => Ok(if *i != 0 { Truth::True } else { Truth::False }),
            Value::Float(f) => Ok(if *f != 0.0 { Truth::True } else { Truth::False }),
            Value::Text(_) => Err(Error::Type("text value used as boolean".into())),
        }
    }

    fn to_value(self) -> Value {
        match self {
            Truth::True => Value::Bool(true),
            Truth::False => Value::Bool(false),
            Truth::Unknown => Value::Null,
        }
    }

    fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

/// SQL LIKE with `%` (any run) and `_` (any single char), case sensitive.
fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'%') => {
                // Try every split point, including the empty one.
                (0..=t.len()).any(|i| rec(&t[i..], &p[1..]))
            }
            Some(b'_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(&c) => t.first() == Some(&c) && rec(&t[1..], &p[1..]),
        }
    }
    rec(text.as_bytes(), pattern.as_bytes())
}

fn eval(expr: &BoundExpr, ctx: &EvalCtx) -> Result<Value> {
    use crate::ast::BinOp::*;
    Ok(match expr {
        BoundExpr::Literal(v) => v.clone(),
        BoundExpr::ColumnIdx(i) => ctx.row[*i].clone(),
        BoundExpr::GroupKeyRef(i) => ctx.group_keys[*i].clone(),
        BoundExpr::AggRef(i) => ctx.agg_values[*i].clone(),
        BoundExpr::Not(inner) => Truth::from_value(&eval(inner, ctx)?)?.not().to_value(),
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Value::Bool(v.is_null() != *negated)
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            match v {
                Value::Null => Value::Null,
                Value::Text(s) => Value::Bool(like_match(&s, pattern) != *negated),
                other => return Err(Error::Type(format!("LIKE on non-text value {other}"))),
            }
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            let mut found = false;
            for item in list {
                match v.sql_eq(item) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if found {
                Value::Bool(!*negated)
            } else if saw_null {
                Value::Null // x IN (…, NULL) is unknown when no match
            } else {
                Value::Bool(*negated)
            }
        }
        BoundExpr::Binary { op, left, right } => {
            match op {
                And => {
                    // Short-circuit-aware three-valued AND/OR.
                    let l = Truth::from_value(&eval(left, ctx)?)?;
                    if l == Truth::False {
                        return Ok(Value::Bool(false));
                    }
                    let r = Truth::from_value(&eval(right, ctx)?)?;
                    return Ok(l.and(r).to_value());
                }
                Or => {
                    let l = Truth::from_value(&eval(left, ctx)?)?;
                    if l == Truth::True {
                        return Ok(Value::Bool(true));
                    }
                    let r = Truth::from_value(&eval(right, ctx)?)?;
                    return Ok(l.or(r).to_value());
                }
                _ => {}
            }
            let l = eval(left, ctx)?;
            let r = eval(right, ctx)?;
            match op {
                Eq | Ne | Lt | Le | Gt | Ge => match l.sql_cmp(&r) {
                    None => Value::Null,
                    Some(ord) => {
                        let b = match op {
                            Eq => ord.is_eq(),
                            Ne => !ord.is_eq(),
                            Lt => ord.is_lt(),
                            Le => ord.is_le(),
                            Gt => ord.is_gt(),
                            Ge => ord.is_ge(),
                            _ => unreachable!(),
                        };
                        Value::Bool(b)
                    }
                },
                Add | Sub | Mul | Div => {
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    // Integer arithmetic stays integral except division.
                    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                        return Ok(match op {
                            Add => Value::Int(a.wrapping_add(*b)),
                            Sub => Value::Int(a.wrapping_sub(*b)),
                            Mul => Value::Int(a.wrapping_mul(*b)),
                            Div => {
                                if *b == 0 {
                                    Value::Null // SQLite: x/0 is NULL
                                } else {
                                    Value::Float(*a as f64 / *b as f64)
                                }
                            }
                            _ => unreachable!(),
                        });
                    }
                    let (af, bf) = match (l.as_f64(), r.as_f64()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => return Err(Error::Type("arithmetic on non-numeric value".into())),
                    };
                    match op {
                        Add => Value::Float(af + bf),
                        Sub => Value::Float(af - bf),
                        Mul => Value::Float(af * bf),
                        Div => {
                            if bf == 0.0 {
                                Value::Null
                            } else {
                                Value::Float(af / bf)
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                And | Or => unreachable!("handled above"),
            }
        }
    })
}

/// Evaluate a predicate; NULL/unknown filters the row out (SQL WHERE).
fn eval_predicate(expr: &BoundExpr, ctx: &EvalCtx) -> Result<bool> {
    Ok(Truth::from_value(&eval(expr, ctx)?)? == Truth::True)
}

/// Materialise the FROM table and fold in each join.
fn scan_and_join(db: &Database, plan: &Plan) -> Result<Vec<Vec<Value>>> {
    let base = &db.tables()[plan.base_table_idx];
    let data = db
        .table_data(&base.name)
        .ok_or_else(|| Error::Execution(format!("missing data for {}", base.name)))?;
    let mut rows: Vec<Vec<Value>> = data.rows().to_vec();

    for step in &plan.joins {
        rows = hash_join(db, rows, step)?;
    }
    Ok(rows)
}

fn hash_join(db: &Database, probe: Vec<Vec<Value>>, step: &JoinStep) -> Result<Vec<Vec<Value>>> {
    let build_schema = &db.tables()[step.table_idx];
    let build_data = db
        .table_data(&build_schema.name)
        .ok_or_else(|| Error::Execution(format!("missing data for {}", build_schema.name)))?;

    // Build side: key → row indices. NULL keys excluded (never match).
    let mut table: HashMap<GroupKey, Vec<usize>> = HashMap::with_capacity(build_data.len());
    for (i, row) in build_data.iter().enumerate() {
        let key = &row[step.build_key];
        if !key.is_null() {
            table.entry(key.group_key()).or_default().push(i);
        }
    }

    let mut out = Vec::with_capacity(probe.len());
    for row in probe {
        let key = &row[step.probe_key];
        let matches = if key.is_null() {
            None
        } else {
            table.get(&key.group_key())
        };
        match matches {
            Some(idxs) => {
                for &i in idxs {
                    let mut joined = row.clone();
                    joined.extend_from_slice(&build_data.rows()[i]);
                    out.push(joined);
                }
            }
            None => {
                if step.kind == crate::ast::JoinKind::Left {
                    let mut joined = row.clone();
                    joined.extend(std::iter::repeat_with(|| Value::Null).take(step.table_arity));
                    out.push(joined);
                }
            }
        }
    }
    Ok(out)
}

/// Aggregate accumulator for one (group, aggregate) pair.
struct AggState {
    count: u64,
    sum: f64,
    saw_float: bool,
    min: Option<Value>,
    max: Option<Value>,
    distinct_seen: Option<HashSet<GroupKey>>,
}

impl AggState {
    fn new(distinct: bool) -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            saw_float: false,
            min: None,
            max: None,
            distinct_seen: distinct.then(HashSet::new),
        }
    }

    fn update(&mut self, v: &Value) {
        if v.is_null() {
            return; // aggregates skip NULLs
        }
        if let Some(seen) = &mut self.distinct_seen {
            if !seen.insert(v.group_key()) {
                return;
            }
        }
        self.count += 1;
        if let Some(f) = v.as_f64() {
            self.sum += f;
            if matches!(v, Value::Float(_)) {
                self.saw_float = true;
            }
        }
        let replace_min = self
            .min
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Less));
        if replace_min {
            self.min = Some(v.clone());
        }
        let replace_max = self
            .max
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Greater));
        if replace_max {
            self.max = Some(v.clone());
        }
    }

    fn finish(&self, agg: &BoundAgg) -> Value {
        use crate::ast::AggFunc::*;
        match agg.func {
            Count => Value::Int(self.count as i64),
            Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.saw_float {
                    Value::Float(self.sum)
                } else {
                    Value::Int(self.sum as i64)
                }
            }
            Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            Min => self.min.clone().unwrap_or(Value::Null),
            Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

fn run_aggregation(
    rows: &[Vec<Value>],
    agg_plan: &AggregatePlan,
) -> Result<Vec<(Vec<Value>, Vec<Value>)>> {
    // Group rows. Key = evaluated GROUP BY expressions.
    let mut groups: HashMap<Vec<GroupKey>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
    let mut order: Vec<Vec<GroupKey>> = Vec::new(); // first-seen order, deterministic

    for row in rows {
        let ctx = EvalCtx::row(row);
        let mut key_vals = Vec::with_capacity(agg_plan.group_by.len());
        for g in &agg_plan.group_by {
            key_vals.push(eval(g, &ctx)?);
        }
        let key: Vec<GroupKey> = key_vals.iter().map(Value::group_key).collect();
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (
                key_vals.clone(),
                agg_plan
                    .aggs
                    .iter()
                    .map(|a| AggState::new(a.distinct))
                    .collect(),
            )
        });
        for (agg, state) in agg_plan.aggs.iter().zip(entry.1.iter_mut()) {
            match &agg.arg {
                None => {
                    // COUNT(*): every row counts, including NULL-heavy ones.
                    state.count += 1;
                }
                Some(arg) => {
                    let v = eval(arg, &ctx)?;
                    state.update(&v);
                }
            }
        }
    }

    // Global aggregate over an empty input still yields one group.
    if groups.is_empty() && agg_plan.group_by.is_empty() {
        let states: Vec<AggState> = agg_plan
            .aggs
            .iter()
            .map(|a| AggState::new(a.distinct))
            .collect();
        let agg_values: Vec<Value> = agg_plan
            .aggs
            .iter()
            .zip(&states)
            .map(|(a, s)| s.finish(a))
            .collect();
        return Ok(vec![(Vec::new(), agg_values)]);
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let (key_vals, states) = groups.remove(&key).expect("group vanished");
        let agg_values: Vec<Value> = agg_plan
            .aggs
            .iter()
            .zip(&states)
            .map(|(a, s)| s.finish(a))
            .collect();
        out.push((key_vals, agg_values));
    }
    Ok(out)
}

/// Execute a bound plan.
pub fn execute_plan(db: &Database, plan: &Plan) -> Result<QueryResult> {
    let rows = scan_and_join(db, plan)?;

    // Filter.
    let mut filtered: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
    match &plan.filter {
        Some(f) => {
            for row in rows {
                if eval_predicate(f, &EvalCtx::row(&row))? {
                    filtered.push(row);
                }
            }
        }
        None => filtered = rows,
    }

    // Project (+aggregate) into (output row, sort key) pairs.
    let mut produced: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    match &plan.aggregate {
        Some(agg_plan) => {
            for (key_vals, agg_values) in run_aggregation(&filtered, agg_plan)? {
                let ctx = EvalCtx::group(&key_vals, &agg_values);
                if let Some(h) = &agg_plan.having {
                    if !eval_predicate(h, &ctx)? {
                        continue;
                    }
                }
                let mut out_row = Vec::with_capacity(plan.projections.len());
                for p in &plan.projections {
                    out_row.push(eval(p, &ctx)?);
                }
                let mut sort_key = Vec::with_capacity(plan.order_by.len());
                for (o, _) in &plan.order_by {
                    sort_key.push(eval(o, &ctx)?);
                }
                produced.push((out_row, sort_key));
            }
        }
        None => {
            for row in &filtered {
                let ctx = EvalCtx::row(row);
                let mut out_row = Vec::with_capacity(plan.projections.len());
                for p in &plan.projections {
                    out_row.push(eval(p, &ctx)?);
                }
                let mut sort_key = Vec::with_capacity(plan.order_by.len());
                for (o, _) in &plan.order_by {
                    sort_key.push(eval(o, &ctx)?);
                }
                produced.push((out_row, sort_key));
            }
        }
    }

    // DISTINCT on the projected row.
    if plan.distinct {
        let mut seen: HashSet<Vec<GroupKey>> = HashSet::with_capacity(produced.len());
        produced.retain(|(row, _)| seen.insert(row.iter().map(Value::group_key).collect()));
    }

    // ORDER BY: stable sort on the evaluated keys, NULLs first.
    if !plan.order_by.is_empty() {
        let descs: Vec<bool> = plan.order_by.iter().map(|(_, d)| *d).collect();
        produced.sort_by(|(_, ka), (_, kb)| {
            for ((a, b), desc) in ka.iter().zip(kb.iter()).zip(&descs) {
                let ord = a.total_cmp(b);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // LIMIT.
    if let Some(limit) = plan.limit {
        produced.truncate(limit as usize);
    }

    Ok(QueryResult {
        columns: plan.output_names.clone(),
        rows: produced.into_iter().map(|(row, _)| row).collect(),
        ordered: !plan.order_by.is_empty(),
    })
}

/// Bind and execute a parsed statement.
pub fn execute(db: &Database, stmt: &SelectStmt) -> Result<QueryResult> {
    let plan = bind(db, stmt)?;
    execute_plan(db, &plan)
}

/// Parse, bind and execute SQL text.
pub fn execute_sql(db: &Database, sql: &str) -> Result<QueryResult> {
    execute(db, &parse(sql)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, TableSchema};

    /// Small Formula-1 flavoured database echoing the paper's Figure 1a.
    fn f1_db() -> Database {
        let mut db = Database::new("formula_1");
        db.create_table(
            TableSchema::new("races")
                .column(ColumnDef::new("raceId", DataType::Int).primary_key())
                .column(ColumnDef::new("name", DataType::Text))
                .column(ColumnDef::new("year", DataType::Int)),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("lapTimes")
                .column(ColumnDef::new("raceId", DataType::Int))
                .column(ColumnDef::new("lap", DataType::Int))
                .column(ColumnDef::new("time", DataType::Float)),
        )
        .unwrap();
        for (id, name, year) in [
            (1, "Monaco GP", 2021),
            (2, "Suzuka GP", 2021),
            (3, "Monza GP", 2022),
        ] {
            db.insert(
                "races",
                vec![Value::Int(id), Value::text(name), Value::Int(year)],
            )
            .unwrap();
        }
        for (rid, lap, time) in [
            (1, 1, 92.3),
            (1, 2, 91.1),
            (2, 1, 88.4),
            (2, 2, 89.0),
            (3, 1, 85.2),
        ] {
            db.insert(
                "lapTimes",
                vec![Value::Int(rid), Value::Int(lap), Value::Float(time)],
            )
            .unwrap();
        }
        db
    }

    fn run(db: &Database, sql: &str) -> QueryResult {
        execute_sql(db, sql).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    #[test]
    fn select_filter_project() {
        let db = f1_db();
        let r = run(&db, "SELECT name FROM races WHERE year = 2021");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn order_by_and_limit() {
        let db = f1_db();
        let r = run(
            &db,
            "SELECT name FROM races ORDER BY year DESC, name LIMIT 1",
        );
        assert_eq!(r.rows, vec![vec![Value::text("Monza GP")]]);
    }

    #[test]
    fn paper_figure1a_query() {
        // "the race with the minimum first lap time" — the gold query of
        // Figure 1(a).
        let db = f1_db();
        let r = run(
            &db,
            "SELECT races.name FROM lapTimes JOIN races ON lapTimes.raceId = races.raceId \
             WHERE lapTimes.lap = 1 ORDER BY lapTimes.time LIMIT 1",
        );
        assert_eq!(r.rows, vec![vec![Value::text("Monza GP")]]);
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let mut db = f1_db();
        db.insert(
            "races",
            vec![Value::Int(9), Value::text("Ghost GP"), Value::Int(2023)],
        )
        .unwrap();
        let r = run(
            &db,
            "SELECT DISTINCT races.name FROM races JOIN lapTimes ON races.raceId = lapTimes.raceId",
        );
        assert_eq!(r.rows.len(), 3, "Ghost GP has no laps");
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut db = f1_db();
        db.insert(
            "races",
            vec![Value::Int(9), Value::text("Ghost GP"), Value::Int(2023)],
        )
        .unwrap();
        let r = run(
            &db,
            "SELECT races.name FROM races LEFT JOIN lapTimes ON races.raceId = lapTimes.raceId \
             WHERE lapTimes.raceId IS NULL",
        );
        assert_eq!(r.rows, vec![vec![Value::text("Ghost GP")]]);
    }

    #[test]
    fn group_by_aggregates() {
        let db = f1_db();
        let r = run(
            &db,
            "SELECT races.name, COUNT(*), MIN(lapTimes.time) FROM races \
             JOIN lapTimes ON races.raceId = lapTimes.raceId \
             GROUP BY races.name ORDER BY races.name",
        );
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], Value::text("Monaco GP"));
        assert_eq!(r.rows[0][1], Value::Int(2));
        assert_eq!(r.rows[0][2], Value::Float(91.1));
    }

    #[test]
    fn having_filters_groups() {
        let db = f1_db();
        let r = run(
            &db,
            "SELECT races.name FROM races JOIN lapTimes ON races.raceId = lapTimes.raceId \
             GROUP BY races.name HAVING COUNT(*) > 1 ORDER BY races.name",
        );
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn global_aggregates() {
        let db = f1_db();
        let r = run(&db, "SELECT COUNT(*), AVG(time), MAX(lap) FROM lapTimes");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(5));
        let avg = r.rows[0][1].as_f64().unwrap();
        assert!((avg - 89.2).abs() < 1e-9, "avg {avg}");
        assert_eq!(r.rows[0][2], Value::Int(2));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = f1_db();
        let r = run(
            &db,
            "SELECT COUNT(*), MIN(time) FROM lapTimes WHERE lap > 99",
        );
        assert_eq!(r.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn count_distinct() {
        let db = f1_db();
        let r = run(&db, "SELECT COUNT(DISTINCT raceId) FROM lapTimes");
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn aggregates_skip_nulls() {
        let mut db = f1_db();
        db.insert("lapTimes", vec![Value::Int(1), Value::Int(3), Value::Null])
            .unwrap();
        let r = run(&db, "SELECT COUNT(time), COUNT(*) FROM lapTimes");
        assert_eq!(r.rows[0][0], Value::Int(5));
        assert_eq!(r.rows[0][1], Value::Int(6));
    }

    #[test]
    fn distinct_projection() {
        let db = f1_db();
        let r = run(&db, "SELECT DISTINCT year FROM races");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn where_null_comparison_filters_out() {
        let mut db = f1_db();
        db.insert("lapTimes", vec![Value::Int(1), Value::Int(4), Value::Null])
            .unwrap();
        // NULL time fails both time > 90 and NOT(time > 90).
        let a = run(&db, "SELECT COUNT(*) FROM lapTimes WHERE time > 90");
        let b = run(&db, "SELECT COUNT(*) FROM lapTimes WHERE NOT time > 90");
        let total = run(&db, "SELECT COUNT(*) FROM lapTimes");
        let a = a.rows[0][0].as_f64().unwrap();
        let b = b.rows[0][0].as_f64().unwrap();
        let total = total.rows[0][0].as_f64().unwrap();
        assert_eq!(
            a + b + 1.0,
            total,
            "NULL row must fall through both predicates"
        );
    }

    #[test]
    fn arithmetic_and_division() {
        let db = f1_db();
        let r = run(&db, "SELECT time * 2 + 1 FROM lapTimes WHERE raceId = 3");
        assert_eq!(r.rows[0][0], Value::Float(171.4));
        let r = run(&db, "SELECT lap / 0 FROM lapTimes WHERE raceId = 3");
        assert_eq!(r.rows[0][0], Value::Null, "division by zero yields NULL");
    }

    #[test]
    fn like_and_in() {
        let db = f1_db();
        let r = run(
            &db,
            "SELECT name FROM races WHERE name LIKE 'Mon%' ORDER BY name",
        );
        assert_eq!(r.rows.len(), 2);
        let r = run(
            &db,
            "SELECT name FROM races WHERE raceId IN (1, 3) ORDER BY raceId",
        );
        assert_eq!(r.rows[0][0], Value::text("Monaco GP"));
        assert_eq!(r.rows.len(), 2);
        let r = run(&db, "SELECT name FROM races WHERE name LIKE '_onaco GP'");
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn three_way_join() {
        let mut db = f1_db();
        db.create_table(
            TableSchema::new("circuits")
                .column(ColumnDef::new("circuitId", DataType::Int).primary_key())
                .column(ColumnDef::new("country", DataType::Text)),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("raceCircuits")
                .column(ColumnDef::new("raceId", DataType::Int))
                .column(ColumnDef::new("circuitId", DataType::Int)),
        )
        .unwrap();
        db.insert("circuits", vec![Value::Int(10), Value::text("Italy")])
            .unwrap();
        db.insert("raceCircuits", vec![Value::Int(3), Value::Int(10)])
            .unwrap();
        let r = run(
            &db,
            "SELECT circuits.country FROM races \
             JOIN raceCircuits ON races.raceId = raceCircuits.raceId \
             JOIN circuits ON raceCircuits.circuitId = circuits.circuitId",
        );
        assert_eq!(r.rows, vec![vec![Value::text("Italy")]]);
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut db = f1_db();
        db.insert(
            "lapTimes",
            vec![Value::Null, Value::Int(1), Value::Float(80.0)],
        )
        .unwrap();
        let r = run(
            &db,
            "SELECT COUNT(*) FROM lapTimes JOIN races ON lapTimes.raceId = races.raceId",
        );
        assert_eq!(r.rows[0][0], Value::Int(5), "NULL raceId row must not join");
    }

    #[test]
    fn like_matcher_unit() {
        assert!(like_match("Monaco GP", "Mon%"));
        assert!(like_match("Monaco GP", "%GP"));
        assert!(like_match("Monaco GP", "%aco%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("x%y", "x%y"));
    }
}

//! Error type shared across the engine.

use std::fmt;

/// Engine-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong while parsing, planning or executing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Tokeniser/parser failure with a human-readable message.
    Parse(String),
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column does not exist (or is ambiguous).
    UnknownColumn(String),
    /// A column reference matches more than one table in scope.
    AmbiguousColumn(String),
    /// Catalog manipulation errors (duplicate table, arity mismatch…).
    Catalog(String),
    /// Type errors during planning or evaluation.
    Type(String),
    /// Anything else the executor cannot handle.
    Execution(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::UnknownTable(t) => write!(f, "unknown table: {t}"),
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            Error::UnknownTable("t".into()).to_string(),
            "unknown table: t"
        );
        assert_eq!(Error::Parse("x".into()).to_string(), "parse error: x");
        assert_eq!(
            Error::AmbiguousColumn("c".into()).to_string(),
            "ambiguous column: c"
        );
    }
}

//! Logical planning: resolve a parsed [`SelectStmt`] against a
//! [`Database`] catalog into a bound, index-addressed plan the executor
//! can run without further name lookups.
//!
//! Binding happens in two phases, mirroring SQL semantics:
//!
//! * **row phase** — expressions evaluated against a joined input row
//!   (WHERE, join keys, GROUP BY expressions, aggregate arguments):
//!   column references become absolute indices into the concatenated row.
//! * **output phase** — expressions evaluated per *group* in aggregated
//!   queries (projections, HAVING, ORDER BY): aggregate calls become
//!   references into the computed aggregate list, subtrees syntactically
//!   equal to a GROUP BY expression become group-key references, and any
//!   other bare column is rejected ("must appear in GROUP BY"), exactly
//!   the check real engines perform.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::schema::Database;
use crate::value::Value;

/// A bound expression: columns are absolute row indices; in the output
/// phase aggregates and group keys are positional references.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    Literal(Value),
    ColumnIdx(usize),
    Binary {
        op: BinOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    Not(Box<BoundExpr>),
    IsNull {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    Like {
        expr: Box<BoundExpr>,
        pattern: String,
        negated: bool,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// Output phase: value of the i-th computed aggregate.
    AggRef(usize),
    /// Output phase: value of the i-th GROUP BY expression.
    GroupKeyRef(usize),
}

/// A bound aggregate: `arg = None` is `COUNT(*)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundAgg {
    pub func: AggFunc,
    pub arg: Option<BoundExpr>,
    pub distinct: bool,
}

/// One join step: probe-side absolute key index, build-side table index
/// in the catalog, build-side local key index, and the join kind.
#[derive(Debug, Clone)]
pub struct JoinStep {
    pub kind: JoinKind,
    pub table_idx: usize,
    pub table_arity: usize,
    /// Key index into the accumulated (left) row.
    pub probe_key: usize,
    /// Key index local to the build (right) table's row.
    pub build_key: usize,
}

/// Fully bound physical plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Catalog index of the FROM table.
    pub base_table_idx: usize,
    pub joins: Vec<JoinStep>,
    pub filter: Option<BoundExpr>,
    /// Set iff the query aggregates (explicit GROUP BY or any aggregate).
    pub aggregate: Option<AggregatePlan>,
    pub projections: Vec<BoundExpr>,
    pub output_names: Vec<String>,
    pub distinct: bool,
    /// `(expr, descending)` pairs; output-phase exprs when aggregated.
    pub order_by: Vec<(BoundExpr, bool)>,
    pub limit: Option<u64>,
}

/// Aggregation sub-plan.
#[derive(Debug, Clone)]
pub struct AggregatePlan {
    /// Row-phase GROUP BY expressions (may be empty: global aggregate).
    pub group_by: Vec<BoundExpr>,
    pub aggs: Vec<BoundAgg>,
    /// Output-phase HAVING predicate.
    pub having: Option<BoundExpr>,
}

/// Name-resolution scope: the tables contributing to the joined row.
struct Scope<'a> {
    db: &'a Database,
    /// `(table name, catalog index, absolute column offset)`.
    entries: Vec<(String, usize, usize)>,
    width: usize,
}

impl<'a> Scope<'a> {
    fn new(db: &'a Database) -> Self {
        Scope {
            db,
            entries: Vec::new(),
            width: 0,
        }
    }

    fn add_table(&mut self, name: &str) -> Result<usize> {
        let idx = self
            .db
            .table_index(name)
            .ok_or_else(|| Error::UnknownTable(name.into()))?;
        let arity = self.db.tables()[idx].columns.len();
        self.entries
            .push((self.db.tables()[idx].name.clone(), idx, self.width));
        self.width += arity;
        Ok(idx)
    }

    /// Resolve a column reference to an absolute index in the joined row.
    fn resolve(&self, c: &ColumnRef) -> Result<usize> {
        match &c.table {
            Some(t) => {
                let (_, tidx, offset) = self
                    .entries
                    .iter()
                    .find(|(name, _, _)| name.eq_ignore_ascii_case(t))
                    .ok_or_else(|| Error::UnknownTable(t.clone()))?;
                let schema = &self.db.tables()[*tidx];
                let cidx = schema
                    .column_index(&c.column)
                    .ok_or_else(|| Error::UnknownColumn(format!("{t}.{}", c.column)))?;
                Ok(offset + cidx)
            }
            None => {
                let mut hit = None;
                for (name, tidx, offset) in &self.entries {
                    if let Some(cidx) = self.db.tables()[*tidx].column_index(&c.column) {
                        if hit.is_some() {
                            return Err(Error::AmbiguousColumn(c.column.clone()));
                        }
                        hit = Some((name.clone(), offset + cidx));
                    }
                }
                hit.map(|(_, i)| i)
                    .ok_or_else(|| Error::UnknownColumn(c.column.clone()))
            }
        }
    }
}

/// Row-phase binding: every column becomes an absolute index; aggregate
/// calls are illegal here (caller extracts them first).
fn bind_row_expr(scope: &Scope, e: &Expr) -> Result<BoundExpr> {
    Ok(match e {
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Column(c) => BoundExpr::ColumnIdx(scope.resolve(c)?),
        Expr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(bind_row_expr(scope, left)?),
            right: Box::new(bind_row_expr(scope, right)?),
        },
        Expr::Not(inner) => BoundExpr::Not(Box::new(bind_row_expr(scope, inner)?)),
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(bind_row_expr(scope, expr)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => BoundExpr::Like {
            expr: Box::new(bind_row_expr(scope, expr)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(bind_row_expr(scope, expr)?),
            list: list.clone(),
            negated: *negated,
        },
        Expr::Agg { .. } => {
            return Err(Error::Type("aggregate not allowed in this context".into()))
        }
    })
}

/// Output-phase binding for aggregated queries: group-by subtrees →
/// `GroupKeyRef`, aggregate calls → `AggRef` (registering their bound
/// arguments in `aggs`), anything else recurses; stray columns error.
fn bind_output_expr(
    scope: &Scope,
    e: &Expr,
    group_by: &[Expr],
    aggs: &mut Vec<BoundAgg>,
    agg_sources: &mut Vec<Expr>,
) -> Result<BoundExpr> {
    // A subtree that *is* a group-by expression is a key lookup.
    if let Some(i) = group_by.iter().position(|g| g == e) {
        return Ok(BoundExpr::GroupKeyRef(i));
    }
    Ok(match e {
        Expr::Agg {
            func,
            arg,
            distinct,
        } => {
            // Reuse an identical aggregate if already registered (SELECT
            // MIN(x), MIN(x) computes once).
            if let Some(i) = agg_sources.iter().position(|s| s == e) {
                return Ok(BoundExpr::AggRef(i));
            }
            let bound_arg = match arg {
                Some(a) => Some(bind_row_expr(scope, a)?),
                None => None,
            };
            aggs.push(BoundAgg {
                func: *func,
                arg: bound_arg,
                distinct: *distinct,
            });
            agg_sources.push(e.clone());
            BoundExpr::AggRef(aggs.len() - 1)
        }
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Column(c) => {
            return Err(Error::Type(format!(
                "column {c} must appear in GROUP BY or inside an aggregate"
            )))
        }
        Expr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(bind_output_expr(scope, left, group_by, aggs, agg_sources)?),
            right: Box::new(bind_output_expr(scope, right, group_by, aggs, agg_sources)?),
        },
        Expr::Not(inner) => BoundExpr::Not(Box::new(bind_output_expr(
            scope,
            inner,
            group_by,
            aggs,
            agg_sources,
        )?)),
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(bind_output_expr(scope, expr, group_by, aggs, agg_sources)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => BoundExpr::Like {
            expr: Box::new(bind_output_expr(scope, expr, group_by, aggs, agg_sources)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(bind_output_expr(scope, expr, group_by, aggs, agg_sources)?),
            list: list.clone(),
            negated: *negated,
        },
    })
}

/// Bind a statement into an executable [`Plan`].
pub fn bind(db: &Database, stmt: &SelectStmt) -> Result<Plan> {
    if stmt.projections.is_empty() {
        return Err(Error::Type(
            "SELECT requires at least one projection".into(),
        ));
    }
    let mut scope = Scope::new(db);
    let base_table_idx = scope.add_table(&stmt.from)?;

    let mut joins = Vec::with_capacity(stmt.joins.len());
    for j in &stmt.joins {
        // The probe key must resolve against tables already in scope;
        // the build key against the new table. Accept either writing
        // order (`a.id = b.id` or `b.id = a.id`).
        let new_idx = db
            .table_index(&j.table)
            .ok_or_else(|| Error::UnknownTable(j.table.clone()))?;
        let resolve_pair = |in_scope: &ColumnRef,
                            on_new: &ColumnRef,
                            scope: &Scope|
         -> Result<(usize, usize)> {
            let probe = scope.resolve(in_scope)?;
            let build = db.tables()[new_idx]
                .column_index(&on_new.column)
                .ok_or_else(|| Error::UnknownColumn(format!("{}.{}", j.table, on_new.column)))?;
            // If qualified, the build side must actually name the joined table.
            if let Some(t) = &on_new.table {
                if !t.eq_ignore_ascii_case(&j.table) {
                    return Err(Error::Type(format!(
                        "join condition must reference joined table {}, got {t}",
                        j.table
                    )));
                }
            }
            Ok((probe, build))
        };
        let names_new = |c: &ColumnRef| {
            c.table
                .as_deref()
                .is_some_and(|t| t.eq_ignore_ascii_case(&j.table))
        };
        let (probe_key, build_key) = if names_new(&j.right) {
            resolve_pair(&j.left, &j.right, &scope)?
        } else if names_new(&j.left) {
            resolve_pair(&j.right, &j.left, &scope)?
        } else {
            return Err(Error::Type(format!(
                "join ON clause must reference joined table {}",
                j.table
            )));
        };
        let table_arity = db.tables()[new_idx].columns.len();
        scope.add_table(&j.table)?;
        joins.push(JoinStep {
            kind: j.kind,
            table_idx: new_idx,
            table_arity,
            probe_key,
            build_key,
        });
    }

    let filter = stmt
        .where_clause
        .as_ref()
        .map(|w| bind_row_expr(&scope, w))
        .transpose()?;

    let has_agg = stmt.projections.iter().any(|p| p.expr.contains_agg())
        || stmt.having.as_ref().is_some_and(|h| h.contains_agg())
        || stmt.order_by.iter().any(|o| o.expr.contains_agg());
    let grouped = !stmt.group_by.is_empty() || has_agg || stmt.having.is_some();

    let output_names: Vec<String> = stmt.projections.iter().map(|p| p.output_name()).collect();

    if grouped {
        let group_by_bound: Vec<BoundExpr> = stmt
            .group_by
            .iter()
            .map(|g| bind_row_expr(&scope, g))
            .collect::<Result<_>>()?;
        let mut aggs = Vec::new();
        let mut agg_sources = Vec::new();
        let projections: Vec<BoundExpr> = stmt
            .projections
            .iter()
            .map(|p| bind_output_expr(&scope, &p.expr, &stmt.group_by, &mut aggs, &mut agg_sources))
            .collect::<Result<_>>()?;
        let having = stmt
            .having
            .as_ref()
            .map(|h| bind_output_expr(&scope, h, &stmt.group_by, &mut aggs, &mut agg_sources))
            .transpose()?;
        let order_by: Vec<(BoundExpr, bool)> = stmt
            .order_by
            .iter()
            .map(|o| {
                bind_output_expr(&scope, &o.expr, &stmt.group_by, &mut aggs, &mut agg_sources)
                    .map(|b| (b, o.desc))
            })
            .collect::<Result<_>>()?;
        Ok(Plan {
            base_table_idx,
            joins,
            filter,
            aggregate: Some(AggregatePlan {
                group_by: group_by_bound,
                aggs,
                having,
            }),
            projections,
            output_names,
            distinct: stmt.distinct,
            order_by,
            limit: stmt.limit,
        })
    } else {
        let projections: Vec<BoundExpr> = stmt
            .projections
            .iter()
            .map(|p| bind_row_expr(&scope, &p.expr))
            .collect::<Result<_>>()?;
        let order_by: Vec<(BoundExpr, bool)> = stmt
            .order_by
            .iter()
            .map(|o| bind_row_expr(&scope, &o.expr).map(|b| (b, o.desc)))
            .collect::<Result<_>>()?;
        Ok(Plan {
            base_table_idx,
            joins,
            filter,
            aggregate: None,
            projections,
            output_names,
            distinct: stmt.distinct,
            order_by,
            limit: stmt.limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::schema::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("races")
                .column(ColumnDef::new("raceId", DataType::Int).primary_key())
                .column(ColumnDef::new("name", DataType::Text)),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("lapTimes")
                .column(ColumnDef::new("raceId", DataType::Int))
                .column(ColumnDef::new("lap", DataType::Int))
                .column(ColumnDef::new("time", DataType::Float)),
        )
        .unwrap();
        db
    }

    #[test]
    fn binds_qualified_and_bare_columns() {
        let db = db();
        let plan = bind(
            &db,
            &parse("SELECT races.name FROM races WHERE raceId = 1").unwrap(),
        )
        .unwrap();
        assert_eq!(plan.projections, vec![BoundExpr::ColumnIdx(1)]);
        assert!(matches!(
            plan.filter,
            Some(BoundExpr::Binary { ref left, .. }) if **left == BoundExpr::ColumnIdx(0)
        ));
    }

    #[test]
    fn join_offsets_are_absolute() {
        let db = db();
        let plan = bind(
            &db,
            &parse(
                "SELECT lapTimes.time FROM races JOIN lapTimes ON races.raceId = lapTimes.raceId",
            )
            .unwrap(),
        )
        .unwrap();
        // races has 2 columns, so lapTimes.time is absolute index 2+2=4.
        assert_eq!(plan.projections, vec![BoundExpr::ColumnIdx(4)]);
        assert_eq!(plan.joins[0].probe_key, 0);
        assert_eq!(plan.joins[0].build_key, 0);
    }

    #[test]
    fn join_sides_can_be_swapped() {
        let db = db();
        let plan = bind(
            &db,
            &parse(
                "SELECT lapTimes.time FROM races JOIN lapTimes ON lapTimes.raceId = races.raceId",
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(plan.joins[0].probe_key, 0);
        assert_eq!(plan.joins[0].build_key, 0);
    }

    #[test]
    fn ambiguous_bare_column_is_error() {
        let db = db();
        let err = bind(
            &db,
            &parse("SELECT raceId FROM races JOIN lapTimes ON races.raceId = lapTimes.raceId")
                .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::AmbiguousColumn(_)));
    }

    #[test]
    fn unknown_names_error() {
        let db = db();
        assert!(matches!(
            bind(&db, &parse("SELECT x FROM nope").unwrap()),
            Err(Error::UnknownTable(_))
        ));
        assert!(matches!(
            bind(&db, &parse("SELECT nope FROM races").unwrap()),
            Err(Error::UnknownColumn(_))
        ));
    }

    #[test]
    fn grouped_binding_classifies_expressions() {
        let db = db();
        let plan = bind(
            &db,
            &parse(
                "SELECT name, COUNT(*), MIN(time) FROM races \
                 JOIN lapTimes ON races.raceId = lapTimes.raceId \
                 GROUP BY name HAVING COUNT(*) > 1 ORDER BY MIN(time)",
            )
            .unwrap(),
        )
        .unwrap();
        let agg = plan.aggregate.as_ref().unwrap();
        assert_eq!(agg.group_by.len(), 1);
        // COUNT(*) and MIN(time): two distinct aggregates, COUNT reused
        // by HAVING, MIN reused by ORDER BY.
        assert_eq!(agg.aggs.len(), 2);
        assert_eq!(plan.projections[0], BoundExpr::GroupKeyRef(0));
        assert_eq!(plan.projections[1], BoundExpr::AggRef(0));
        assert_eq!(plan.projections[2], BoundExpr::AggRef(1));
        assert_eq!(plan.order_by[0].0, BoundExpr::AggRef(1));
    }

    #[test]
    fn bare_column_outside_group_by_is_rejected() {
        let db = db();
        let err = bind(
            &db,
            &parse("SELECT name, COUNT(*) FROM races GROUP BY raceId").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Type(_)), "{err:?}");
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let db = db();
        let plan = bind(&db, &parse("SELECT COUNT(*) FROM races").unwrap()).unwrap();
        let agg = plan.aggregate.as_ref().unwrap();
        assert!(agg.group_by.is_empty());
        assert_eq!(agg.aggs.len(), 1);
    }

    #[test]
    fn join_on_unrelated_tables_is_error() {
        let db = db();
        let err = bind(
            &db,
            &parse("SELECT name FROM races JOIN lapTimes ON races.raceId = races.raceId").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Type(_)));
    }
}

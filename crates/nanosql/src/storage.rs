//! Row storage.
//!
//! A table's data is a flat `Vec` of rows. The engine materialises
//! intermediate results anyway (datasets here are thousands of rows, not
//! billions), so simple beats clever: contiguous rows, no pages, no
//! indexes — a full scan *is* the access path.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Column-count-checked row container for one table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableData {
    arity: usize,
    rows: Vec<Vec<Value>>,
}

impl TableData {
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            rows: Vec::new(),
        }
    }

    /// Append a row. Arity is validated by the catalog before calling;
    /// the debug assertion catches internal misuse.
    pub fn push(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.rows.push(row);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    pub fn iter(&self) -> impl Iterator<Item = &Vec<Value>> {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut t = TableData::new(2);
        t.push(vec![Value::Int(1), Value::text("a")]);
        t.push(vec![Value::Int(2), Value::text("b")]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.arity(), 2);
        let firsts: Vec<&Value> = t.iter().map(|r| &r[0]).collect();
        assert_eq!(firsts, vec![&Value::Int(1), &Value::Int(2)]);
    }

    #[test]
    fn empty_table() {
        let t = TableData::new(3);
        assert!(t.is_empty());
        assert_eq!(t.rows().len(), 0);
    }
}

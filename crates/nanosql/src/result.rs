//! Query results and execution-accuracy comparison.
//!
//! The paper's downstream metric is **execution accuracy (EX)**: a
//! predicted query is correct iff its execution result matches the gold
//! query's result on the same database (§4.2, after BIRD/Spider). The
//! comparison used by those benchmarks is *set-valued*: row order is
//! ignored unless the gold query itself orders its output, and float
//! values are compared with tolerance. [`results_match`] implements
//! exactly that.

use crate::error::Result;
use crate::exec::execute_sql;
use crate::schema::Database;
use crate::value::{GroupKey, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The output of a query: column names plus rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    /// Whether the producing query had an ORDER BY (order is semantic).
    pub ordered: bool,
}

impl QueryResult {
    pub fn empty() -> Self {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            ordered: false,
        }
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Canonical multiset fingerprint of the rows (group-key projection
    /// of every value, rows sorted), used for unordered comparison.
    fn multiset(&self) -> HashMap<Vec<GroupKey>, usize> {
        let mut counts: HashMap<Vec<GroupKey>, usize> = HashMap::with_capacity(self.rows.len());
        for row in &self.rows {
            *counts
                .entry(row.iter().map(Value::group_key).collect())
                .or_insert(0) += 1;
        }
        counts
    }

    /// Ordered row-sequence fingerprint.
    fn sequence(&self) -> Vec<Vec<GroupKey>> {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::group_key).collect())
            .collect()
    }
}

/// Do two results denote the same answer?
///
/// * Column *names* are ignored (benchmarks compare values only — the
///   gold query and a model query rarely agree on aliases).
/// * Arity must match.
/// * If `gold.ordered`, rows must match as a sequence; otherwise as a
///   multiset.
/// * Values compare via [`Value::group_key`], which buckets floats to
///   1e-9 so aggregate round-off does not flip EX.
pub fn results_match(gold: &QueryResult, pred: &QueryResult) -> bool {
    if gold.n_cols() != pred.n_cols() {
        return false;
    }
    if gold.rows.len() != pred.rows.len() {
        return false;
    }
    if gold.ordered {
        gold.sequence() == pred.sequence()
    } else {
        gold.multiset() == pred.multiset()
    }
}

/// Outcome of comparing a predicted SQL string against gold on a DB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecOutcome {
    /// Results matched.
    Correct,
    /// Both executed; results differ.
    WrongResult,
    /// Predicted query failed to parse/bind/execute.
    PredictionError,
    /// The *gold* query failed — a workload bug, surfaced loudly.
    GoldError,
}

impl ExecOutcome {
    pub fn is_correct(self) -> bool {
        self == ExecOutcome::Correct
    }
}

/// Execute gold and predicted SQL and compare (the EX primitive).
pub fn execution_accuracy(db: &Database, gold_sql: &str, pred_sql: &str) -> ExecOutcome {
    let gold = match execute_sql(db, gold_sql) {
        Ok(r) => r,
        Err(_) => return ExecOutcome::GoldError,
    };
    let pred = match execute_sql(db, pred_sql) {
        Ok(r) => r,
        Err(_) => return ExecOutcome::PredictionError,
    };
    if results_match(&gold, &pred) {
        ExecOutcome::Correct
    } else {
        ExecOutcome::WrongResult
    }
}

/// Convenience: strict-result variant returning `Result` for callers that
/// treat gold failure as fatal.
pub fn execution_accuracy_strict(db: &Database, gold_sql: &str, pred_sql: &str) -> Result<bool> {
    let gold = execute_sql(db, gold_sql)?;
    let pred = match execute_sql(db, pred_sql) {
        Ok(r) => r,
        Err(_) => return Ok(false),
    };
    Ok(results_match(&gold, &pred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::new("t")
                .column(ColumnDef::new("id", DataType::Int).primary_key())
                .column(ColumnDef::new("grp", DataType::Text))
                .column(ColumnDef::new("x", DataType::Float)),
        )
        .unwrap();
        for (id, g, x) in [(1, "a", 1.5), (2, "a", 2.5), (3, "b", 10.0)] {
            db.insert("t", vec![Value::Int(id), Value::text(g), Value::Float(x)])
                .unwrap();
        }
        db
    }

    fn qr(rows: Vec<Vec<Value>>, ordered: bool) -> QueryResult {
        QueryResult {
            columns: vec!["c".into(); rows.first().map_or(0, |r| r.len())],
            rows,
            ordered,
        }
    }

    #[test]
    fn unordered_match_ignores_row_order() {
        let a = qr(vec![vec![Value::Int(1)], vec![Value::Int(2)]], false);
        let b = qr(vec![vec![Value::Int(2)], vec![Value::Int(1)]], false);
        assert!(results_match(&a, &b));
    }

    #[test]
    fn ordered_match_requires_sequence() {
        let a = qr(vec![vec![Value::Int(1)], vec![Value::Int(2)]], true);
        let b = qr(vec![vec![Value::Int(2)], vec![Value::Int(1)]], true);
        assert!(!results_match(&a, &b));
    }

    #[test]
    fn multiset_counts_duplicates() {
        let a = qr(vec![vec![Value::Int(1)], vec![Value::Int(1)]], false);
        let b = qr(vec![vec![Value::Int(1)]], false);
        assert!(!results_match(&a, &b), "row counts differ");
    }

    #[test]
    fn arity_mismatch_fails() {
        let a = qr(vec![vec![Value::Int(1), Value::Int(2)]], false);
        let b = qr(vec![vec![Value::Int(1)]], false);
        assert!(!results_match(&a, &b));
    }

    #[test]
    fn float_tolerance() {
        let a = qr(vec![vec![Value::Float(0.1 + 0.2)]], false);
        let b = qr(vec![vec![Value::Float(0.3)]], false);
        assert!(results_match(&a, &b));
    }

    #[test]
    fn int_float_unification() {
        let a = qr(vec![vec![Value::Int(3)]], false);
        let b = qr(vec![vec![Value::Float(3.0)]], false);
        assert!(results_match(&a, &b), "SUM(int) may come back float");
    }

    #[test]
    fn execution_accuracy_outcomes() {
        let db = db();
        assert_eq!(
            execution_accuracy(&db, "SELECT grp FROM t", "SELECT grp FROM t"),
            ExecOutcome::Correct
        );
        assert_eq!(
            execution_accuracy(&db, "SELECT grp FROM t", "SELECT grp FROM t WHERE x > 2"),
            ExecOutcome::WrongResult
        );
        assert_eq!(
            execution_accuracy(&db, "SELECT grp FROM t", "SELECT nope FROM t"),
            ExecOutcome::PredictionError
        );
        assert_eq!(
            execution_accuracy(&db, "SELECT nope FROM t", "SELECT grp FROM t"),
            ExecOutcome::GoldError
        );
    }

    #[test]
    fn equivalent_queries_match_despite_aliasing() {
        let db = db();
        assert!(execution_accuracy_strict(
            &db,
            "SELECT grp, SUM(x) FROM t GROUP BY grp",
            "SELECT grp, SUM(x) AS total FROM t GROUP BY grp"
        )
        .unwrap());
    }

    #[test]
    fn ordered_gold_vs_reordered_prediction() {
        let db = db();
        // Gold orders ascending; predicted orders descending → EX fails.
        assert!(!execution_accuracy_strict(
            &db,
            "SELECT id FROM t ORDER BY x",
            "SELECT id FROM t ORDER BY x DESC"
        )
        .unwrap());
    }
}

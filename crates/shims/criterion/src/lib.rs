//! Minimal criterion-compatible benchmark harness.
//!
//! Real measurement loop (warm-up + timed batches, median-of-batches
//! reporting) behind the criterion 0.5 API surface this workspace uses.
//! Set `RTS_BENCH_SMOKE=1` to run every benchmark for a single
//! iteration — the CI bitrot check.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted for API compatibility; the
/// shim always re-runs the setup closure per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    smoke: bool,
    warm_up: Duration,
    measure: Duration,
}

impl Config {
    fn from_env() -> Self {
        let smoke = std::env::var("RTS_BENCH_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
        Self {
            smoke,
            warm_up: Duration::from_millis(150),
            measure: Duration::from_millis(600),
        }
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    config: Config,
    /// (total time, iterations) recorded by the last `iter*` call.
    sample: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(config: Config) -> Self {
        Self {
            config,
            sample: None,
        }
    }

    /// Time `routine` over repeated calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.config.smoke {
            let t0 = Instant::now();
            black_box(routine());
            self.sample = Some((t0.elapsed(), 1));
            return;
        }
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target: u64 =
            ((self.config.measure.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 50_000_000);
        let t0 = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.sample = Some((t0.elapsed(), target));
    }

    /// Time `routine` over inputs produced by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let iters: u64 = if self.config.smoke { 1 } else { 64 };
        let mut total = Duration::ZERO;
        let mut done: u64 = 0;
        let budget_start = Instant::now();
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
            done += 1;
            if !self.config.smoke && budget_start.elapsed() > self.config.measure * 2 {
                break;
            }
        }
        self.sample = Some((total, done.max(1)));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(config: Config, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(config);
    f(&mut b);
    match b.sample {
        Some((total, iters)) => {
            let ns = total.as_secs_f64() * 1e9 / iters as f64;
            println!(
                "{name:<55} time: {:>12}/iter  ({iters} iters)",
                format_ns(ns)
            );
        }
        None => println!("{name:<55} (no measurement recorded)"),
    }
}

/// Top-level benchmark driver (criterion-compatible subset).
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            config: Config::from_env(),
        }
    }
}

impl Criterion {
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(self.config, &id.into(), &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: self.config,
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named group; benchmark ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    config: Config,
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.config, &full, &mut f);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_single_iteration() {
        let config = Config {
            smoke: true,
            ..Config::from_env()
        };
        let mut b = Bencher::new(config);
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.sample.unwrap().1, 1);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let config = Config {
            smoke: true,
            ..Config::from_env()
        };
        let mut b = Bencher::new(config);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.sample.is_some());
    }
}

//! API-compatible stand-in for the parts of `serde` this workspace
//! uses: `#[derive(Serialize, Deserialize)]` over concrete types, with a
//! simple self-describing [`Value`] data model that `serde_json` (the
//! sibling shim) renders to and parses from JSON.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every `Serialize` type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All integers ride in an `i128` so the full `u64`/`i64` ranges
    /// round-trip exactly.
    Int(i128),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered map (no key hashing — deterministic output).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lower a value into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Object-field lookup helper used by the derive expansion.
pub fn __get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Missing-tolerant lookup the derive expansion uses for `Option<…>`
/// fields: an absent key reads as [`Value::Null`], so optional fields
/// added after a snapshot was written deserialize to `None` instead of
/// failing the whole record (the real serde's `Option` + default
/// behaviour this workspace relies on for `BENCH_rts.json`).
pub fn __get_opt<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match v {
                    Value::Int(i) => *i,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    _ => return Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                };
                <$t>::try_from(i)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::custom("expected pair"))?;
        if arr.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected triple"))?;
        if arr.len() != 3 {
            return Err(Error::custom("expected 3-element array"));
        }
        Ok((
            A::from_value(&arr[0])?,
            B::from_value(&arr[1])?,
            C::from_value(&arr[2])?,
        ))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if arr.len() != N {
            return Err(Error::custom(format!("expected array of length {N}")));
        }
        let items: Vec<T> = arr.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialized output is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

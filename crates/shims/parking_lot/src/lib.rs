//! `parking_lot::Mutex` stand-in over `std::sync::Mutex`: same
//! non-poisoning API (a poisoned std lock just yields its inner data).

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}

//! `parking_lot` stand-ins over `std::sync` primitives: the same
//! non-poisoning API (a poisoned std lock just yields its inner data).
//! Covers the surface the workspace uses: [`Mutex`], the
//! reader-parallel [`RwLock`] (the serve engine's context cache), and
//! [`Condvar`] (its work/client queues).

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Mutex");
        match self.try_lock() {
            Some(guard) => d.field("data", &&*guard),
            None => d.field("data", &"<locked>"),
        };
        d.finish()
    }
}

/// `parking_lot::RwLock` stand-in over `std::sync::RwLock`: multiple
/// concurrent readers, exclusive writers, no poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("RwLock");
        match self.try_read() {
            Some(guard) => d.field("data", &&*guard),
            None => d.field("data", &"<locked>"),
        };
        d.finish()
    }
}

/// Result of a [`Condvar::wait_for`]: did the wait end by timeout?
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// `parking_lot::Condvar` stand-in over `std::sync::Condvar`.
///
/// The parking_lot API takes the guard by `&mut` while std's consumes
/// and returns it; the adapters below bridge the two by moving the
/// guard out and writing the re-acquired one back in. A poisoned lock
/// comes back as `Err` carrying the guard and is unwrapped, so the
/// slot is rewritten on both regular paths. The one way std's wait can
/// *panic* is waiting one condvar on two different mutexes; unwinding
/// through the moved-out guard would double-drop it (UB), so that
/// misuse aborts the process instead — stricter than real parking_lot
/// (which tolerates it), never unsound.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

/// Run `f` (a std condvar wait consuming a moved-out guard) and abort
/// on unwind: by the time `f` panics the duplicated guard has been
/// consumed and dropped inside `f`, and letting the caller's original
/// drop too would be a double unlock.
fn wait_or_abort<R>(f: impl FnOnce() -> R) -> R {
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            eprintln!("parking_lot shim: Condvar used with more than one Mutex — aborting");
            std::process::abort();
        }
    }
    let bomb = AbortOnDrop;
    let out = f();
    std::mem::forget(bomb);
    out
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically release the lock and block until notified; the lock
    /// is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: `taken` moves the guard out of the caller's slot;
        // `std::sync::Condvar::wait` consumes it and returns the
        // re-acquired guard (also on the poisoned path), which is
        // written back before the function returns. The wait runs
        // under `wait_or_abort`, so an unwinding wait (multi-mutex
        // misuse) can never reach the caller with the slot already
        // consumed.
        unsafe {
            let taken = std::ptr::read(guard);
            let back = wait_or_abort(|| self.0.wait(taken))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::ptr::write(guard, back);
        }
    }

    /// [`Condvar::wait`] with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        // SAFETY: same move-out / write-back / abort-on-unwind contract
        // as `wait`.
        unsafe {
            let taken = std::ptr::read(guard);
            let (back, result) = match wait_or_abort(|| self.0.wait_timeout(taken, timeout)) {
                Ok((g, r)) => (g, r),
                Err(poisoned) => {
                    let (g, r) = poisoned.into_inner();
                    (g, r)
                }
            };
            std::ptr::write(guard, back);
            WaitTimeoutResult(result.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_are_parallel_and_writer_is_exclusive() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (7, 7));
            assert!(l.try_write().is_none(), "write must wait for readers");
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn condvar_wakes_a_waiter() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut ready = m.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            });
            // Flip the flag and notify; the waiter must observe it.
            *m.lock() = true;
            cv.notify_all();
        });
        assert!(*m.lock());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(r.timed_out());
    }
}

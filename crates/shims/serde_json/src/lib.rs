//! JSON rendering/parsing over the `serde` shim's `Value` data model.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
            } else {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                write_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::custom("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's identifiers; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s =
                        std::str::from_utf8(rest).map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("bad float `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("bad integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn u64_extremes_roundtrip() {
        for x in [0u64, u64::MAX, 0xC0FFEE] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<u64>(&json).unwrap(), x);
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1i64, 2], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Vec<i64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}

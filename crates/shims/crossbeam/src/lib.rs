//! `crossbeam::thread::scope` stand-in over `std::thread::scope`.
//!
//! Mirrors the crossbeam 0.8 API shape the workspace uses: the scope
//! closure and each spawned closure receive a `&Scope` (allowing nested
//! spawns), and `scope` returns `Err` if any spawned thread panicked.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked scoped thread.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A clonable handle to the underlying `std` scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle
        /// (crossbeam convention) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before returning. Returns `Err` with the
    /// first panic payload if any thread (or `f` itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_is_reported() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
